//! # pipeinfer
//!
//! Facade crate for the PipeInfer reproduction workspace.  It re-exports the
//! public API of every workspace crate under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense tensors, transformer kernels, block quantization.
//! * [`model`] — decoder-only transformers, KV cache with sequence metadata,
//!   token trees, samplers and the synthetic alignment oracles.
//! * [`trace`] — cross-rank span tracing, pipeline-bubble accounting and
//!   Chrome trace-event / Perfetto export.
//! * [`cluster`] — MPI-like messaging, the threaded cluster driver and the
//!   discrete-event simulator.
//! * [`perf`] — hardware presets, model-pair presets and the roofline cost
//!   model reproducing the paper's testbeds.
//! * [`spec`] — speculative-decoding building blocks and the iterative /
//!   speculative pipeline-parallel baselines.
//! * [`core`] — PipeInfer itself: asynchronous pipelined speculation with
//!   continuous speculation, KV-cache multibuffering and early inference
//!   cancellation.
//! * [`metrics`] — measurement summaries, percentiles, histograms and report
//!   rendering.
//! * [`serve`] — the continuous-batching serving layer: a long-lived
//!   [`serve::Server`] over one prepared deployment, workload generators and
//!   per-request latency metrics.
//!
//! Every strategy executes through the strategy-agnostic
//! [`spec::deploy::Deployment`] layer: implement
//! [`spec::deploy::Strategy`] (rank layout + layer split + head factory)
//! and `Deployment::run` does the rest.  See `README.md` for a quickstart
//! and the workspace map.

/// Dense tensors, transformer kernels and block quantization (`pi-tensor`).
pub use pi_tensor as tensor;

/// Transformer models, KV cache, token trees and samplers (`pi-model`).
pub use pi_model as model;

/// Structured event tracing, pipeline-bubble accounting and Perfetto export
/// (`pi-trace`).
pub use pi_trace as trace;

/// Message passing, threaded driver and discrete-event simulator
/// (`pi-cluster`).
pub use pi_cluster as cluster;

/// Hardware/model presets and the roofline cost model (`pi-perf`).
pub use pi_perf as perf;

/// Speculative decoding building blocks and baselines (`pi-spec`).
pub use pi_spec as spec;

/// PipeInfer itself (`pipeinfer-core`).
pub use pipeinfer_core as core;

/// Metrics and report rendering (`pi-metrics`).
pub use pi_metrics as metrics;

/// Continuous-batching serving layer (`pi-serve`).
pub use pi_serve as serve;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use pi_cluster::{FaultPlan, HaltReason, KillTrigger, LinkFaults};
    pub use pi_model::{
        AdmissionRefusal, Batch, ByteTokenizer, KvPagePool, KvPoolConfig, KvPoolStats, Model,
        ModelConfig, Token,
    };
    pub use pi_perf::{ClusterSpec, InferenceStrategy, ModelPair};
    pub use pi_serve::{Request, ServeReport, Server, ServerConfig, WorkloadGen};
    pub use pi_spec::deploy::{
        Deployment, ExecutionMode, HeadParts, IterativeStrategy, PreparedDeployment, RunOutput,
        SpeculativeStrategy, Strategy,
    };
    pub use pi_spec::runner::{run_iterative, run_speculative};
    pub use pi_spec::{
        GenConfig, GenerationRecord, SessionStats, StepReport, StepSession, TreeConfig,
        TreeSpeculationStrategy,
    };
    pub use pi_trace::{BubbleReport, PerfettoTrace, Trace, TraceConfig};
    pub use pipeinfer_core::{run_pipeinfer, DraftPlacement, PipeInferConfig, PipeInferStrategy};
}
