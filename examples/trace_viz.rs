//! Cross-rank trace visualisation: run the four PipeInfer layouts
//! (head-hosted vs dedicated draft rank × chain vs tree speculation) on the
//! simulated Goliath-120B + Xwin-7B pair (the paper's ~52%-acceptance
//! stream), record a structured event trace of every run, account for
//! pipeline bubbles per rank, and export everything as one Chrome
//! trace-event JSON file loadable in <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example trace_viz
//! # then open target/trace_viz/pipeinfer.trace.json in ui.perfetto.dev
//! ```
//!
//! Each layout becomes one Perfetto *process* (pid) with one *thread* per
//! rank, so the four timelines sit side by side in the UI.  Below the span
//! tracks, a per-rank "bubble" counter track plots busy=0 / blocked=1 /
//! idle=2 over time.  The printed tables are the same data in text form.

use pipeinfer::prelude::*;
use pipeinfer::trace::validate_json;
use pipeinfer_core::DraftPlacement;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // The paper's lowest-alignment pair: Goliath-120B target with Xwin-7B
    // draft (~52% acceptance), on four nodes of cluster C.  Low acceptance
    // is where cancellations — and therefore bubbles — actually happen.
    let n_nodes = 4;
    let mode = ExecutionMode::Sim {
        pair: ModelPair::goliath_xwin7b(),
        cluster: ClusterSpec::cluster_c(n_nodes),
        oracle_seed: 42,
    };
    let gen = GenConfig {
        prompt: vec![7; 64],
        n_generate: n_generate(96),
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };

    // Four layouts: chain vs tree speculation, head-hosted vs dedicated
    // draft rank.  Under the dedicated layouts rank 1 serves drafts and the
    // target pipeline is ranks 2..4; head-hosted keeps ranks 1..4 on the
    // target.
    let layouts: [(&str, PipeInferConfig, Vec<u32>); 4] = [
        (
            "head-hosted chain",
            PipeInferConfig::paper_default(),
            vec![1, 2, 3],
        ),
        (
            "dedicated chain",
            PipeInferConfig::dedicated_draft_rank(),
            vec![2, 3],
        ),
        (
            "head-hosted tree",
            PipeInferConfig::tree_micro(),
            vec![1, 2, 3],
        ),
        (
            "dedicated tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
            vec![2, 3],
        ),
    ];

    let mut perfetto = PerfettoTrace::new();
    let mut pipeline_bubbles = Vec::new();
    for (pid, (name, config, pipeline_ranks)) in layouts.iter().enumerate() {
        let prepared =
            Deployment::new(PipeInferStrategy::new(config.clone())).prepare(&mode, n_nodes);
        let out = prepared.run_traced(&gen, TraceConfig::default());
        assert!(out.completed, "{name} run did not complete");
        let trace = out
            .trace
            .as_ref()
            .expect("run_traced must attach a trace (is the `trace` feature on?)");

        let report = BubbleReport::analyze(trace);
        let pipeline_bubble = report.mean_bubble_fraction_of(pipeline_ranks);
        pipeline_bubbles.push((*name, pipeline_bubble));

        println!(
            "=== {name}: {:.1} tok/s, {} events, pipeline-rank bubble {:.1}% ===",
            out.record.generation_speed(),
            trace.events().len(),
            pipeline_bubble * 100.0
        );
        println!("{}", report.render());

        let pid = pid as u32 + 1;
        perfetto.push(pid, name, trace);
        perfetto.push_bubbles(pid, &report);
    }

    // One JSON document with all four layouts; validate the schema the same
    // way CI does before declaring it loadable.
    let json = perfetto.to_json();
    let n_slices = validate_json(&json).expect("exported trace must be schema-valid");
    let dir = std::path::Path::new("target/trace_viz");
    std::fs::create_dir_all(dir).expect("create target/trace_viz");
    let path = dir.join("pipeinfer.trace.json");
    std::fs::write(&path, &json).expect("write trace json");
    println!(
        "wrote {} ({} bytes, {n_slices} complete slices) — open it in https://ui.perfetto.dev",
        path.display(),
        json.len()
    );

    // The Fig. 3 claim in bubble terms: moving drafting off the pipeline
    // keeps the target ranks busier on the low-acceptance stream.
    let frac = |name: &str| {
        pipeline_bubbles
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| *f)
            .unwrap()
    };
    println!(
        "pipeline-rank bubble fraction: head-hosted chain {:.1}% vs dedicated chain {:.1}%",
        frac("head-hosted chain") * 100.0,
        frac("dedicated chain") * 100.0
    );
}
