//! Reproduce a slice of the paper's Figure 4: generation speed of the three
//! inference strategies for the Dolphin-70B + TinyLlama pair, swept over the
//! node counts of cluster C, using the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example cluster_sweep
//! ```

use pipeinfer::metrics::Figure;
use pipeinfer::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    let pair = ModelPair::dolphin_tinyllama();
    let gen = GenConfig {
        prompt: vec![7; 64],
        n_generate: n_generate(96),
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };

    let mut fig = Figure::new(
        "Fig. 4a (excerpt)",
        "Dolphin-70B + TinyLlama on cluster C",
        "tokens/s",
    );
    for n in [4usize, 8, 15, 32] {
        let mode = ExecutionMode::Sim {
            pair: pair.clone(),
            cluster: ClusterSpec::cluster_c(n),
            oracle_seed: 7,
        };
        let x = format!("{n} Node");
        let strategies: [(&str, Deployment); 3] = [
            ("Iterative", Deployment::new(IterativeStrategy)),
            ("Speculative", Deployment::new(SpeculativeStrategy)),
            ("PipeInfer", Deployment::new(PipeInferStrategy::default())),
        ];
        for (name, deployment) in strategies {
            let out = deployment.run(&mode, n, &gen);
            fig.push(name, &x, out.record.generation_speed());
        }
    }
    println!("{}", fig.render());
    let speedup = fig
        .ratio("PipeInfer", "Speculative", "8 Node")
        .unwrap_or(f64::NAN);
    println!("PipeInfer speedup over speculative inference at 8 nodes: {speedup:.2}x");
}
