//! Reproduce a slice of the paper's Figure 4: generation speed of the three
//! inference strategies for the Dolphin-70B + TinyLlama pair, swept over the
//! node counts of cluster C, using the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example cluster_sweep
//! ```

use pipeinfer::metrics::Figure;
use pipeinfer::prelude::*;

fn main() {
    let pair = ModelPair::dolphin_tinyllama();
    let gen = GenConfig {
        prompt: vec![7; 64],
        n_generate: 96,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };

    let mut fig = Figure::new(
        "Fig. 4a (excerpt)",
        "Dolphin-70B + TinyLlama on cluster C",
        "tokens/s",
    );
    for n in [4usize, 8, 15, 32] {
        let mode = ExecutionMode::Sim {
            pair: pair.clone(),
            cluster: ClusterSpec::cluster_c(n),
            oracle_seed: 7,
        };
        let x = format!("{n} Node");
        let iter = run_iterative(&mode, n, &gen);
        let spec = run_speculative(&mode, n, &gen);
        let pipe = run_pipeinfer(&mode, n, &gen, &PipeInferConfig::default());
        fig.push("Iterative", &x, iter.record.generation_speed());
        fig.push("Speculative", &x, spec.record.generation_speed());
        fig.push("PipeInfer", &x, pipe.record.generation_speed());
    }
    println!("{}", fig.render());
    let speedup = fig
        .ratio("PipeInfer", "Speculative", "8 Node")
        .unwrap_or(f64::NAN);
    println!("PipeInfer speedup over speculative inference at 8 nodes: {speedup:.2}x");
}
