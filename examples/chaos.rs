//! Chaos demo: deterministic fault injection against the Fig. 3 deployment
//! on the discrete-event simulator.
//!
//! Three runs of the same dedicated-draft-rank deployment, same seeds
//! throughout: a fault-free baseline, a run whose draft rank is killed
//! mid-generation (the head times out, retries with backoff, then fails
//! over to its local fallback drafter), and a run whose draft path drops,
//! delays, duplicates and reorders messages.  Every run must emit the
//! byte-identical token stream — faults cost time, never correctness.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use pipeinfer::core::DRAFT_RANK;
use pipeinfer::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. The paper's Fig. 3 layout on simulated cluster C: rank 0 heads,
    //    rank 1 drafts off-route, ranks 2-5 hold the target pipeline.
    let n_nodes = 6;
    let mode = ExecutionMode::Sim {
        pair: ModelPair::goliath_xwin7b(),
        cluster: ClusterSpec::cluster_c(n_nodes),
        oracle_seed: 2024,
    };
    let config = PipeInferConfig {
        draft_deadline_s: 0.5,
        draft_backoff_s: 0.01,
        ..PipeInferConfig::dedicated_draft_rank()
    };
    let deployment = Deployment::new(PipeInferStrategy::new(config));
    let prepared = deployment.prepare(&mode, n_nodes);
    let gen = GenConfig {
        prompt: vec![5; 32],
        n_generate: n_generate(48),
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };

    // 2. Fault-free baseline.
    let clean = prepared.run(&gen);
    assert!(clean.completed);

    // 3. Kill the draft rank a third of the way in.
    let kill_plan = FaultPlan::seeded(0xC4A05).kill_at(DRAFT_RANK, clean.stats.total_time * 0.3);
    let killed = prepared.run_faulted(&gen, kill_plan);

    // 4. Degrade the whole draft path instead: 30% loss head-ward, plus
    //    delays, duplicates and reorders both ways.
    let lossy_plan = FaultPlan::seeded(0xBADCAB1E)
        .on_path(
            0,
            DRAFT_RANK,
            LinkFaults::delay(0.4, 0.005, 0.05)
                .and_duplicate(0.2)
                .and_reorder(0.2, 0.02),
        )
        .on_link(DRAFT_RANK, 0, LinkFaults::drop(0.3));
    let lossy = prepared.run_faulted(&gen, lossy_plan);

    for (name, out) in [
        ("fault-free", &clean),
        ("draft rank killed", &killed),
        ("lossy draft path", &lossy),
    ] {
        assert!(out.completed, "{name} run did not halt cleanly");
        println!(
            "{name:>18}: {:5.2} tok/s | {:2} faults injected | {:2} draft timeouts | \
             {:2} retries | {} failover(s)",
            out.record.generation_speed(),
            out.stats.total_faults_injected(),
            out.stats.total_draft_timeouts(),
            out.stats.total_draft_retries(),
            out.stats.total_failovers(),
        );
    }

    // 5. The invariant the recovery design guarantees: no fault schedule
    //    changes the verified token stream.
    assert_eq!(
        killed.record.tokens, clean.record.tokens,
        "draft-rank failover must not change the stream"
    );
    assert_eq!(
        lossy.record.tokens, clean.record.tokens,
        "a degraded draft path must not change the stream"
    );
    assert!(
        killed.stats.total_failovers() >= 1,
        "the killed run must fail over to the local fallback drafter"
    );
    println!(
        "\nall three runs emitted the identical {}-token stream",
        clean.record.tokens.len()
    );
}
