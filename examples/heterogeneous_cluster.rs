//! Constrained, heterogeneous hardware (the paper's clusters A and B):
//! Gigabit Ethernet, old Xeons and a tail of Dell Optiplexes.  Reproduces
//! the qualitative result of Fig. 7b/7c — PipeInfer tolerates slow
//! interconnects and slow nodes much better than synchronous speculative
//! inference, and its TTFT stays at iterative levels.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use pipeinfer::metrics::Figure;
use pipeinfer::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn run_all(pair: &ModelPair, cluster: ClusterSpec, gen: &GenConfig) -> [RunOutput; 3] {
    let n = cluster.n_nodes();
    let mode = ExecutionMode::Sim {
        pair: pair.clone(),
        cluster,
        oracle_seed: 11,
    };
    [
        Deployment::new(IterativeStrategy).run(&mode, n, gen),
        Deployment::new(SpeculativeStrategy).run(&mode, n, gen),
        Deployment::new(PipeInferStrategy::default()).run(&mode, n, gen),
    ]
}

fn main() {
    let pair = ModelPair::goliath_xwin7b();
    let gen = GenConfig {
        prompt: vec![3; 64],
        n_generate: n_generate(96),
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 8192,
    };

    let mut speed = Figure::new("Constrained clusters", "Goliath-120B + XWin-7B", "tokens/s");
    let mut ttft = Figure::new(
        "Constrained clusters",
        "Goliath-120B + XWin-7B",
        "TTFT seconds",
    );
    for (label, cluster) in [
        ("Cluster A, 8 GigE nodes", ClusterSpec::cluster_a(8)),
        ("Cluster B, 13 heterogeneous", ClusterSpec::cluster_b(13)),
    ] {
        let [iter, spec, pipe] = run_all(&pair, cluster, &gen);
        for (name, out) in [
            ("Iterative", &iter),
            ("Speculative", &spec),
            ("PipeInfer", &pipe),
        ] {
            speed.push(name, label, out.record.generation_speed());
            ttft.push(name, label, out.record.ttft());
        }
    }
    println!("{}", speed.render());
    println!("{}", ttft.render());
    println!(
        "Note how PipeInfer's TTFT tracks iterative inference while speculative inference pays the full drafting latency up front."
    );
}
