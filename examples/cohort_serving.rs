//! Iteration-level cohort batching demo: the same steady request stream
//! served twice over one prepared PipeInfer deployment — once through the
//! fused forest step loop (`Server::serve_stepped`, concurrent requests
//! fused into cross-request GEMMs every iteration) and once at request
//! granularity (`Server::serve_stepped_unfused`, each request streams the
//! weights alone).  Fusion changes the roofline, never the tokens: the demo
//! prints both goodputs, the mean cohort width, and a per-request
//! byte-equality check between the two schedules.
//!
//! ```text
//! cargo run --release --example cohort_serving
//! ```

use pipeinfer::prelude::*;
use pipeinfer::serve::{SteadyWorkload, WorkloadGen};

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. One prepared deployment on the discrete-event simulator: the
    //    paper's Goliath-class cluster, shared by every admitted request.
    let mode = ExecutionMode::Sim {
        pair: ModelPair::dolphin_tinyllama(),
        cluster: ClusterSpec::cluster_c(4),
        oracle_seed: 42,
    };
    let prepared = Deployment::new(PipeInferStrategy::default()).prepare(&mode, 4);
    let server = Server::new(prepared, ServerConfig { max_in_flight: 8 });

    // 2. A steady stream: requests arrive faster than one decodes, so the
    //    step loop forms real cohorts.
    let smoke = std::env::var_os("PIPEINFER_SMOKE").is_some();
    let workload = SteadyWorkload {
        base: GenConfig {
            prompt: vec![11, 7, 5, 3, 2, 1],
            n_generate: n_generate(48),
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 8192,
        },
        n_requests: if smoke { 4 } else { 8 },
        interarrival: 0.05,
    };

    println!(
        "serving {} steady requests over a {}-rank {} deployment (window {})\n",
        workload.n_requests,
        server.prepared().n_nodes(),
        server.strategy_name(),
        server.config().max_in_flight,
    );

    // 3. Same traffic, two schedules: fused forest vs request granularity.
    let fused = server.serve_stepped(workload.generate());
    let unfused = server.serve_stepped_unfused(workload.generate());

    // 4. Batching must be invisible in the bytes and visible in the clock.
    let mut identical = true;
    for c in fused.completions() {
        let solo = &unfused.completion(c.id).unwrap().output.record.tokens;
        let same = &c.output.record.tokens == solo;
        identical &= same;
        println!(
            "request {:>2}: {} tokens, e2e {:6.3} s fused — bytes vs solo: {}",
            c.id,
            c.output.record.tokens.len(),
            c.timing.e2e(),
            if same { "identical" } else { "DIVERGED" },
        );
    }
    let stats = fused.cohort_stats().expect("stepped report carries stats");
    println!(
        "\ngoodput: {:.1} tok/s fused vs {:.1} tok/s request-granularity ({:.2}x)",
        fused.goodput(),
        unfused.goodput(),
        fused.goodput() / unfused.goodput(),
    );
    println!(
        "mean cohort width {:.2} over {} fused step(s), {} batched rows",
        stats.mean_cohort_width(),
        stats.cohort_steps,
        stats.batched_rows,
    );
    println!(
        "per-request byte-equality: {}",
        if identical { "all identical" } else { "FAILED" }
    );
    assert!(identical, "forest batching must never change the tokens");
}
