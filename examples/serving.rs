//! Serving demo: a bursty request stream over the threaded driver.
//!
//! Builds one warmed-up PipeInfer deployment on real (tiny) models across an
//! in-process cluster of OS threads, then serves a Poisson-like burst of
//! requests through the continuous-batching `pi-serve` layer — up to
//! `max_in_flight` requests run concurrently over the shared weights, each
//! in an isolated KV session.  Per-request completions stream through the
//! callback; the report aggregates goodput and latency percentiles.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pipeinfer::prelude::*;
use pipeinfer::serve::{BurstyWorkload, Server, ServerConfig, WorkloadGen};
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. One warmed-up deployment: model weights built once, Arc-shared by
    //    every request the server admits.
    let config = ModelConfig::tiny_llama(pi_model::tokenizer::BYTE_VOCAB_SIZE, 4);
    let target = Arc::new(Model::random(config.clone(), 42));
    let draft = Arc::new(Model::new(config, target.weights().perturbed(0.02, 43)));
    let mode = ExecutionMode::Real { target, draft };
    let prepared = Deployment::new(PipeInferStrategy::default()).prepare(&mode, 2);
    let server = Server::new(prepared, ServerConfig { max_in_flight: 3 });

    // 2. A bursty (seeded-Poisson) request stream.
    let tokenizer = ByteTokenizer::new();
    let smoke = std::env::var_os("PIPEINFER_SMOKE").is_some();
    let workload = BurstyWorkload {
        base: GenConfig {
            prompt: tokenizer.encode("Tell me a story about a dragon.", true),
            n_generate: n_generate(24),
            max_draft: 4,
            confidence_cutoff: 0.3,
            kv_capacity: 1024,
        },
        n_requests: if smoke { 4 } else { 8 },
        mean_interarrival: 0.05,
        seed: 7,
    };

    // 3. Serve the stream; completions arrive in finish order.
    println!(
        "serving {} bursty requests over a {}-rank {} deployment (window {})",
        workload.n_requests,
        server.prepared().n_nodes(),
        server.strategy_name(),
        server.config().max_in_flight,
    );
    let report = server.serve_with(workload.generate(), |c| {
        println!(
            "request {:>2} done: wait {:6.3} s, TTFT {:6.3} s, e2e {:6.3} s, {} tokens",
            c.id,
            c.timing.wait(),
            c.timing.ttft(),
            c.timing.e2e(),
            c.n_tokens(),
        );
    });

    // 4. Aggregate per-request latency metrics.
    println!("\n{}", report.render());
}
