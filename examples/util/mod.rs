//! Helpers shared by the examples via `#[path]` inclusion (this directory is
//! not itself an example target).

/// Number of tokens an example should generate: tiny when `PIPEINFER_SMOKE`
/// is set (the examples smoke test sets it — presence counts, even empty),
/// the example's showcase default otherwise.
pub fn n_generate(default: usize) -> usize {
    if std::env::var_os("PIPEINFER_SMOKE").is_some() {
        8
    } else {
        default
    }
}
