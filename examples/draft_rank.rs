//! Draft-rank placement demo: PipeInfer's head-hosted layout vs the paper's
//! Fig. 3 deployment (dedicated draft rank on rank 1) side by side on the
//! threaded driver with real (tiny) models.
//!
//! Both layouts must produce exactly the same greedy output; what changes is
//! *where* drafting runs.  Head-hosted drafting blocks the head between
//! probes; the dedicated rank serves `DraftRequest` transactions
//! concurrently with target-pipeline inference, keeping the head free to
//! verify — at the cost of taking one rank away from the target pipeline
//! and paying draft-protocol traffic on the wire.
//!
//! ```text
//! cargo run --release --example draft_rank
//! ```

use pipeinfer::prelude::*;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. A tiny target model plus a perturbed-copy draft model, shared by
    //    both layouts (Arc-shared weights, isolated KV sessions per run).
    let config = ModelConfig::tiny_llama(pi_model::tokenizer::BYTE_VOCAB_SIZE, 4);
    let target = Arc::new(Model::random(config.clone(), 42));
    let draft = Arc::new(Model::new(config, target.weights().perturbed(0.02, 43)));
    let mode = ExecutionMode::Real { target, draft };

    let tokenizer = ByteTokenizer::new();
    let gen = GenConfig {
        prompt: tokenizer.encode("The expedition reached the ridge at dawn.", true),
        n_generate: n_generate(48),
        max_draft: 4,
        confidence_cutoff: 0.3,
        kv_capacity: 1024,
    };

    // 2. Four ranks each.  Head-hosted: rank 0 drafts + orchestrates, ranks
    //    1–3 hold the target.  Dedicated: rank 0 orchestrates only, rank 1
    //    drafts off-route, ranks 2–3 hold the target.
    let n_nodes = 4;
    let layouts = [
        ("head-hosted", PipeInferConfig::paper_default()),
        ("dedicated rank 1", PipeInferConfig::dedicated_draft_rank()),
    ];

    let mut outputs = Vec::new();
    for (name, config) in layouts {
        let out = Deployment::new(PipeInferStrategy::new(config)).run(&mode, n_nodes, &gen);
        assert!(out.completed, "{name} run did not complete");
        println!(
            "{name:>16}: {:5.1} tok/s | {} runs ({} cancelled, {} rescued) | \
             {} draft requests ({} salvaged, {} stale) | draft traffic {} B | head busy {:4.1}%",
            out.record.generation_speed(),
            out.record.runs_launched,
            out.record.runs_cancelled,
            out.record.runs_rescued,
            out.record.draft_requests,
            out.record.draft_salvaged,
            out.record.draft_stale,
            out.stats.total_draft_bytes(),
            100.0 * out.stats.node(0).utilization(out.stats.total_time),
        );
        outputs.push((name, out));
    }

    // 3. The layouts only move work around — the generated text is identical.
    let (_, hosted) = &outputs[0];
    let (_, dedicated) = &outputs[1];
    assert_eq!(
        hosted.record.tokens, dedicated.record.tokens,
        "draft placement must not change the greedy output"
    );
    assert!(
        dedicated.stats.total_draft_bytes() > 0,
        "the dedicated layout must exchange draft traffic"
    );
    assert_eq!(hosted.stats.total_draft_bytes(), 0);
    println!(
        "\nboth layouts generated identical text ({} tokens):\n{:?}",
        hosted.record.tokens.len(),
        tokenizer.decode(&hosted.record.tokens)
    );
}
