//! Tree speculation demo: TreeSpeculation vs linear speculation on the
//! threaded driver.
//!
//! Both strategies run real (tiny) models over an in-process cluster of OS
//! threads at the *same* verify-batch budget; the tree strategy hedges each
//! round with the draft model's runner-up candidates and adapts its
//! width/depth from the live acceptance rate, while linear speculation
//! spends the whole budget on one chain.  Greedy output is byte-identical
//! either way — only the accepted-tokens-per-verify efficiency differs.
//!
//! ```text
//! cargo run --release --example tree_generation
//! ```

use pipeinfer::prelude::*;
use pipeinfer::spec::TreeSpeculationStrategy;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. A tiny target model and a mildly perturbed draft model — enough
    //    disagreement that hedging has something to rescue.
    let config = ModelConfig::tiny_llama(pi_model::tokenizer::BYTE_VOCAB_SIZE, 4);
    let target = Arc::new(Model::random(config.clone(), 42));
    let draft = Arc::new(Model::new(config, target.weights().perturbed(0.05, 43)));
    let mode = ExecutionMode::Real { target, draft };

    let tokenizer = ByteTokenizer::new();
    let gen = GenConfig {
        prompt: tokenizer.encode("Once upon a time a tree of tokens grew.", true),
        n_generate: n_generate(48),
        max_draft: 4,
        // Randomly initialised tiny models are never "confident" (max
        // softmax ≈ 1/vocab), so the confidence cutoff is disabled here —
        // the demo is about speculation shape, not reactive gating.
        confidence_cutoff: 0.0,
        kv_capacity: 1024,
    };

    // 2. Same budget, two shapes of speculation, both through Deployment.
    let linear = Deployment::new(SpeculativeStrategy).run(&mode, 2, &gen);
    let tree = Deployment::new(TreeSpeculationStrategy::default()).run(&mode, 2, &gen);

    println!(
        "linear speculation : {:5.2} tok/verify, acceptance {:4.1} %, {} runs",
        linear.record.tokens_per_run(),
        linear.record.acceptance_rate() * 100.0,
        linear.record.runs_launched,
    );
    println!(
        "tree speculation   : {:5.2} tok/verify, acceptance {:4.1} %, {} runs, tree util {:4.1} %",
        tree.record.tokens_per_run(),
        tree.record.acceptance_rate() * 100.0,
        tree.record.runs_launched,
        tree.record.tree_utilization() * 100.0,
    );
    // Run-length-encode the per-round (width, depth) trace so the
    // adaptation is visible at a glance.
    let mut trace = String::new();
    let mut run: Option<((usize, usize), usize)> = None;
    for &shape in tree
        .record
        .tree_shapes
        .iter()
        .chain(std::iter::once(&(0, 0)))
    {
        match run {
            Some((s, n)) if s == shape => run = Some((s, n + 1)),
            Some(((w, d), n)) => {
                if !trace.is_empty() {
                    trace.push_str(" -> ");
                }
                trace.push_str(&format!("{w}x{d}({n})"));
                run = Some((shape, 1));
            }
            None => run = Some((shape, 1)),
        }
    }
    println!(
        "adaptive shape     : {} over {} rounds (widthxdepth(rounds))",
        trace, tree.record.tree_rounds
    );

    // 3. The paper's correctness property still holds: tree shape never
    //    changes the greedy output.
    let n = gen.n_generate;
    assert_eq!(
        linear.record.tokens[..n],
        tree.record.tokens[..n],
        "tree speculation must reproduce the greedy output exactly"
    );
    println!("\nOutputs are identical ({n} tokens) — the tree only changed *how fast* they came.");
    println!(
        "Generated (decoded bytes): {:?}",
        tokenizer.decode(&tree.record.tokens[..n])
    );
}
