//! Multi-turn "chat"-style generation with real tiny models: the prompt of
//! every turn is the conversation so far, and every turn is generated with
//! PipeInfer across an in-process pipeline.  Demonstrates prompt re-encoding,
//! deterministic greedy decoding and the per-turn speculation statistics a
//! serving system would log.
//!
//! ```text
//! cargo run --release --example chat_generation
//! ```

use pipeinfer::prelude::*;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    let config = ModelConfig::tiny_llama(pi_model::tokenizer::BYTE_VOCAB_SIZE, 4);
    let target = Arc::new(Model::random(config.clone(), 2024));
    let draft = Arc::new(Model::new(config, target.weights().perturbed(0.03, 2025)));
    let mode = ExecutionMode::Real { target, draft };
    let tokenizer = ByteTokenizer::new();
    let pipeinfer_deployment = Deployment::new(PipeInferStrategy::default());

    let user_turns = [
        "Explain speculative decoding in one sentence.",
        "Why does pipelining help?",
        "Summarise the trade-off.",
    ];

    let mut transcript = String::from("System: you are a terse assistant.\n");
    for (i, turn) in user_turns.iter().enumerate() {
        transcript.push_str("User: ");
        transcript.push_str(turn);
        transcript.push_str("\nAssistant: ");
        let prompt = tokenizer.encode(&transcript, true);
        let gen = GenConfig {
            prompt,
            n_generate: n_generate(32),
            max_draft: 4,
            confidence_cutoff: 0.3,
            kv_capacity: 2048,
        };
        let out = pipeinfer_deployment.run(&mode, 3, &gen);
        let reply = tokenizer.decode(&out.record.tokens);
        println!(
            "turn {}: {:4.1} tok/s, acceptance {:4.1} %, {} runs ({} cancelled)",
            i + 1,
            out.record.generation_speed(),
            out.record.acceptance_rate() * 100.0,
            out.record.runs_launched,
            out.record.runs_cancelled
        );
        println!("  assistant (synthetic model output): {reply:?}");
        transcript.push_str(&reply);
        transcript.push('\n');
    }
}
