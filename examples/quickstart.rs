//! Quickstart: run PipeInfer end-to-end on real (tiny) models across an
//! in-process cluster of OS threads, and check that it produces exactly the
//! same greedy output as plain iterative inference — the paper's correctness
//! property — while reporting the speculation statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipeinfer::prelude::*;
use std::sync::Arc;

#[path = "util/mod.rs"]
mod util;
use util::n_generate;

fn main() {
    // 1. Build a tiny target model and derive a well-aligned draft model from
    //    it by perturbing the weights slightly.
    let config = ModelConfig::tiny_llama(pi_model::tokenizer::BYTE_VOCAB_SIZE, 4);
    let target = Arc::new(Model::random(config.clone(), 42));
    let draft = Arc::new(Model::new(config, target.weights().perturbed(0.02, 43)));
    let mode = ExecutionMode::Real { target, draft };

    // 2. Encode a prompt with the byte-level tokenizer.
    let tokenizer = ByteTokenizer::new();
    let prompt = tokenizer.encode("Write a short story about a warrior named Goliath.", true);
    let gen = GenConfig {
        prompt,
        n_generate: n_generate(48),
        max_draft: 4,
        confidence_cutoff: 0.3,
        kv_capacity: 1024,
    };

    // 3. Run the iterative baseline and PipeInfer over 4 in-process ranks,
    //    each assembled by the shared `Deployment` layer.
    let iterative = Deployment::new(IterativeStrategy).run(&mode, 4, &gen);
    let pipeinfer = Deployment::new(PipeInferStrategy::default()).run(&mode, 4, &gen);

    println!(
        "iterative : {:5.1} tok/s, TTFT {:6.2} ms",
        iterative.record.generation_speed(),
        iterative.record.ttft() * 1e3
    );
    println!(
        "PipeInfer : {:5.1} tok/s, TTFT {:6.2} ms, acceptance {:4.1} %, runs {} (cancelled {})",
        pipeinfer.record.generation_speed(),
        pipeinfer.record.ttft() * 1e3,
        pipeinfer.record.acceptance_rate() * 100.0,
        pipeinfer.record.runs_launched,
        pipeinfer.record.runs_cancelled,
    );

    let n = gen.n_generate;
    assert_eq!(
        iterative.record.tokens[..n],
        pipeinfer.record.tokens[..n],
        "PipeInfer must reproduce the greedy output exactly"
    );
    println!("\nOutputs are identical ({n} tokens) — speculation preserved the greedy generation.");
    println!(
        "Generated (decoded bytes): {:?}",
        tokenizer.decode(&pipeinfer.record.tokens[..n])
    );
}
