//! # pi-spec
//!
//! Speculative-decoding building blocks and the two baseline inference
//! strategies the paper compares PipeInfer against:
//!
//! * **pipeline-parallel iterative inference** — the target model split
//!   across all ranks, one token evaluated at a time
//!   ([`iterative::IterativeHead`]);
//! * **pipeline-parallel speculative inference** — a SpecInfer-style
//!   synchronous speculate-then-verify loop with a single draft model hosted
//!   on the head node ([`speculative::SpeculativeHead`]);
//! * **tree speculation** — the same loop over genuine token *trees* with
//!   adaptive width/depth ([`tree::TreeSpeculationStrategy`]), exercising the
//!   canonical `pi_model::TokenTree` unit end-to-end.
//!
//! The crate also provides everything PipeInfer itself (in `pipeinfer-core`)
//! reuses:
//!
//! * the pipeline message protocol ([`message::PipeMsg`]),
//! * the generic pipeline worker rank ([`worker::PipelineWorker`]) that
//!   evaluates its layer range, applies pipelined cache operations and
//!   honours cancellation,
//! * compute engines that either run a real tiny model or charge roofline
//!   costs ([`engine`]),
//! * draft-model front-ends ([`drafter`]),
//! * the greedy token-verification algorithm ([`verify`]),
//! * run configuration and per-run records ([`GenConfig`],
//!   [`GenerationRecord`]),
//! * the strategy-agnostic assembly layer ([`deploy`]): the [`Strategy`]
//!   trait plus [`Deployment`], the single entry point that builds routes,
//!   engines, drafters and workers and executes them under the driver
//!   matching the [`ExecutionMode`].

pub mod deploy;
pub mod drafter;
pub mod engine;
pub mod iterative;
pub mod message;
pub mod route;
pub mod runner;
pub mod session;
pub mod speculative;
pub mod tree;
pub mod verify;
pub mod worker;

pub use deploy::{
    Deployment, ExecutionMode, HeadParts, IterativeStrategy, PreparedDeployment, RecordHandle,
    RunOutput, SpeculativeStrategy, StepProfile, Strategy,
};
pub use drafter::{Drafter, OracleDrafter, RealDrafter};
pub use engine::{
    HeadEngine, PrefixPlan, RealHeadEngine, RealStageEngine, SimHeadEngine, SimStageEngine,
    StageEngine,
};
pub use message::{ActivationPayload, CacheOp, PipeMsg, RunId, RunKind, TreeTopology};
pub use route::PipelineRoute;
pub use session::{SessionStats, StepReport, StepSession};
pub use tree::{AdaptiveShape, TreeConfig, TreeSpecHead, TreeSpeculationStrategy};
pub use verify::{verify_greedy, verify_tree, TreeVerifyOutcome};
pub use worker::PipelineWorker;

use pi_model::Token;

/// Generation-run configuration shared by every inference strategy.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Prompt tokens (the paper uses 128-token prompts).
    pub prompt: Vec<Token>,
    /// Number of tokens to generate (the paper uses 512).
    pub n_generate: usize,
    /// Maximum number of draft tokens per speculation round / micro-batch.
    pub max_draft: usize,
    /// Confidence cutoff below which the draft model stops speculating.
    pub confidence_cutoff: f32,
    /// KV-cache capacity in cells provisioned on every stage.
    pub kv_capacity: usize,
}

impl GenConfig {
    /// A small configuration suitable for tests with tiny real models.
    pub fn small_test(prompt: Vec<Token>, n_generate: usize) -> Self {
        Self {
            prompt,
            n_generate,
            max_draft: 4,
            confidence_cutoff: 0.3,
            kv_capacity: 1024,
        }
    }

    /// The paper's evaluation configuration: 128-token prompt, 512 generated
    /// tokens, speculation capped at four tokens.
    pub fn paper_eval(prompt: Vec<Token>) -> Self {
        Self {
            prompt,
            n_generate: 512,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        }
    }
}

/// Timeline and outcome of one generation run, recorded by the head rank.
///
/// All times are in seconds on the driver's clock (wall-clock under the
/// threaded driver, virtual time under the simulator).
#[derive(Debug, Clone, Default)]
pub struct GenerationRecord {
    /// The generated tokens, in order (prompt not included).
    pub tokens: Vec<Token>,
    /// Time at which prompt processing finished.
    pub prompt_done_at: f64,
    /// Acceptance time of each generated token (same length as `tokens`).
    pub accept_times: Vec<f64>,
    /// Time at which the run finished.
    pub finished_at: f64,
    /// Number of draft tokens proposed.
    pub drafted: usize,
    /// Number of draft tokens accepted by verification.
    pub accepted_drafts: usize,
    /// Number of target-pipeline runs launched.
    pub runs_launched: usize,
    /// Number of runs cancelled by early inference cancellation.
    pub runs_cancelled: usize,
    /// Number of in-flight runs kept alive through an invalidation because a
    /// sibling branch of their speculation tree lay on the accepted path
    /// (branch-granular invalidation; zero for chain micro-batches).
    pub runs_rescued: usize,
    /// Number of draft requests sent to a dedicated draft rank (zero under
    /// head-hosted drafting).
    pub draft_requests: usize,
    /// Number of draft responses discarded because the hypothesis they
    /// continued had been invalidated or extended before they arrived.
    pub draft_stale: usize,
    /// Number of draft responses whose leading tokens had already been
    /// accepted by the time they arrived, but whose unused tail still
    /// continued the hypothesis and was dispatched anyway.
    pub draft_salvaged: usize,
    /// Number of tree-verification rounds (zero for linear strategies).
    pub tree_rounds: usize,
    /// Total speculated tree nodes across all rounds.
    pub tree_nodes: usize,
    /// Sum of accepted root-to-leaf path lengths across all rounds.
    pub tree_accepted_path: usize,
    /// The (width, depth) shape the adaptive controller chose each round, in
    /// round order — the live trace of width/depth adaptation.
    pub tree_shapes: Vec<(usize, usize)>,
}

impl GenerationRecord {
    /// Average generation speed in tokens per second, excluding prompt
    /// processing (paper metric 1).
    pub fn generation_speed(&self) -> f64 {
        let dur = self.finished_at - self.prompt_done_at;
        if dur <= 0.0 {
            0.0
        } else {
            self.tokens.len() as f64 / dur
        }
    }

    /// Time-to-first-token: from the completion of prompt processing to the
    /// first token acceptance (paper metric 2).
    pub fn ttft(&self) -> f64 {
        self.accept_times
            .first()
            .map(|t| t - self.prompt_done_at)
            .unwrap_or(0.0)
    }

    /// Mean inter-token latency: average time between consecutive token
    /// acceptances (paper metric 3).
    pub fn mean_itl(&self) -> f64 {
        if self.accept_times.len() < 2 {
            return 0.0;
        }
        let mut gaps = Vec::with_capacity(self.accept_times.len() - 1);
        for w in self.accept_times.windows(2) {
            gaps.push(w[1] - w[0]);
        }
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }

    /// Fraction of drafted tokens that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted_drafts as f64 / self.drafted as f64
        }
    }

    /// Mean tokens generated per target-pipeline run — the
    /// accepted-tokens-per-verify metric tree speculation optimises (higher
    /// is better at a fixed verify-batch budget).
    pub fn tokens_per_run(&self) -> f64 {
        if self.runs_launched == 0 {
            0.0
        } else {
            self.tokens.len() as f64 / self.runs_launched as f64
        }
    }

    /// Tree utilization: the fraction of speculated tree nodes that ended up
    /// on an accepted path.  Zero when no trees were speculated.
    pub fn tree_utilization(&self) -> f64 {
        if self.tree_nodes == 0 {
            0.0
        } else {
            self.tree_accepted_path as f64 / self.tree_nodes as f64
        }
    }

    /// First and last (width, depth) shape of the adaptive tree controller,
    /// or `None` for linear strategies.
    pub fn tree_shape_range(&self) -> Option<((usize, usize), (usize, usize))> {
        Some((*self.tree_shapes.first()?, *self.tree_shapes.last()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> GenerationRecord {
        GenerationRecord {
            tokens: vec![1, 2, 3, 4],
            prompt_done_at: 1.0,
            accept_times: vec![1.5, 2.0, 2.5, 3.0],
            finished_at: 3.0,
            drafted: 10,
            accepted_drafts: 7,
            runs_launched: 5,
            runs_cancelled: 1,
            ..GenerationRecord::default()
        }
    }

    #[test]
    fn generation_speed_excludes_prompt() {
        let r = record();
        assert!((r.generation_speed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ttft_is_relative_to_prompt_completion() {
        assert!((record().ttft() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_itl_averages_gaps() {
        assert!((record().mean_itl() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn acceptance_rate() {
        assert!((record().acceptance_rate() - 0.7).abs() < 1e-12);
        assert_eq!(GenerationRecord::default().acceptance_rate(), 0.0);
    }

    #[test]
    fn degenerate_records_are_safe() {
        let r = GenerationRecord::default();
        assert_eq!(r.generation_speed(), 0.0);
        assert_eq!(r.ttft(), 0.0);
        assert_eq!(r.mean_itl(), 0.0);
    }

    #[test]
    fn tree_metrics_and_shape_range() {
        let mut r = record();
        assert_eq!(r.tokens_per_run(), 4.0 / 5.0);
        assert_eq!(r.tree_utilization(), 0.0);
        assert_eq!(r.tree_shape_range(), None);
        r.tree_nodes = 8;
        r.tree_accepted_path = 6;
        r.tree_shapes = vec![(2, 3), (1, 4), (3, 2)];
        assert!((r.tree_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(r.tree_shape_range(), Some(((2, 3), (3, 2))));
    }

    #[test]
    fn config_presets() {
        let c = GenConfig::paper_eval(vec![0; 128]);
        assert_eq!(c.prompt.len(), 128);
        assert_eq!(c.n_generate, 512);
        assert_eq!(c.max_draft, 4);
        let s = GenConfig::small_test(vec![1, 2], 8);
        assert_eq!(s.n_generate, 8);
    }
}
