//! Draft-model front-ends.
//!
//! A [`Drafter`] proposes a chain of speculative tokens continuing a given
//! context, stopping when the draft model's confidence falls below the
//! speculation cutoff (paper §II-A1) or when the requested maximum is
//! reached.  Two implementations:
//!
//! * [`RealDrafter`] — runs a real tiny `pi-model` transformer greedily.
//! * [`OracleDrafter`] — uses the alignment oracle (configurable agreement
//!   with the target) and charges the roofline cost of running the paper's
//!   actual draft model (TinyLlama, Orca-2, XWin, Falcon-7B/40B, …).
//!
//! Both also support *branching* drafts ([`Drafter::draft_tree`]): a
//! [`TokenTree`] whose primary branch is the greedy chain and whose extra
//! root-level branches are the draft model's top-k runner-up candidates —
//! the hedge tree speculation verifies in one batched pass.

use pi_model::{Batch, KvCache, Model, OracleDraft, OracleTarget, Sampler, Token, TokenTree};
use pi_perf::{CostModel, ModelCost};
use pi_tensor::ops;
use std::time::Instant;

/// A speculative (draft) model front-end.
pub trait Drafter: Send {
    /// Proposes up to `max_tokens` tokens continuing `context ++ extra`,
    /// where `context` is the accepted sequence and `extra` holds the pending
    /// token plus any tokens speculated earlier in the same burst.
    ///
    /// Returns the proposed `(token, confidence)` pairs — drafting stops as
    /// soon as the draft model's confidence drops below `cutoff`, so the
    /// chain may be shorter than `max_tokens` or even empty — and the
    /// drafting cost in seconds.
    fn draft(
        &mut self,
        context: &[Token],
        extra: &[Token],
        max_tokens: usize,
        cutoff: f32,
    ) -> (Vec<(Token, f32)>, f64);

    /// Proposes a speculation *tree* continuing `context ++ extra`.
    ///
    /// The tree has at most `width` root-level branches: the primary branch
    /// is the greedy chain (up to `depth` deep, gated by `cutoff` exactly
    /// like [`Drafter::draft`]), and the remaining `width - 1` branches are
    /// the draft model's runner-up candidates for the first position,
    /// speculated as single-node leaves.  Total size is therefore at most
    /// `depth + width - 1` nodes — the verify-batch budget the strategy
    /// trades between width and depth.
    ///
    /// Runner-up branches are *not* gated by `cutoff`: they exist precisely
    /// because the primary might be wrong, and the strategy already chose to
    /// spend `width - 1` budget on hedging.
    ///
    /// The default implementation ignores `width` and returns the degenerate
    /// single-branch tree of the linear chain, so every drafter is tree-
    /// capable and `width == 1` reproduces linear speculation exactly.
    fn draft_tree(
        &mut self,
        context: &[Token],
        extra: &[Token],
        _width: usize,
        depth: usize,
        cutoff: f32,
    ) -> (TokenTree, f64) {
        let (chain, cost) = self.draft(context, extra, depth, cutoff);
        (TokenTree::chain(&chain), cost)
    }
}

/// Indices and probabilities of the `k` largest entries of `probs`,
/// descending; ties resolve to the lowest token id, matching
/// [`Sampler::Greedy`]'s argmax rule so the top-1 candidate is exactly the
/// greedy draft token.
fn top_k(probs: &[f32], k: usize) -> Vec<(Token, f32)> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| {
        probs[b]
            .partial_cmp(&probs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.into_iter()
        .take(k)
        .map(|i| (i as Token, probs[i]))
        .collect()
}

/// Drafter running a real tiny model with greedy sampling.
///
/// For robustness the drafter re-processes its context on every call (the
/// models involved are tiny, so this costs microseconds); this keeps it
/// correct under the arbitrary rollbacks continuous speculation performs.
pub struct RealDrafter {
    model: Model,
    kv_capacity: usize,
}

impl RealDrafter {
    /// Creates a drafter around a draft model.
    pub fn new(model: Model, kv_capacity: usize) -> Self {
        Self { model, kv_capacity }
    }
}

impl Drafter for RealDrafter {
    fn draft(
        &mut self,
        context: &[Token],
        extra: &[Token],
        max_tokens: usize,
        cutoff: f32,
    ) -> (Vec<(Token, f32)>, f64) {
        let start = Instant::now();
        if max_tokens == 0 {
            return (Vec::new(), start.elapsed().as_secs_f64());
        }
        let mut cache = KvCache::new(
            self.model.config().n_layers,
            self.model.config().kv_dim(),
            self.kv_capacity,
        );
        let mut full: Vec<Token> = context.iter().chain(extra.iter()).copied().collect();
        if full.is_empty() {
            full.push(0);
        }
        let prompt = Batch::prompt(&full, 0, 0);
        let logits = self
            .model
            .forward_full(&prompt, &mut cache)
            .expect("draft prompt evaluation failed");
        let mut last_row = logits.row(full.len() - 1).unwrap().to_vec();
        let mut out = Vec::with_capacity(max_tokens);
        let first_pos = full.len() as i32;
        for pos in first_pos..first_pos + max_tokens as i32 {
            let conf = Sampler::confidence(&last_row);
            if conf < cutoff {
                break;
            }
            let token = Sampler::Greedy.sample(&last_row);
            out.push((token, conf));
            if out.len() == max_tokens {
                break;
            }
            let step = Batch::single(token, pos, 0);
            let logits = self
                .model
                .forward_full(&step, &mut cache)
                .expect("draft step evaluation failed");
            last_row = logits.row(0).unwrap().to_vec();
        }
        (out, start.elapsed().as_secs_f64())
    }

    fn draft_tree(
        &mut self,
        context: &[Token],
        extra: &[Token],
        width: usize,
        depth: usize,
        cutoff: f32,
    ) -> (TokenTree, f64) {
        if width <= 1 {
            let (chain, cost) = self.draft(context, extra, depth, cutoff);
            return (TokenTree::chain(&chain), cost);
        }
        let start = Instant::now();
        let mut tree = TokenTree::new();
        if depth == 0 {
            return (tree, start.elapsed().as_secs_f64());
        }
        let mut cache = KvCache::new(
            self.model.config().n_layers,
            self.model.config().kv_dim(),
            self.kv_capacity,
        );
        let mut full: Vec<Token> = context.iter().chain(extra.iter()).copied().collect();
        if full.is_empty() {
            full.push(0);
        }
        let prompt = Batch::prompt(&full, 0, 0);
        let logits = self
            .model
            .forward_full(&prompt, &mut cache)
            .expect("draft prompt evaluation failed");
        let first_probs = ops::softmax(logits.row(full.len() - 1).unwrap());
        let top = top_k(&first_probs, width);
        // Primary branch: the greedy chain.  The cutoff gates only its
        // *extension* — as a single root among several the primary always
        // rides along, because a tree verifies its whole root level in one
        // batched pass anyway (this is where trees beat chains in
        // low-confidence regions, where linear drafting gives up entirely).
        let (primary, p_conf) = top[0];
        let mut parent = tree.add(None, primary, p_conf);
        let mut cur = primary;
        let extend = if p_conf >= cutoff { depth } else { 1 };
        let first_pos = full.len() as i32;
        for pos in first_pos..first_pos + extend as i32 - 1 {
            let step = Batch::single(cur, pos, 0);
            let logits = self
                .model
                .forward_full(&step, &mut cache)
                .expect("draft step evaluation failed");
            let row = logits.row(0).unwrap();
            let conf = Sampler::confidence(row);
            if conf < cutoff {
                break;
            }
            let next = Sampler::Greedy.sample(row);
            parent = tree.add(Some(parent), next, conf);
            cur = next;
        }
        // Runner-up branches: the top-k alternatives for the first position.
        for &(tok, prob) in &top[1..] {
            tree.add(None, tok, prob);
        }
        (tree, start.elapsed().as_secs_f64())
    }
}

/// Drafter backed by the alignment oracle plus a roofline cost model for the
/// draft model it stands in for.
pub struct OracleDrafter {
    target: OracleTarget,
    draft: OracleDraft,
    cost_model: CostModel,
    draft_cost: ModelCost,
}

impl OracleDrafter {
    /// Creates an oracle drafter.
    ///
    /// * `target` — ground-truth oracle shared with the head's verification.
    /// * `draft` — alignment oracle configured with the pair's acceptance
    ///   rate.
    /// * `cost_model` — the node hosting the draft model.
    /// * `draft_cost` — the draft model's geometry and quantization.
    pub fn new(
        target: OracleTarget,
        draft: OracleDraft,
        cost_model: CostModel,
        draft_cost: ModelCost,
    ) -> Self {
        Self {
            target,
            draft,
            cost_model,
            draft_cost,
        }
    }
}

impl Drafter for OracleDrafter {
    fn draft(
        &mut self,
        context: &[Token],
        extra: &[Token],
        max_tokens: usize,
        cutoff: f32,
    ) -> (Vec<(Token, f32)>, f64) {
        if max_tokens == 0 {
            return (Vec::new(), 0.0);
        }
        let full: Vec<Token> = context.iter().chain(extra.iter()).copied().collect();
        let chain = self.draft.draft_chain(&self.target, &full, max_tokens);
        // Honour the confidence cutoff: stop at the first token whose
        // confidence falls below the cutoff (possibly producing no tokens at
        // all — the reactive-speculation gradient relies on this).
        let mut out = Vec::with_capacity(chain.len());
        for (tok, conf) in chain.into_iter() {
            if conf < cutoff {
                break;
            }
            out.push((tok, conf));
        }
        // Each drafted token is one single-token pass of the draft model.
        let context_len = full.len();
        let per_token = self
            .cost_model
            .full_model_time(&self.draft_cost, 1, context_len);
        let cost = per_token * out.len().max(1) as f64;
        (out, cost)
    }

    fn draft_tree(
        &mut self,
        context: &[Token],
        extra: &[Token],
        width: usize,
        depth: usize,
        cutoff: f32,
    ) -> (TokenTree, f64) {
        if width <= 1 {
            let (chain, cost) = self.draft(context, extra, depth, cutoff);
            return (TokenTree::chain(&chain), cost);
        }
        let full: Vec<Token> = context.iter().chain(extra.iter()).copied().collect();
        let mut tree = TokenTree::new();
        if depth == 0 {
            return (tree, 0.0);
        }
        let truth0 = self.target.next_token(&full);
        let topk = self.draft.draft_topk(&full, truth0, width);
        // Primary branch: the greedy chain (identical prefix to draft()).
        // The cutoff gates only its extension; as one root among several the
        // primary always rides along in the batched verification — which is
        // where trees keep speculating in low-confidence regions where
        // linear drafting gives up entirely.
        let (primary, p_conf) = topk[0];
        let mut parent = tree.add(None, primary, p_conf);
        let mut spine_len = 1usize;
        if p_conf >= cutoff {
            let mut ctx = full.clone();
            ctx.push(primary);
            for (tok, conf) in self.draft.draft_chain(&self.target, &ctx, depth - 1) {
                if conf < cutoff {
                    break;
                }
                parent = tree.add(Some(parent), tok, conf);
                spine_len += 1;
            }
        }
        // Runner-up branches come from the same first-position distribution.
        for &(tok, conf) in &topk[1..] {
            tree.add(None, tok, conf);
        }
        // Width is nearly free at draft time (one distribution yields every
        // root candidate); depth costs one draft-model pass per token.
        let per_token = self
            .cost_model
            .full_model_time(&self.draft_cost, 1, full.len());
        let cost = per_token * spine_len.max(1) as f64;
        (tree, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::ModelConfig;
    use pi_perf::NodeSpec;
    use pi_tensor::QuantKind;

    #[test]
    fn real_drafter_is_deterministic_and_respects_max() {
        let model = Model::random(ModelConfig::tiny_llama(64, 2), 5);
        let mut d = RealDrafter::new(model, 256);
        let (a, _) = d.draft(&[1, 2, 3], &[4], 4, 0.0);
        let (b, _) = d.draft(&[1, 2, 3], &[4], 4, 0.0);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 4, "cutoff 0 must always draft");
    }

    #[test]
    fn real_drafter_matches_greedy_continuation_of_itself() {
        // With cutoff 0 and the same model as "target", the draft chain is
        // the model's own greedy continuation.
        let model = Model::random(ModelConfig::tiny_llama(64, 2), 9);
        let mut cache = model.new_cache_for_layers(&(0..2), 256);
        let prompt = [3u32, 1, 4, 1, 5];
        let logits = model
            .forward_full(&Batch::prompt(&prompt, 0, 0), &mut cache)
            .unwrap();
        let first = Sampler::Greedy.sample(logits.row(prompt.len() - 1).unwrap());

        let mut d = RealDrafter::new(model.clone(), 256);
        let (chain, _) = d.draft(&prompt[..4], &[prompt[4]], 3, 0.0);
        assert_eq!(chain[0].0, first);
    }

    #[test]
    fn real_drafter_zero_max_tokens() {
        let model = Model::random(ModelConfig::tiny_llama(64, 2), 5);
        let mut d = RealDrafter::new(model, 128);
        let (out, _) = d.draft(&[1], &[], 0, 0.5);
        assert!(out.is_empty());
    }

    fn oracle_drafter(alignment: f64) -> OracleDrafter {
        OracleDrafter::new(
            OracleTarget::new(1, 32000),
            OracleDraft::new(2, 32000, alignment),
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        )
    }

    #[test]
    fn oracle_drafter_produces_tokens_and_positive_cost() {
        let mut d = oracle_drafter(0.8);
        let (tokens, cost) = d.draft(&[1, 2, 3], &[4], 4, 0.0);
        assert!(!tokens.is_empty() && tokens.len() <= 4);
        assert!(cost > 0.0);
    }

    #[test]
    fn oracle_drafter_cost_scales_with_tokens() {
        let mut d = oracle_drafter(1.0);
        let (t1, c1) = d.draft(&[1, 2, 3], &[4], 1, 0.0);
        let (t4, c4) = d.draft(&[1, 2, 3], &[4], 4, 0.0);
        assert_eq!(t1.len(), 1);
        assert_eq!(t4.len(), 4);
        assert!(c4 > 3.0 * c1);
    }

    #[test]
    fn oracle_drafter_aligned_chain_matches_target() {
        let mut d = oracle_drafter(1.0);
        let context = vec![7, 8, 9];
        let extra = vec![10];
        let (chain, _) = d.draft(&context, &extra, 4, 0.0);
        // With alignment 1.0 the chain must be the target oracle's greedy
        // continuation of context ++ extra.
        let target = OracleTarget::new(1, 32000);
        let mut ctx = vec![7, 8, 9, 10];
        for (tok, _) in chain {
            let truth = target.next_token(&ctx);
            assert_eq!(tok, truth);
            ctx.push(truth);
        }
    }

    #[test]
    fn real_drafter_tree_hedges_with_runner_up_roots() {
        let model = Model::random(ModelConfig::tiny_llama(64, 2), 5);
        let mut d = RealDrafter::new(model, 256);
        let (chain, _) = d.draft(&[1, 2, 3], &[4], 3, 0.0);
        let (tree, _) = d.draft_tree(&[1, 2, 3], &[4], 3, 3, 0.0);
        // Primary branch is the greedy chain; runner-ups are extra roots.
        assert!(tree.len() <= 5, "depth 3 + width 3 - 1");
        let roots = tree.roots();
        assert!(roots.len() <= 3 && roots.len() >= 2);
        assert_eq!(tree.nodes()[roots[0]].token, chain[0].0);
        let root_tokens: Vec<_> = roots.iter().map(|&r| tree.nodes()[r].token).collect();
        for (i, a) in root_tokens.iter().enumerate() {
            assert!(!root_tokens[i + 1..].contains(a), "duplicate root {a}");
        }
        // Width 1 reproduces the linear chain exactly.
        let (linear_tree, _) = d.draft_tree(&[1, 2, 3], &[4], 1, 3, 0.0);
        assert_eq!(linear_tree.len(), chain.len());
        assert_eq!(linear_tree.leaves().len(), 1);
        let leaf = linear_tree.leaves()[0];
        assert_eq!(
            linear_tree.sequence_to(leaf),
            chain.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_drafter_tree_spine_matches_linear_chain() {
        let mut d = oracle_drafter(0.6);
        let (chain, _) = d.draft(&[1, 2, 3], &[4], 4, 0.0);
        let (tree, cost) = d.draft_tree(&[1, 2, 3], &[4], 3, 4, 0.0);
        assert!(cost > 0.0);
        assert!(tree.len() <= 6, "depth 4 + width 3 - 1");
        assert_eq!(tree.roots().len(), 3);
        // The deepest branch is the linear chain.
        let deepest = *tree
            .leaves()
            .iter()
            .max_by_key(|&&l| tree.nodes()[l].depth)
            .unwrap();
        let spine = tree.sequence_to(deepest);
        let linear: Vec<_> = chain.iter().map(|(t, _)| *t).collect();
        assert_eq!(spine, linear[..spine.len()].to_vec());
        // Determinism.
        let (again, _) = d.draft_tree(&[1, 2, 3], &[4], 3, 4, 0.0);
        assert_eq!(tree, again);
    }

    #[test]
    fn high_cutoff_shortens_chains_possibly_to_zero() {
        let mut d = oracle_drafter(0.5);
        let (strict, _) = d.draft(&[1, 2, 3, 4, 5], &[6], 8, 0.99);
        let (loose, _) = d.draft(&[1, 2, 3, 4, 5], &[6], 8, 0.0);
        assert!(strict.len() <= loose.len());
        assert_eq!(loose.len(), 8, "cutoff 0 never stops early");
        // An impossible cutoff drafts nothing at all.
        let (none, _) = d.draft(&[1, 2, 3, 4, 5], &[6], 8, 1.1);
        assert!(none.is_empty());
    }
}
