//! Pipeline routing: which ranks form the target pipeline and in what order.
//!
//! * Baselines (iterative, speculative): every rank is a pipeline stage —
//!   `[0, 1, 2, …, N-1]`, results return from the last rank to rank 0.
//! * PipeInfer: rank 1 is the dedicated draft rank, so the target pipeline is
//!   `[0, 2, 3, …, N-1]` (one stage shorter, as the paper notes when
//!   explaining its TTFT advantage on constrained clusters).

use pi_cluster::Rank;

/// Ordered list of ranks forming the target pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineRoute {
    ranks: Vec<Rank>,
}

impl PipelineRoute {
    /// Builds a route from an explicit rank order.  The first rank is the
    /// head (stage 0).
    pub fn new(ranks: Vec<Rank>) -> Self {
        assert!(!ranks.is_empty(), "a pipeline needs at least one stage");
        Self { ranks }
    }

    /// Baseline route: all `n` ranks in order.
    pub fn baseline(n: usize) -> Self {
        Self::new((0..n).collect())
    }

    /// PipeInfer route over `n` ranks: rank 1 is excluded (dedicated draft
    /// rank); for `n == 2` the head is the only target stage.
    pub fn pipeinfer(n: usize) -> Self {
        assert!(
            n >= 2,
            "PipeInfer needs at least a head rank and a draft rank"
        );
        let mut ranks = vec![0];
        ranks.extend(2..n);
        Self::new(ranks)
    }

    /// The head rank (stage 0).
    pub fn head(&self) -> Rank {
        self.ranks[0]
    }

    /// The last pipeline stage's rank.
    pub fn last(&self) -> Rank {
        *self.ranks.last().unwrap()
    }

    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.ranks.len()
    }

    /// All ranks in stage order.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// The stage index of `rank`, if it is part of the pipeline.
    pub fn stage_of(&self, rank: Rank) -> Option<usize> {
        self.ranks.iter().position(|&r| r == rank)
    }

    /// The rank evaluating the stage after `rank`, or `None` if `rank` is the
    /// last stage (whose output returns to the head).
    pub fn next_after(&self, rank: Rank) -> Option<Rank> {
        let i = self.stage_of(rank)?;
        self.ranks.get(i + 1).copied()
    }

    /// The rank evaluating the stage before `rank`, or `None` for the head.
    pub fn prev_before(&self, rank: Rank) -> Option<Rank> {
        let i = self.stage_of(rank)?;
        if i == 0 {
            None
        } else {
            Some(self.ranks[i - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_route_covers_all_ranks() {
        let r = PipelineRoute::baseline(4);
        assert_eq!(r.ranks(), &[0, 1, 2, 3]);
        assert_eq!(r.head(), 0);
        assert_eq!(r.last(), 3);
        assert_eq!(r.n_stages(), 4);
    }

    #[test]
    fn pipeinfer_route_skips_rank_one() {
        let r = PipelineRoute::pipeinfer(5);
        assert_eq!(r.ranks(), &[0, 2, 3, 4]);
        assert_eq!(r.n_stages(), 4);
        assert_eq!(r.stage_of(1), None);
        assert_eq!(r.stage_of(2), Some(1));
    }

    #[test]
    fn pipeinfer_two_ranks_has_single_stage() {
        let r = PipelineRoute::pipeinfer(2);
        assert_eq!(r.ranks(), &[0]);
        assert_eq!(r.head(), 0);
        assert_eq!(r.last(), 0);
    }

    #[test]
    fn next_and_prev_navigation() {
        let r = PipelineRoute::pipeinfer(5);
        assert_eq!(r.next_after(0), Some(2));
        assert_eq!(r.next_after(3), Some(4));
        assert_eq!(r.next_after(4), None);
        assert_eq!(r.prev_before(0), None);
        assert_eq!(r.prev_before(2), Some(0));
        assert_eq!(r.next_after(1), None, "draft rank is not on the route");
    }

    #[test]
    #[should_panic]
    fn empty_route_is_rejected() {
        let _ = PipelineRoute::new(vec![]);
    }
}
