//! Cluster assembly and execution helpers for the baseline strategies.
//!
//! A [`ExecutionMode`] describes *how* compute happens:
//!
//! * [`ExecutionMode::Real`] — tiny real models under the threaded driver
//!   (wall-clock time, actual tensors).  Used by tests and examples.
//! * [`ExecutionMode::Sim`] — paper-scale model pairs and hardware presets
//!   under the discrete-event simulator (virtual time, oracle tokens).
//!   Used by the figure benchmarks.
//!
//! `run_iterative` / `run_speculative` build the head and worker behaviors
//! for a given node count and execute them, returning the head's
//! [`GenerationRecord`] plus cluster statistics.  `pipeinfer-core` provides
//! the same entry point for PipeInfer itself.

use crate::drafter::{OracleDrafter, RealDrafter};
use crate::engine::{RealHeadEngine, RealStageEngine, SimHeadEngine, SimStageEngine};
use crate::iterative::IterativeHead;
use crate::message::PipeMsg;
use crate::route::PipelineRoute;
use crate::speculative::SpeculativeHead;
use crate::worker::PipelineWorker;
use crate::{GenConfig, GenerationRecord};
use pi_cluster::sim::SimDriver;
use pi_cluster::threaded::ThreadedDriver;
use pi_cluster::{ClusterStats, NodeBehavior, Topology};
use pi_model::{Model, OracleDraft, OracleTarget};
use pi_perf::{ClusterSpec, CostModel, ModelCost, ModelPair};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How model compute is realised during a run.
#[derive(Clone)]
pub enum ExecutionMode {
    /// Real tiny models, threaded driver, wall-clock time.
    Real {
        /// The target model.
        target: Arc<Model>,
        /// The draft model (ignored by the iterative baseline).
        draft: Arc<Model>,
    },
    /// Cost-model simulation of a paper-scale deployment.
    Sim {
        /// Target/draft pair with its acceptance rate.
        pair: ModelPair,
        /// Hardware the deployment runs on (node count = pipeline size).
        cluster: ClusterSpec,
        /// Seed for the token oracles (fixed seed ⇒ bit-reproducible runs).
        oracle_seed: u64,
    },
}

impl ExecutionMode {
    /// Number of ranks this mode naturally runs with (`Sim` deployments are
    /// sized by their cluster spec; `Real` runs accept any count).
    pub fn preferred_nodes(&self) -> Option<usize> {
        match self {
            ExecutionMode::Real { .. } => None,
            ExecutionMode::Sim { cluster, .. } => Some(cluster.n_nodes()),
        }
    }
}

/// Result of executing one generation run on a cluster.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The head rank's record of the generation.
    pub record: GenerationRecord,
    /// Driver statistics (per-rank utilisation, messages, bytes).
    pub stats: ClusterStats,
    /// Whether every rank finished cleanly.
    pub completed: bool,
}

/// Shared handle type used to pull the record out of the head behavior.
pub type RecordHandle = Arc<Mutex<Option<GenerationRecord>>>;

fn take_record(handle: &RecordHandle) -> GenerationRecord {
    handle
        .lock()
        .unwrap()
        .clone()
        .expect("head rank did not produce a generation record (run incomplete?)")
}

/// Executes behaviors under the driver matching the execution mode.
pub fn execute(
    mode: &ExecutionMode,
    behaviors: Vec<Box<dyn NodeBehavior<PipeMsg>>>,
    handle: &RecordHandle,
) -> RunOutput {
    match mode {
        ExecutionMode::Real { .. } => {
            let out = ThreadedDriver::new()
                .with_timeout(Duration::from_secs(120))
                .run(behaviors);
            RunOutput {
                record: take_record(handle),
                stats: out.stats,
                completed: out.completed,
            }
        }
        ExecutionMode::Sim { cluster, .. } => {
            let topology: Topology = cluster.topology();
            let out = SimDriver::new(topology).run(behaviors);
            RunOutput {
                record: take_record(handle),
                stats: out.stats,
                completed: out.completed,
            }
        }
    }
}

/// Builds the worker behaviors for stages `1..n_stages` of `route`.
pub fn build_workers(
    mode: &ExecutionMode,
    route: &PipelineRoute,
    splits: &[std::ops::Range<usize>],
    config: &GenConfig,
) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
    let mut out: Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> = Vec::new();
    for (stage, &rank) in route.ranks().iter().enumerate().skip(1) {
        let worker: Box<dyn NodeBehavior<PipeMsg>> = match mode {
            ExecutionMode::Real { target, .. } => Box::new(PipelineWorker::new(
                rank,
                route.clone(),
                Box::new(RealStageEngine::new(
                    target.clone(),
                    splits[stage].clone(),
                    config.kv_capacity,
                )),
            )),
            ExecutionMode::Sim { pair, cluster, .. } => Box::new(PipelineWorker::new(
                rank,
                route.clone(),
                Box::new(SimStageEngine::new(
                    CostModel::new(cluster.node(rank).clone()),
                    ModelCost::new(pair.target.cfg.clone(), pair.target.quant),
                    splits[stage].len(),
                )),
            )),
        };
        out.push((rank, worker));
    }
    out
}

/// Builds a head engine for stage 0 of `route`.
pub fn build_head_engine(
    mode: &ExecutionMode,
    splits: &[std::ops::Range<usize>],
    config: &GenConfig,
) -> Box<dyn crate::engine::HeadEngine> {
    match mode {
        ExecutionMode::Real { target, .. } => Box::new(RealHeadEngine::new(
            target.clone(),
            splits[0].clone(),
            config.kv_capacity,
        )),
        ExecutionMode::Sim {
            pair,
            cluster,
            oracle_seed,
        } => Box::new(SimHeadEngine::new(
            CostModel::new(cluster.node(0).clone()),
            ModelCost::new(pair.target.cfg.clone(), pair.target.quant),
            splits[0].len(),
            OracleTarget::new(*oracle_seed, pair.target.cfg.vocab_size as u32),
        )),
    }
}

/// Builds a drafter hosted on rank `host_rank`.
pub fn build_drafter(
    mode: &ExecutionMode,
    host_rank: usize,
    config: &GenConfig,
) -> Box<dyn crate::drafter::Drafter> {
    match mode {
        ExecutionMode::Real { draft, .. } => Box::new(RealDrafter::new(
            draft.as_ref().clone(),
            config.kv_capacity,
        )),
        ExecutionMode::Sim {
            pair,
            cluster,
            oracle_seed,
        } => Box::new(OracleDrafter::new(
            OracleTarget::new(*oracle_seed, pair.target.cfg.vocab_size as u32),
            OracleDraft::new(
                oracle_seed.wrapping_add(0x5eed_cafe),
                pair.target.cfg.vocab_size as u32,
                pair.acceptance_rate,
            ),
            CostModel::new(cluster.node(host_rank).clone()),
            ModelCost::new(pair.draft.cfg.clone(), pair.draft.quant),
        )),
    }
}

/// Number of decoder layers in the target model of `mode`.
pub fn target_layers(mode: &ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Real { target, .. } => target.config().n_layers,
        ExecutionMode::Sim { pair, .. } => pair.target.cfg.n_layers,
    }
}

/// Orders behaviors by rank into a dense vector for the drivers.
pub fn assemble(
    n_nodes: usize,
    head: Box<dyn NodeBehavior<PipeMsg>>,
    mut others: Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)>,
) -> Vec<Box<dyn NodeBehavior<PipeMsg>>> {
    let mut slots: Vec<Option<Box<dyn NodeBehavior<PipeMsg>>>> =
        (0..n_nodes).map(|_| None).collect();
    slots[0] = Some(head);
    for (rank, b) in others.drain(..) {
        slots[rank] = Some(b);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(rank, slot)| slot.unwrap_or_else(|| panic!("rank {rank} has no behavior")))
        .collect()
}

/// Runs pipeline-parallel iterative inference across `n_nodes` ranks.
pub fn run_iterative(mode: &ExecutionMode, n_nodes: usize, config: &GenConfig) -> RunOutput {
    assert!(n_nodes >= 1);
    let route = PipelineRoute::baseline(n_nodes);
    let splits = Model::split_layers(target_layers(mode), n_nodes);
    let handle: RecordHandle = Arc::new(Mutex::new(None));
    let head = Box::new(IterativeHead::new(
        route.clone(),
        build_head_engine(mode, &splits, config),
        config.clone(),
        handle.clone(),
    ));
    let workers = build_workers(mode, &route, &splits, config);
    let behaviors = assemble(n_nodes, head, workers);
    execute(mode, behaviors, &handle)
}

/// Runs pipeline-parallel speculative inference (the SpecInfer-style
/// baseline) across `n_nodes` ranks with the draft model on the head.
pub fn run_speculative(mode: &ExecutionMode, n_nodes: usize, config: &GenConfig) -> RunOutput {
    assert!(n_nodes >= 1);
    let route = PipelineRoute::baseline(n_nodes);
    let splits = Model::split_layers(target_layers(mode), n_nodes);
    let handle: RecordHandle = Arc::new(Mutex::new(None));
    let head = Box::new(SpeculativeHead::new(
        route.clone(),
        build_head_engine(mode, &splits, config),
        build_drafter(mode, 0, config),
        config.clone(),
        handle.clone(),
    ));
    let workers = build_workers(mode, &route, &splits, config);
    let behaviors = assemble(n_nodes, head, workers);
    execute(mode, behaviors, &handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::ModelConfig;

    fn real_mode(seed: u64) -> ExecutionMode {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(cfg.clone(), seed));
        // Perturbed draft: well-aligned but not identical.
        let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
        ExecutionMode::Real { target, draft }
    }

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    #[test]
    fn real_iterative_and_speculative_agree_on_output() {
        let mode = real_mode(3);
        let config = GenConfig::small_test(vec![10, 20, 30, 40, 50], 12);
        let iter = run_iterative(&mode, 3, &config);
        let spec = run_speculative(&mode, 3, &config);
        assert!(iter.completed && spec.completed);
        assert_eq!(iter.record.tokens.len(), 12);
        assert!(spec.record.tokens.len() >= 12);
        assert_eq!(
            iter.record.tokens[..12],
            spec.record.tokens[..12],
            "speculative decoding must not change greedy output"
        );
    }

    #[test]
    fn sim_iterative_speed_is_roughly_constant_in_node_count() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 24,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let s4 = run_iterative(&sim_mode(4), 4, &config).record.generation_speed();
        let s16 = run_iterative(&sim_mode(16), 16, &config).record.generation_speed();
        let ratio = s16 / s4;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn sim_speculative_beats_iterative_with_good_alignment() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let iter = run_iterative(&sim_mode(8), 8, &config);
        let spec = run_speculative(&sim_mode(8), 8, &config);
        assert!(iter.completed && spec.completed);
        let su = spec.record.generation_speed() / iter.record.generation_speed();
        assert!(su > 1.1, "speculative speedup only {su}");
        // TTFT: speculative pays the drafting latency before its first token.
        assert!(spec.record.ttft() > iter.record.ttft());
    }

    #[test]
    fn sim_runs_are_deterministic() {
        let config = GenConfig {
            prompt: vec![7; 8],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let a = run_speculative(&sim_mode(4), 4, &config);
        let b = run_speculative(&sim_mode(4), 4, &config);
        assert_eq!(a.record.tokens, b.record.tokens);
        assert_eq!(a.record.finished_at, b.record.finished_at);
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }
}
