//! Thin strategy-specific entry points over the [`crate::deploy`] layer.
//!
//! `run_iterative` / `run_speculative` execute the two baseline strategies
//! for a given execution mode and node count; `pipeinfer_core::run_pipeinfer`
//! is the analogous wrapper for PipeInfer itself.  All three delegate every
//! piece of assembly (routes, engines, drafters, workers, driver selection)
//! to [`Deployment::run`] — new strategies should implement
//! [`crate::deploy::Strategy`] instead of adding a runner here.

use crate::deploy::{Deployment, ExecutionMode, IterativeStrategy, RunOutput, SpeculativeStrategy};
use crate::GenConfig;

/// Runs pipeline-parallel iterative inference across `n_nodes` ranks.
pub fn run_iterative(mode: &ExecutionMode, n_nodes: usize, config: &GenConfig) -> RunOutput {
    Deployment::new(IterativeStrategy).run(mode, n_nodes, config)
}

/// Runs pipeline-parallel speculative inference (the SpecInfer-style
/// baseline) across `n_nodes` ranks with the draft model on the head.
pub fn run_speculative(mode: &ExecutionMode, n_nodes: usize, config: &GenConfig) -> RunOutput {
    Deployment::new(SpeculativeStrategy).run(mode, n_nodes, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{Model, ModelConfig};
    use pi_perf::{ClusterSpec, ModelPair};
    use std::sync::Arc;

    fn real_mode(seed: u64) -> ExecutionMode {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(cfg.clone(), seed));
        // Perturbed draft: well-aligned but not identical.
        let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
        ExecutionMode::Real { target, draft }
    }

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    #[test]
    fn real_iterative_and_speculative_agree_on_output() {
        let mode = real_mode(3);
        let config = GenConfig::small_test(vec![10, 20, 30, 40, 50], 12);
        let iter = run_iterative(&mode, 3, &config);
        let spec = run_speculative(&mode, 3, &config);
        assert!(iter.completed && spec.completed);
        assert_eq!(iter.record.tokens.len(), 12);
        assert!(spec.record.tokens.len() >= 12);
        assert_eq!(
            iter.record.tokens[..12],
            spec.record.tokens[..12],
            "speculative decoding must not change greedy output"
        );
    }

    #[test]
    fn sim_iterative_speed_is_roughly_constant_in_node_count() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 24,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let s4 = run_iterative(&sim_mode(4), 4, &config)
            .record
            .generation_speed();
        let s16 = run_iterative(&sim_mode(16), 16, &config)
            .record
            .generation_speed();
        let ratio = s16 / s4;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn sim_speculative_beats_iterative_with_good_alignment() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let iter = run_iterative(&sim_mode(8), 8, &config);
        let spec = run_speculative(&sim_mode(8), 8, &config);
        assert!(iter.completed && spec.completed);
        let su = spec.record.generation_speed() / iter.record.generation_speed();
        assert!(su > 1.1, "speculative speedup only {su}");
        // TTFT: speculative pays the drafting latency before its first token.
        assert!(spec.record.ttft() > iter.record.ttft());
    }

    #[test]
    fn sim_runs_are_deterministic() {
        let config = GenConfig {
            prompt: vec![7; 8],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let a = run_speculative(&sim_mode(4), 4, &config);
        let b = run_speculative(&sim_mode(4), 4, &config);
        assert_eq!(a.record.tokens, b.record.tokens);
        assert_eq!(a.record.finished_at, b.record.finished_at);
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }
}
