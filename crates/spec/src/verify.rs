//! Greedy token-tree verification.
//!
//! The paper adopts SpecInfer's verification algorithm; under greedy sampling
//! (which the whole evaluation uses, so that all strategies produce identical
//! output) it reduces to longest-prefix matching of the drafted chain against
//! the target model's greedy continuation, followed by one "free" token —
//! either the correction at the first mismatch or the bonus token after a
//! fully accepted chain.

use pi_model::{Token, TokenTree, TreeNodeId};

/// Outcome of verifying one drafted chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Draft tokens accepted (a prefix of the drafted chain).
    pub accepted: Vec<Token>,
    /// The new pending token: the target's correction at the first mismatch,
    /// or the bonus continuation if every draft token was accepted.  It is
    /// guaranteed correct (it is the target's own greedy choice) but has not
    /// been evaluated by the target pipeline yet.
    pub pending: Token,
}

impl VerifyOutcome {
    /// Number of accepted draft tokens.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Total new tokens produced by the verification (accepted drafts plus
    /// the pending token).
    pub fn n_generated(&self) -> usize {
        self.accepted.len() + 1
    }
}

/// Verifies a drafted chain against the target's greedy continuations.
///
/// * `draft` — the drafted tokens `d₁ … d_k`.
/// * `truth` — the target's greedy token *after* each evaluated batch entry:
///   `truth[0]` is the target's choice for the position of `d₁` (i.e. the
///   token following the pending token), `truth[i]` the choice following
///   `d_i`.  Must therefore have length `draft.len() + 1`.
///
/// Panics if `truth` is shorter than `draft.len() + 1`.
pub fn verify_greedy(draft: &[Token], truth: &[Token]) -> VerifyOutcome {
    assert!(
        truth.len() > draft.len(),
        "need {} truth tokens, got {}",
        draft.len() + 1,
        truth.len()
    );
    let mut accepted = Vec::with_capacity(draft.len());
    let mut expected = truth[0];
    for (i, &d) in draft.iter().enumerate() {
        if d == expected {
            accepted.push(d);
            expected = truth[i + 1];
        } else {
            break;
        }
    }
    VerifyOutcome {
        accepted,
        pending: expected,
    }
}

/// Outcome of verifying one speculation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeVerifyOutcome {
    /// Node ids of the accepted root-to-leaf path, in depth order.
    pub accepted_path: Vec<TreeNodeId>,
    /// Tokens along the accepted path (same length as `accepted_path`).
    pub accepted: Vec<Token>,
    /// The new pending token: the target's own greedy choice after the
    /// deepest accepted node (or at the tree's root position when no branch
    /// matched).  Known-correct but not yet evaluated by the pipeline.
    pub pending: Token,
}

impl TreeVerifyOutcome {
    /// Number of accepted tree nodes.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Total new tokens produced by the verification (accepted path plus the
    /// pending token).
    pub fn n_generated(&self) -> usize {
        self.accepted.len() + 1
    }
}

/// Verifies a speculation tree against the target's greedy continuations,
/// walking the deepest accepted root-to-leaf path.
///
/// * `tree` — the speculated token tree.
/// * `truth` — the target's greedy token after each verified position:
///   `truth[0]` is the target's choice at the tree's root position (i.e. the
///   token following the pending token), `truth[1 + id]` its choice after
///   node `id`'s root-to-node path.  Must therefore have length
///   `tree.len() + 1`; this is exactly the per-entry output of
///   `HeadEngine::finalize_tree` over a `[pending] ++ tree` batch.
///
/// At every level at most one child can match the target's (deterministic
/// greedy) choice; if several siblings carry the same token the first in
/// node-id order wins, which is also the branch whose KV entries are kept.
/// For a single-branch tree this reduces exactly to [`verify_greedy`].
///
/// Panics if `truth` is shorter than `tree.len() + 1`.
pub fn verify_tree(tree: &TokenTree, truth: &[Token]) -> TreeVerifyOutcome {
    assert!(
        truth.len() > tree.len(),
        "need {} truth tokens, got {}",
        tree.len() + 1,
        truth.len()
    );
    let nodes = tree.nodes();
    let mut accepted_path = Vec::new();
    let mut accepted = Vec::new();
    let mut expected = truth[0];
    let mut level: Vec<TreeNodeId> = tree.roots();
    while let Some(&hit) = level.iter().find(|&&id| nodes[id].token == expected) {
        accepted_path.push(hit);
        accepted.push(expected);
        expected = truth[1 + hit];
        level = nodes[hit].children.clone();
    }
    TreeVerifyOutcome {
        accepted_path,
        accepted,
        pending: expected,
    }
}

/// Running acceptance-rate tracker used by head ranks for reporting and by
/// the reactive-speculation heuristics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AcceptanceTracker {
    drafted: u64,
    accepted: u64,
}

impl AcceptanceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one verification round.
    pub fn record(&mut self, drafted: usize, accepted: usize) {
        self.drafted += drafted as u64;
        self.accepted += accepted as u64;
    }

    /// Total drafted tokens.
    pub fn drafted(&self) -> u64 {
        self.drafted
    }

    /// Total accepted tokens.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Observed acceptance rate, or `None` before any tokens were drafted.
    pub fn rate(&self) -> Option<f64> {
        if self.drafted == 0 {
            None
        } else {
            Some(self.accepted as f64 / self.drafted as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_accepted_returns_bonus_token() {
        let out = verify_greedy(&[5, 6, 7], &[5, 6, 7, 8]);
        assert_eq!(out.accepted, vec![5, 6, 7]);
        assert_eq!(out.pending, 8);
        assert_eq!(out.n_generated(), 4);
    }

    #[test]
    fn first_token_mismatch_yields_correction_only() {
        let out = verify_greedy(&[5, 6, 7], &[9, 1, 2, 3]);
        assert!(out.accepted.is_empty());
        assert_eq!(out.pending, 9);
        assert_eq!(out.n_generated(), 1);
    }

    #[test]
    fn partial_acceptance_stops_at_first_mismatch() {
        let out = verify_greedy(&[5, 6, 7, 8], &[5, 6, 99, 100, 101]);
        assert_eq!(out.accepted, vec![5, 6]);
        assert_eq!(out.pending, 99);
    }

    #[test]
    fn empty_draft_only_produces_pending() {
        let out = verify_greedy(&[], &[42]);
        assert!(out.accepted.is_empty());
        assert_eq!(out.pending, 42);
    }

    #[test]
    #[should_panic]
    fn short_truth_is_rejected() {
        let _ = verify_greedy(&[1, 2], &[1, 2]);
    }

    #[test]
    fn acceptance_tracker_rates() {
        let mut t = AcceptanceTracker::new();
        assert_eq!(t.rate(), None);
        t.record(4, 3);
        t.record(4, 1);
        assert_eq!(t.drafted(), 8);
        assert_eq!(t.accepted(), 4);
        assert!((t.rate().unwrap() - 0.5).abs() < 1e-12);
    }

    /// Builds the tree:
    /// ```text
    ///      a(10)   b(20)
    ///        |
    ///      c(11)
    ///        |
    ///      d(12)
    /// ```
    fn two_root_tree() -> TokenTree {
        let mut t = TokenTree::new();
        let a = t.add(None, 10, 0.9);
        let _b = t.add(None, 20, 0.4);
        let c = t.add(Some(a), 11, 0.8);
        let _d = t.add(Some(c), 12, 0.7);
        t
    }

    #[test]
    fn tree_accepts_deepest_matching_path() {
        let t = two_root_tree();
        // truth is indexed [root] ++ [after node id]: target chooses 10
        // (root), then 11 (after node 0), then 99 (after node 2, rejecting
        // d's 12).
        let out = verify_tree(&t, &[10, 11, 0, 99, 0]);
        assert_eq!(out.accepted_path, vec![0, 2]);
        assert_eq!(out.accepted, vec![10, 11]);
        assert_eq!(out.pending, 99);
        assert_eq!(out.n_generated(), 3);
    }

    #[test]
    fn tree_falls_back_to_sibling_branch() {
        let t = two_root_tree();
        // Target chooses 20: the second root is the accepted branch.
        let out = verify_tree(&t, &[20, 0, 0, 0, 77]);
        assert_eq!(out.accepted_path, vec![1]);
        assert_eq!(out.accepted, vec![20]);
        // The pending token is the target's choice after node 1 (= truth[2]).
        assert_eq!(out.pending, 0);
    }

    #[test]
    fn tree_with_no_matching_root_yields_correction_only() {
        let t = two_root_tree();
        let out = verify_tree(&t, &[55, 1, 2, 3, 4]);
        assert!(out.accepted_path.is_empty());
        assert_eq!(out.pending, 55);
        assert_eq!(out.n_generated(), 1);
    }

    #[test]
    fn empty_tree_only_produces_pending() {
        let out = verify_tree(&TokenTree::new(), &[42]);
        assert!(out.accepted.is_empty());
        assert_eq!(out.pending, 42);
    }

    #[test]
    #[should_panic]
    fn short_tree_truth_is_rejected() {
        let t = two_root_tree();
        let _ = verify_tree(&t, &[10, 11]);
    }

    proptest! {
        /// A degenerate single-branch tree must verify byte-for-byte like the
        /// linear chain it encodes — the invariant that lets chains be
        /// "just" trees everywhere.
        #[test]
        fn prop_chain_tree_matches_verify_greedy(
            truth in proptest::collection::vec(0u32..50, 1..12),
            draft_noise in proptest::collection::vec(0u32..50, 0..11),
        ) {
            let k = draft_noise.len().min(truth.len().saturating_sub(1));
            let draft: Vec<u32> = (0..k).map(|i| {
                if draft_noise[i] % 2 == 0 { truth[i] } else { truth[i].wrapping_add(1) }
            }).collect();
            let pairs: Vec<(u32, f32)> = draft.iter().map(|&t| (t, 0.5)).collect();
            let tree = TokenTree::chain(&pairs);
            let linear = verify_greedy(&draft, &truth);
            let treed = verify_tree(&tree, &truth);
            prop_assert_eq!(&treed.accepted, &linear.accepted);
            prop_assert_eq!(treed.pending, linear.pending);
            // The accepted path is the chain prefix 0..n.
            prop_assert_eq!(
                treed.accepted_path,
                (0..linear.accepted.len()).collect::<Vec<_>>()
            );
        }

        /// The verified output (accepted ++ pending) must always equal the
        /// target's own greedy continuation prefix — i.e. speculative
        /// verification never changes the generated text.
        #[test]
        fn prop_output_matches_target_continuation(
            truth in proptest::collection::vec(0u32..50, 1..10),
            draft_noise in proptest::collection::vec(0u32..50, 0..9),
        ) {
            let k = draft_noise.len().min(truth.len().saturating_sub(1));
            let draft: Vec<u32> = (0..k).map(|i| {
                // Half the time the draft matches the truth, half the time not.
                if draft_noise[i] % 2 == 0 { truth[i] } else { truth[i].wrapping_add(1) }
            }).collect();
            let out = verify_greedy(&draft, &truth);
            // accepted ++ [pending] must be a prefix of the target's own
            // continuation (truth shifted appropriately).
            let mut produced = out.accepted.clone();
            produced.push(out.pending);
            for (i, tok) in produced.iter().enumerate() {
                prop_assert_eq!(*tok, truth[i]);
            }
            prop_assert!(produced.len() <= truth.len());
        }
    }
}
