//! Compute engines: how a rank evaluates its share of the model.
//!
//! Two families, sharing traits so the rank state machines are oblivious to
//! which one they run on:
//!
//! * **Real** engines ([`RealStageEngine`], [`RealHeadEngine`]) execute a
//!   tiny `pi-model` transformer.  They are used by the threaded driver for
//!   end-to-end functional tests (output equivalence between strategies) and
//!   by the examples.  Their returned cost is the measured wall time of the
//!   evaluation.
//! * **Simulated** engines ([`SimStageEngine`], [`SimHeadEngine`]) never
//!   touch weights: they return `pi-perf` roofline costs and synthesise
//!   ground-truth tokens from the alignment oracle.  They are used by the
//!   discrete-event simulator to reproduce the paper's figures at
//!   70B–180B scale.

use crate::message::{ActivationPayload, CacheOp};
use pi_model::kv_pool::KvPagePool;
use pi_model::{
    Batch, KvCache, KvCacheEvents, Model, OracleTarget, Pos, Sampler, ScratchArena, Token,
};
use pi_perf::{CostModel, ModelCost};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Per-request prefix-cache plan handed to real engines when the deployment
/// owns a [`KvPagePool`]: which pool ticket the request runs under, the full
/// prompt, and how many leading tokens are served from committed pool pages
/// instead of prefill.
///
/// Engines built with a plan use **paged** KV caches, attach the pinned
/// prefix chain for their own layer range before the first evaluation, and
/// commit their stage's frozen prompt pages back into the pool once the
/// prompt has been evaluated (idempotent — concurrent requests with the same
/// prefix merge on the pool's radix tree).
#[derive(Clone)]
pub struct PrefixPlan {
    /// The deployment-owned page pool.
    pub pool: Arc<KvPagePool>,
    /// Ticket returned by [`KvPagePool::begin_request`] for this request.
    pub ticket: u64,
    /// The request's full prompt.
    pub prompt: Vec<Token>,
    /// Leading prompt tokens attached from the pool (already clamped so at
    /// least one prompt token is always evaluated).
    pub cached_tokens: usize,
}

/// Evaluation engine of a (non-head) pipeline stage.
pub trait StageEngine: Send {
    /// Evaluates this stage's layers over `batch`, given the activations
    /// produced by the previous stage.  Returns the output activations and
    /// the compute cost in seconds.
    fn eval(&mut self, batch: &Batch, input: &ActivationPayload) -> (ActivationPayload, f64);

    /// Applies a pipelined KV-cache operation, returning its cost in seconds.
    fn apply_cache_op(&mut self, op: &CacheOp) -> f64;

    /// The stage's layer range `[lo, hi)`, used to label trace spans.  Real
    /// engines report global layer indices; simulated engines only know
    /// their layer *count* and report `[0, n_layers)`.
    fn layer_span(&self) -> (u32, u32) {
        (0, 0)
    }

    /// Drains the paged KV-cache event counters accumulated since the last
    /// call, so the owning behavior can surface them as trace events and
    /// `NodeStats` counters.  Default (sim engines, flat caches): no events.
    fn take_kv_events(&mut self) -> KvCacheEvents {
        KvCacheEvents::default()
    }
}

/// Evaluation engine of the head rank (stage 0 plus embedding, output head,
/// sampling support).
pub trait HeadEngine: Send {
    /// Embeds `batch` and evaluates the head's layer range.  Returns the
    /// activations to forward and the cost in seconds.
    fn eval_first_stage(&mut self, batch: &Batch) -> (ActivationPayload, f64);

    /// Converts the final stage's activations into the target model's greedy
    /// token after each batch entry.
    ///
    /// `context` is the accepted token sequence *preceding* the batch; real
    /// engines ignore it (they have the logits), simulated engines use it to
    /// query the ground-truth oracle.  Returns the per-entry greedy tokens
    /// and the cost (output head + sampling) in seconds.
    fn finalize(
        &mut self,
        batch: &Batch,
        payload: &ActivationPayload,
        context: &[Token],
    ) -> (Vec<Token>, f64);

    /// Tree-aware variant of [`HeadEngine::finalize`] for batches that carry
    /// a speculation tree: `parents[i]` is the batch index of entry `i`'s
    /// parent (`None` for entries continuing the accepted context directly),
    /// so each entry's greedy token is conditioned on its *root-to-node
    /// path*, not on every preceding batch entry.
    ///
    /// Real engines ignore the topology — their logits were computed under
    /// the tree attention mask that the batch's sequence-id sets encode — so
    /// the default forwards to [`HeadEngine::finalize`].  Simulated engines
    /// must override it to walk the parent links when querying the oracle.
    fn finalize_tree(
        &mut self,
        batch: &Batch,
        payload: &ActivationPayload,
        context: &[Token],
        _parents: &[Option<usize>],
    ) -> (Vec<Token>, f64) {
        self.finalize(batch, payload, context)
    }

    /// Applies a KV-cache operation on the head's own cache.
    fn apply_cache_op(&mut self, op: &CacheOp) -> f64;

    /// Drains the paged KV-cache event counters accumulated since the last
    /// call (see [`StageEngine::take_kv_events`]).  Default: no events.
    fn take_kv_events(&mut self) -> KvCacheEvents {
        KvCacheEvents::default()
    }
}

/// A real engine's pooled-cache bookkeeping: the request's plan, this
/// stage's pool identity, and whether the stage has committed its prompt
/// pages yet.
pub(crate) struct PooledState {
    plan: PrefixPlan,
    key: (usize, usize),
    committed: bool,
}

/// Builds a real engine's KV cache: paged + prefix-attached when the request
/// runs under a pool plan, the classic flat cache otherwise.
pub(crate) fn build_real_cache(
    model: &Model,
    layers: &Range<usize>,
    kv_capacity: usize,
    plan: Option<&PrefixPlan>,
) -> (KvCache, Option<PooledState>) {
    match plan {
        None => (model.new_cache_for_layers(layers, kv_capacity), None),
        Some(plan) => {
            let tpp = plan.pool.config().tokens_per_page;
            let mut cache = model.new_paged_cache_for_layers(layers, kv_capacity, tpp);
            let key = (layers.start, layers.end);
            if plan.cached_tokens > 0 {
                let pages = plan.pool.pinned_pages(plan.ticket, key);
                cache.attach_prefix(0, &pages, plan.cached_tokens);
            }
            (
                cache,
                Some(PooledState {
                    plan: plan.clone(),
                    key,
                    committed: false,
                }),
            )
        }
    }
}

/// After an evaluation that covered the tail of the prompt, freezes the full
/// prompt pages of this stage and commits them into the pool (once).
pub(crate) fn maybe_commit_prompt(
    cache: &mut KvCache,
    pooled: &mut Option<PooledState>,
    batch: &Batch,
) {
    let Some(state) = pooled else {
        return;
    };
    if state.committed {
        return;
    }
    let prompt_len = state.plan.prompt.len();
    let covers_prompt = batch.max_pos().is_some_and(|p| p + 1 >= prompt_len as Pos);
    if !covers_prompt {
        return;
    }
    let pages = cache.freeze_prefix(prompt_len);
    state.plan.pool.commit_chain(
        state.plan.ticket,
        &state.plan.prompt,
        Some((state.key, &pages)),
    );
    state.committed = true;
}

pub(crate) fn apply_op(cache: &mut KvCache, op: &CacheOp) {
    match *op {
        CacheOp::SeqCp { src, dst, p0, p1 } => cache.seq_cp(src, dst, p0, p1),
        CacheOp::SeqRm { seq, p0, p1 } => cache.seq_rm(seq, p0, p1),
        CacheOp::SeqKeep { seq } => cache.seq_keep(seq),
        CacheOp::BranchCommit {
            dst,
            path,
            first,
            n_seqs,
            p0,
            p1,
        } => cache.branch_commit(dst, path, first, n_seqs as usize, p0, p1),
        CacheOp::BranchRollback { first, n_seqs } => cache.branch_rollback(first, n_seqs as usize),
    }
}

// ---------------------------------------------------------------------------
// Real engines
// ---------------------------------------------------------------------------

/// Stage engine that runs a real (tiny) model's layer range.
///
/// Tree micro-batches submitted by the speculation strategies are evaluated
/// **level-batched**: `forward_layer_range_with` groups the whole tree (it
/// is laid out parents-before-children) into a single run, so each
/// projection walks this stage's weights once per layer for all tree nodes
/// (one `m = batch` GEMM) instead of once per node.
pub struct RealStageEngine {
    model: Arc<Model>,
    layers: Range<usize>,
    cache: KvCache,
    /// Long-lived forward-pass temporaries, reused across every token this
    /// stage ever evaluates (see `pi_model::ScratchArena`).
    scratch: ScratchArena,
    /// Present when the request runs under a KV page pool.
    pooled: Option<PooledState>,
}

impl RealStageEngine {
    /// Creates a stage engine for global layers `layers` of `model` with a
    /// KV cache of `kv_capacity` cells.
    pub fn new(model: Arc<Model>, layers: Range<usize>, kv_capacity: usize) -> Self {
        Self::new_with_plan(model, layers, kv_capacity, None)
    }

    /// [`RealStageEngine::new`] under an optional prefix-cache plan: with a
    /// plan the cache is paged, the stage's pinned prefix pages are attached
    /// before the first evaluation, and the prompt pages are committed back
    /// into the pool after prefill.
    pub fn new_with_plan(
        model: Arc<Model>,
        layers: Range<usize>,
        kv_capacity: usize,
        plan: Option<&PrefixPlan>,
    ) -> Self {
        let (cache, pooled) = build_real_cache(&model, &layers, kv_capacity, plan);
        let scratch = ScratchArena::for_config(model.config());
        Self {
            model,
            layers,
            cache,
            scratch,
            pooled,
        }
    }

    /// Read-only access to the stage's KV cache (used by consistency tests).
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }
}

impl StageEngine for RealStageEngine {
    fn eval(&mut self, batch: &Batch, input: &ActivationPayload) -> (ActivationPayload, f64) {
        let start = Instant::now();
        let hidden = match input {
            ActivationPayload::Real(t) => t,
            _ => return (ActivationPayload::Empty, 0.0),
        };
        let cells = Model::alloc_cells(batch, &mut self.cache).expect("stage KV cache exhausted");
        let out = self
            .model
            .forward_layer_range_with(
                batch,
                hidden,
                self.layers.clone(),
                &mut self.cache,
                &cells,
                &mut self.scratch,
            )
            .expect("layer-range evaluation failed");
        maybe_commit_prompt(&mut self.cache, &mut self.pooled, batch);
        (ActivationPayload::Real(out), start.elapsed().as_secs_f64())
    }

    fn apply_cache_op(&mut self, op: &CacheOp) -> f64 {
        let start = Instant::now();
        apply_op(&mut self.cache, op);
        start.elapsed().as_secs_f64()
    }

    fn layer_span(&self) -> (u32, u32) {
        (self.layers.start as u32, self.layers.end as u32)
    }

    fn take_kv_events(&mut self) -> KvCacheEvents {
        self.cache.take_events()
    }
}

/// Head engine that runs a real (tiny) model.
///
/// Like [`RealStageEngine`], tree micro-batches are evaluated level-batched
/// (one `m = batch` GEMM per projection per layer for the whole tree).
pub struct RealHeadEngine {
    model: Arc<Model>,
    layers: Range<usize>,
    cache: KvCache,
    /// Long-lived forward-pass temporaries, reused across every token the
    /// head ever evaluates.
    scratch: ScratchArena,
    /// Present when the request runs under a KV page pool.
    pooled: Option<PooledState>,
}

impl RealHeadEngine {
    /// Creates the head engine for global layers `layers` of `model`.
    pub fn new(model: Arc<Model>, layers: Range<usize>, kv_capacity: usize) -> Self {
        Self::new_with_plan(model, layers, kv_capacity, None)
    }

    /// [`RealHeadEngine::new`] under an optional prefix-cache plan (see
    /// [`RealStageEngine::new_with_plan`]).
    pub fn new_with_plan(
        model: Arc<Model>,
        layers: Range<usize>,
        kv_capacity: usize,
        plan: Option<&PrefixPlan>,
    ) -> Self {
        let (cache, pooled) = build_real_cache(&model, &layers, kv_capacity, plan);
        let scratch = ScratchArena::for_config(model.config());
        Self {
            model,
            layers,
            cache,
            scratch,
            pooled,
        }
    }

    /// Read-only access to the head's KV cache.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }
}

impl HeadEngine for RealHeadEngine {
    fn eval_first_stage(&mut self, batch: &Batch) -> (ActivationPayload, f64) {
        let start = Instant::now();
        let cells = Model::alloc_cells(batch, &mut self.cache).expect("head KV cache exhausted");
        let hidden = self.model.embed(batch);
        let out = self
            .model
            .forward_layer_range_with(
                batch,
                &hidden,
                self.layers.clone(),
                &mut self.cache,
                &cells,
                &mut self.scratch,
            )
            .expect("head layer-range evaluation failed");
        maybe_commit_prompt(&mut self.cache, &mut self.pooled, batch);
        (ActivationPayload::Real(out), start.elapsed().as_secs_f64())
    }

    fn finalize(
        &mut self,
        batch: &Batch,
        payload: &ActivationPayload,
        _context: &[Token],
    ) -> (Vec<Token>, f64) {
        let start = Instant::now();
        let hidden = match payload {
            ActivationPayload::Real(t) => t,
            _ => return (Vec::new(), 0.0),
        };
        let logits = self.model.logits(hidden);
        let sampler = Sampler::Greedy;
        let tokens = (0..batch.len())
            .map(|i| sampler.sample(logits.row(i).expect("logits row")))
            .collect();
        (tokens, start.elapsed().as_secs_f64())
    }

    fn apply_cache_op(&mut self, op: &CacheOp) -> f64 {
        let start = Instant::now();
        apply_op(&mut self.cache, op);
        start.elapsed().as_secs_f64()
    }

    fn take_kv_events(&mut self) -> KvCacheEvents {
        self.cache.take_events()
    }
}

// ---------------------------------------------------------------------------
// Simulated engines
// ---------------------------------------------------------------------------

/// Stage engine that charges roofline costs instead of computing.
pub struct SimStageEngine {
    cost_model: CostModel,
    model_cost: ModelCost,
    n_layers: usize,
}

impl SimStageEngine {
    /// Creates a simulated stage engine evaluating `n_layers` layers of the
    /// target model on the node described by `cost_model`.
    pub fn new(cost_model: CostModel, model_cost: ModelCost, n_layers: usize) -> Self {
        Self {
            cost_model,
            model_cost,
            n_layers,
        }
    }
}

impl StageEngine for SimStageEngine {
    fn eval(&mut self, batch: &Batch, _input: &ActivationPayload) -> (ActivationPayload, f64) {
        let context_len = batch.min_pos().unwrap_or(0).max(0) as usize;
        let cost =
            self.cost_model
                .layers_time(&self.model_cost, self.n_layers, batch.len(), context_len);
        let payload = ActivationPayload::Simulated {
            tokens: batch.len(),
            bytes: self.model_cost.activation_bytes(batch.len()),
        };
        (payload, cost)
    }

    fn apply_cache_op(&mut self, _op: &CacheOp) -> f64 {
        // Metadata-only operation: effectively free relative to layer
        // evaluation (the paper's "near-zero slowdown" observation).
        1e-7
    }

    fn layer_span(&self) -> (u32, u32) {
        (0, self.n_layers as u32)
    }
}

/// Head engine that charges roofline costs and answers verification queries
/// from the ground-truth oracle.
pub struct SimHeadEngine {
    cost_model: CostModel,
    model_cost: ModelCost,
    n_layers: usize,
    oracle: OracleTarget,
}

impl SimHeadEngine {
    /// Creates a simulated head engine.  `n_layers` is the head's own layer
    /// range; `oracle` supplies the target model's deterministic token
    /// dynamics.
    pub fn new(
        cost_model: CostModel,
        model_cost: ModelCost,
        n_layers: usize,
        oracle: OracleTarget,
    ) -> Self {
        Self {
            cost_model,
            model_cost,
            n_layers,
            oracle,
        }
    }

    /// The ground-truth oracle (used by tests).
    pub fn oracle(&self) -> &OracleTarget {
        &self.oracle
    }
}

impl HeadEngine for SimHeadEngine {
    fn eval_first_stage(&mut self, batch: &Batch) -> (ActivationPayload, f64) {
        let context_len = batch.min_pos().unwrap_or(0).max(0) as usize;
        let cost =
            self.cost_model
                .layers_time(&self.model_cost, self.n_layers, batch.len(), context_len);
        let payload = ActivationPayload::Simulated {
            tokens: batch.len(),
            bytes: self.model_cost.activation_bytes(batch.len()),
        };
        (payload, cost)
    }

    fn finalize(
        &mut self,
        batch: &Batch,
        _payload: &ActivationPayload,
        context: &[Token],
    ) -> (Vec<Token>, f64) {
        // Ground truth after consuming each batch prefix.  Batches are token
        // chains (the pending token followed by drafted tokens), so the
        // prefix of batch entries is exactly the consumed continuation.
        let mut ctx: Vec<Token> = context.to_vec();
        let mut out = Vec::with_capacity(batch.len());
        for entry in batch.iter() {
            ctx.push(entry.token);
            out.push(self.oracle.next_token(&ctx));
        }
        let cost = self.cost_model.io_time(&self.model_cost, batch.len())
            + self.cost_model.sampling_time(&self.model_cost, batch.len());
        (out, cost)
    }

    fn finalize_tree(
        &mut self,
        batch: &Batch,
        _payload: &ActivationPayload,
        context: &[Token],
        parents: &[Option<usize>],
    ) -> (Vec<Token>, f64) {
        assert_eq!(parents.len(), batch.len(), "one parent link per entry");
        // Ground truth after each entry's root-to-node token path.  Parents
        // precede children, so each path extends an already-computed one.
        let mut paths: Vec<Vec<Token>> = Vec::with_capacity(batch.len());
        let mut out = Vec::with_capacity(batch.len());
        for (i, entry) in batch.iter().enumerate() {
            let mut path = match parents[i] {
                Some(p) => {
                    assert!(p < i, "parent {p} does not precede entry {i}");
                    paths[p].clone()
                }
                None => context.to_vec(),
            };
            path.push(entry.token);
            out.push(self.oracle.next_token(&path));
            paths.push(path);
        }
        let cost = self.cost_model.io_time(&self.model_cost, batch.len())
            + self.cost_model.sampling_time(&self.model_cost, batch.len());
        (out, cost)
    }

    fn apply_cache_op(&mut self, _op: &CacheOp) -> f64 {
        1e-7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::ModelConfig;
    use pi_perf::NodeSpec;
    use pi_tensor::QuantKind;

    fn tiny() -> Arc<Model> {
        Arc::new(Model::random(ModelConfig::tiny_llama(64, 4), 11))
    }

    #[test]
    fn real_stage_engine_matches_direct_evaluation() {
        let model = tiny();
        let batch = Batch::prompt(&[1, 2, 3], 0, 0);

        // Direct full forward.
        let mut full_cache = model.new_cache_for_layers(&(0..4), 64);
        let expected = model.forward_full(&batch, &mut full_cache).unwrap();

        // Head engine (layers 0..2) + stage engine (layers 2..4) + logits.
        let mut head = RealHeadEngine::new(model.clone(), 0..2, 64);
        let mut stage = RealStageEngine::new(model.clone(), 2..4, 64);
        let (mid, _) = head.eval_first_stage(&batch);
        let (out, cost) = stage.eval(&batch, &mid);
        assert!(cost >= 0.0);
        let hidden = match out {
            ActivationPayload::Real(t) => t,
            _ => panic!("expected real payload"),
        };
        let logits = model.logits(&hidden);
        for (a, b) in expected.data().iter().zip(logits.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn real_head_finalize_returns_greedy_tokens() {
        let model = tiny();
        let batch = Batch::prompt(&[5, 6], 0, 0);
        let mut head = RealHeadEngine::new(model.clone(), 0..4, 64);
        let (hidden, _) = head.eval_first_stage(&batch);
        let (tokens, _) = head.finalize(&batch, &hidden, &[]);
        assert_eq!(tokens.len(), 2);

        // Cross-check against a direct forward pass.
        let mut cache = model.new_cache_for_layers(&(0..4), 64);
        let logits = model.forward_full(&batch, &mut cache).unwrap();
        assert_eq!(tokens[1], Sampler::Greedy.sample(logits.row(1).unwrap()));
    }

    #[test]
    fn real_engines_honour_cache_ops() {
        let model = tiny();
        let mut stage = RealStageEngine::new(model.clone(), 0..4, 64);
        let batch = Batch::prompt(&[1, 2, 3, 4], 0, 0);
        let hidden = ActivationPayload::Real(model.embed(&batch));
        let _ = stage.eval(&batch, &hidden);
        assert_eq!(stage.cache().seq_len(0), 4);
        stage.apply_cache_op(&CacheOp::SeqRm {
            seq: 0,
            p0: 2,
            p1: i32::MAX,
        });
        assert_eq!(stage.cache().seq_len(0), 2);
    }

    #[test]
    fn real_stage_engine_passes_empty_payload_through() {
        let model = tiny();
        let mut stage = RealStageEngine::new(model, 0..4, 64);
        let batch = Batch::single(1, 0, 0);
        let (out, cost) = stage.eval(&batch, &ActivationPayload::Empty);
        assert!(matches!(out, ActivationPayload::Empty));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn real_engines_apply_branch_commit_and_rollback() {
        let model = tiny();
        let mut stage = RealStageEngine::new(model.clone(), 0..4, 64);
        // Canonical context at positions 0..2 in sequence 0.
        let ctx_batch = Batch::prompt(&[1, 2], 0, 0);
        let _ = stage.eval(
            &ctx_batch,
            &ActivationPayload::Real(model.embed(&ctx_batch)),
        );
        // Give both branch sequences the context prefix, then evaluate a
        // two-leaf tree: shared root at pos 2, two leaves at pos 3.
        for dst in [1u32, 2] {
            stage.apply_cache_op(&CacheOp::SeqCp {
                src: 0,
                dst,
                p0: 0,
                p1: i32::MAX,
            });
        }
        let mut tree_batch = Batch::new();
        tree_batch.push(7, 2, vec![1, 2], true);
        tree_batch.push(8, 3, vec![1], true);
        tree_batch.push(9, 3, vec![2], true);
        let _ = stage.eval(
            &tree_batch,
            &ActivationPayload::Real(model.embed(&tree_batch)),
        );
        assert_eq!(stage.cache().used(), 5);
        // Accept the path through leaf sequence 2 (root + one leaf).
        stage.apply_cache_op(&CacheOp::BranchCommit {
            dst: 0,
            path: 2,
            first: 1,
            n_seqs: 2,
            p0: 2,
            p1: 4,
        });
        assert_eq!(stage.cache().seq_len(0), 4);
        assert_eq!(stage.cache().seq_len(1), 0);
        assert_eq!(stage.cache().seq_len(2), 0);
        assert_eq!(stage.cache().used(), 4, "rejected leaf freed");
        // A rollback after the fact is a no-op on already-dropped sequences.
        stage.apply_cache_op(&CacheOp::BranchRollback {
            first: 1,
            n_seqs: 2,
        });
        assert_eq!(stage.cache().used(), 4);
    }

    #[test]
    fn real_stage_engine_tree_batch_matches_per_node_evaluation() {
        let model = tiny();
        let mut batched = RealStageEngine::new(model.clone(), 0..4, 64);
        let mut per_node = RealStageEngine::new(model.clone(), 0..4, 64);

        // Identical context + branch setup on both engines.
        let ctx_batch = Batch::prompt(&[1, 2], 0, 0);
        for eng in [&mut batched, &mut per_node] {
            let _ = eng.eval(
                &ctx_batch,
                &ActivationPayload::Real(model.embed(&ctx_batch)),
            );
            for dst in [1u32, 2] {
                eng.apply_cache_op(&CacheOp::SeqCp {
                    src: 0,
                    dst,
                    p0: 0,
                    p1: i32::MAX,
                });
            }
        }

        // Shared root at pos 2, two sibling leaves at pos 3: evaluated as one
        // level-batched tree on `batched`, and one node at a time (in
        // parents-first order, the sequential schedule) on `per_node`.
        let mut tree_batch = Batch::new();
        tree_batch.push(7, 2, vec![1, 2], true);
        tree_batch.push(8, 3, vec![1], true);
        tree_batch.push(9, 3, vec![2], true);
        let (out, _) = batched.eval(
            &tree_batch,
            &ActivationPayload::Real(model.embed(&tree_batch)),
        );
        let hidden = match out {
            ActivationPayload::Real(t) => t,
            _ => panic!("expected real payload"),
        };

        for (i, entry) in tree_batch.entries().iter().enumerate() {
            let mut node = Batch::new();
            node.push(entry.token, entry.pos, entry.seq_ids.clone(), true);
            let (out, _) = per_node.eval(&node, &ActivationPayload::Real(model.embed(&node)));
            let node_hidden = match out {
                ActivationPayload::Real(t) => t,
                _ => panic!("expected real payload"),
            };
            for (a, b) in hidden
                .row(i)
                .unwrap()
                .iter()
                .zip(node_hidden.row(0).unwrap())
            {
                assert!((a - b).abs() < 1e-4, "node {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sim_finalize_tree_conditions_on_paths_not_batch_order() {
        let (cm, mc) = sim_pair();
        let oracle = OracleTarget::new(5, 32000);
        let mut head = SimHeadEngine::new(cm, mc, 10, oracle);
        let context = vec![10, 20];
        // Entry 0 continues the context; entries 1 and 2 are sibling
        // branches under it (same position, different branches).
        let mut batch = Batch::new();
        batch.push(30, 2, vec![0, 1, 2], true);
        batch.push(40, 3, vec![1], true);
        batch.push(50, 3, vec![2], true);
        let parents = vec![None, Some(0), Some(0)];
        let (tokens, cost) =
            head.finalize_tree(&batch, &ActivationPayload::Empty, &context, &parents);
        assert!(cost > 0.0);
        assert_eq!(tokens[0], oracle.next_token(&[10, 20, 30]));
        assert_eq!(tokens[1], oracle.next_token(&[10, 20, 30, 40]));
        // The sibling is conditioned on its own path — entry 1's token must
        // NOT leak into entry 2's context.
        assert_eq!(tokens[2], oracle.next_token(&[10, 20, 30, 50]));
        assert_ne!(tokens[2], oracle.next_token(&[10, 20, 30, 40, 50]));
    }

    fn sim_pair() -> (CostModel, ModelCost) {
        (
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K),
        )
    }

    #[test]
    fn sim_stage_engine_costs_scale_with_layers_and_batch() {
        let (cm, mc) = sim_pair();
        let mut e10 = SimStageEngine::new(cm.clone(), mc.clone(), 10);
        let mut e20 = SimStageEngine::new(cm, mc, 20);
        let single = Batch::single(1, 100, 0);
        let (_, c10) = e10.eval(&single, &ActivationPayload::Empty);
        let (_, c20) = e20.eval(&single, &ActivationPayload::Empty);
        assert!((c20 / c10 - 2.0).abs() < 0.01);
        let (p, _) = e10.eval(
            &Batch::prompt(&[1, 2, 3, 4], 0, 0),
            &ActivationPayload::Empty,
        );
        assert_eq!(p.tokens(), 4);
        assert_eq!(p.nbytes(), 4 * 8192 * 4);
    }

    #[test]
    fn sim_head_finalize_uses_oracle_ground_truth() {
        let (cm, mc) = sim_pair();
        let oracle = OracleTarget::new(3, 32000);
        let mut head = SimHeadEngine::new(cm, mc, 10, oracle);
        let context = vec![10, 20, 30];
        let batch = Batch::prompt(&[40, 50], 3, 0);
        let (tokens, cost) = head.finalize(&batch, &ActivationPayload::Empty, &context);
        assert_eq!(tokens.len(), 2);
        assert!(cost > 0.0);
        assert_eq!(tokens[0], oracle.next_token(&[10, 20, 30, 40]));
        assert_eq!(tokens[1], oracle.next_token(&[10, 20, 30, 40, 50]));
    }

    #[test]
    fn sim_cache_ops_are_cheap() {
        let (cm, mc) = sim_pair();
        let mut e = SimStageEngine::new(cm, mc, 10);
        let single = Batch::single(1, 100, 0);
        let (_, eval_cost) = e.eval(&single, &ActivationPayload::Empty);
        let op_cost = e.apply_cache_op(&CacheOp::SeqKeep { seq: 0 });
        assert!(op_cost < eval_cost / 100.0);
    }
}
