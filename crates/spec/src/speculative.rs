//! Pipeline-parallel speculative inference — baseline 2 (SpecInfer-style).
//!
//! The head rank hosts the draft model.  Each round it *synchronously*
//! drafts a speculation chain (the target pipeline sits idle meanwhile —
//! the latency penalty the paper highlights), sends one verification batch
//! containing the pending token plus the drafted chain through the pipeline,
//! waits for the result, verifies with the SpecInfer greedy rule, cleans up
//! rejected KV entries with a pipelined `seq_rm`, and repeats.

use crate::drafter::Drafter;
use crate::engine::HeadEngine;
use crate::message::{tags, ActivationPayload, CacheOp, PipeMsg, RunId, RunKind};
use crate::route::PipelineRoute;
use crate::verify::verify_greedy;
use crate::worker::record_kv_events;
use crate::{GenConfig, GenerationRecord};
use pi_cluster::{NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::{Batch, Pos, Token};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prompt,
    Verifying,
    Done,
}

/// Head rank of the speculative-inference baseline.
pub struct SpeculativeHead {
    route: PipelineRoute,
    engine: Box<dyn HeadEngine>,
    drafter: Box<dyn Drafter>,
    config: GenConfig,
    phase: Phase,
    /// Evaluated, accepted tokens (prompt included).
    context: Vec<Token>,
    /// Leading prompt tokens already resident in every stage's KV cache (via
    /// a shared page pool); prefill covers only the remaining suffix.
    prompt_cached: usize,
    /// Sampled but not yet evaluated token.
    pending: Token,
    in_flight: Option<(RunId, Batch)>,
    next_run_id: RunId,
    record: GenerationRecord,
    output: Arc<Mutex<Option<GenerationRecord>>>,
    finished: bool,
}

impl SpeculativeHead {
    /// Creates the head rank.  The final [`GenerationRecord`] is written to
    /// `output` when generation completes.
    pub fn new(
        route: PipelineRoute,
        engine: Box<dyn HeadEngine>,
        drafter: Box<dyn Drafter>,
        config: GenConfig,
        output: Arc<Mutex<Option<GenerationRecord>>>,
    ) -> Self {
        Self {
            route,
            engine,
            drafter,
            config,
            phase: Phase::Prompt,
            context: Vec::new(),
            prompt_cached: 0,
            pending: 0,
            in_flight: None,
            next_run_id: 0,
            record: GenerationRecord::default(),
            output,
            finished: false,
        }
    }

    /// Declares that the leading `n` prompt tokens are already resident in
    /// every stage's KV cache, so prefill starts at position `n`.  Clamped to
    /// leave at least the final prompt token for live evaluation.
    pub fn with_prompt_cached(mut self, n: usize) -> Self {
        self.prompt_cached = n;
        self
    }

    fn send_downstream(&self, ctx: &mut dyn NodeCtx<PipeMsg>, tag: Tag, msg: PipeMsg) {
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tag, msg);
        }
    }

    fn launch(&mut self, batch: Batch, kind: RunKind, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        self.record.runs_launched += 1;
        let (payload, cost) = self.engine.eval_first_stage(&batch);
        ctx.elapse(cost);
        self.in_flight = Some((run_id, batch.clone()));
        if self.route.n_stages() > 1 {
            self.send_downstream(
                ctx,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind,
                    batch,
                    payload,
                    tree: None,
                },
            );
        } else {
            self.handle_result(run_id, payload, ctx);
        }
    }

    /// Drafts a chain and launches the verification batch
    /// `[pending, d₁ … d_k]`.
    fn speculate_and_launch(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let (chain, draft_cost) = self.drafter.draft(
            &self.context,
            &[self.pending],
            self.config.max_draft,
            self.config.confidence_cutoff,
        );
        // The baseline drafts synchronously on the head: the pipeline idles
        // for the whole drafting time.
        ctx.elapse(draft_cost);
        self.record.drafted += chain.len();
        let base = self.context.len() as Pos;
        let mut batch = Batch::new();
        batch.push(self.pending, base, vec![0], true);
        for (i, (tok, _conf)) in chain.iter().enumerate() {
            batch.push(*tok, base + 1 + i as Pos, vec![0], true);
        }
        self.launch(batch, RunKind::Speculative, ctx);
    }

    fn handle_result(
        &mut self,
        run_id: RunId,
        payload: ActivationPayload,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let Some((expected, batch)) = self.in_flight.take() else {
            return;
        };
        debug_assert_eq!(expected, run_id);
        let (greedy, cost) = self.engine.finalize(&batch, &payload, &self.context);
        ctx.elapse(cost);
        match self.phase {
            Phase::Prompt => {
                self.record.prompt_done_at = ctx.now();
                self.pending = *greedy.last().expect("prompt batch is non-empty");
                self.context.extend(batch.tokens());
                self.phase = Phase::Verifying;
                self.speculate_and_launch(ctx);
            }
            Phase::Verifying => {
                let tokens = batch.tokens();
                let draft = &tokens[1..];
                let outcome = verify_greedy(draft, &greedy);
                let n_accepted = outcome.n_accepted();
                self.record.accepted_drafts += n_accepted;

                // The pending token and the accepted drafts are now evaluated
                // context; accepted drafts plus the new pending token are the
                // newly generated tokens.
                let base = self.context.len() as Pos;
                self.context.push(tokens[0]);
                for tok in &outcome.accepted {
                    self.context.push(*tok);
                    self.record.tokens.push(*tok);
                    self.record.accept_times.push(ctx.now());
                }
                self.record.tokens.push(outcome.pending);
                self.record.accept_times.push(ctx.now());

                // Remove the rejected draft entries from every stage's cache,
                // pipelined in order ahead of the next decode.
                if n_accepted < draft.len() {
                    let op = CacheOp::SeqRm {
                        seq: 0,
                        p0: base + 1 + n_accepted as Pos,
                        p1: Pos::MAX,
                    };
                    let c = self.engine.apply_cache_op(&op);
                    ctx.elapse(c);
                    self.send_downstream(ctx, tags::CACHE, PipeMsg::Cache(op));
                }

                self.pending = outcome.pending;
                if self.record.tokens.len() >= self.config.n_generate {
                    self.finish(ctx);
                } else {
                    self.speculate_and_launch(ctx);
                }
            }
            Phase::Done => {}
        }
    }

    fn finish(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.phase = Phase::Done;
        self.record.finished_at = ctx.now();
        record_kv_events(self.engine.take_kv_events(), ctx);
        self.send_downstream(ctx, tags::SHUTDOWN, PipeMsg::Shutdown);
        *self.output.lock().unwrap() = Some(self.record.clone());
        self.finished = true;
    }

    /// The record accumulated so far.
    pub fn record(&self) -> &GenerationRecord {
        &self.record
    }
}

impl NodeBehavior<PipeMsg> for SpeculativeHead {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let prompt = self.config.prompt.clone();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let cached = self.prompt_cached.min(prompt.len() - 1);
        self.context.extend_from_slice(&prompt[..cached]);
        let batch = Batch::prompt(&prompt[cached..], cached as Pos, 0);
        self.launch(batch, RunKind::NonSpeculative, ctx);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let PipeMsg::RunResult { run_id, payload } = msg {
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drafter::OracleDrafter;
    use crate::engine::SimHeadEngine;
    use pi_model::{ModelConfig, OracleDraft, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_tensor::QuantKind;

    struct TestCtx {
        sent: Vec<(Rank, PipeMsg)>,
        now: f64,
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            0
        }
        fn world_size(&self) -> usize {
            2
        }
        fn now(&self) -> f64 {
            self.now
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.now += seconds;
        }
    }

    fn build(
        alignment: f64,
        n_generate: usize,
    ) -> (SpeculativeHead, Arc<Mutex<Option<GenerationRecord>>>) {
        let out = Arc::new(Mutex::new(None));
        let oracle = OracleTarget::new(7, 32000);
        let engine = SimHeadEngine::new(
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K),
            40,
            oracle,
        );
        let drafter = OracleDrafter::new(
            oracle,
            OracleDraft::new(99, 32000, alignment),
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        );
        let h = SpeculativeHead::new(
            PipelineRoute::baseline(2),
            Box::new(engine),
            Box::new(drafter),
            GenConfig::small_test(vec![1, 2, 3, 4], n_generate),
            out.clone(),
        );
        (h, out)
    }

    /// Drives the head against a pass-through pipeline until it finishes,
    /// returning the record.
    fn drive(head: &mut SpeculativeHead, ctx: &mut TestCtx) -> GenerationRecord {
        head.on_start(ctx);
        let mut safety = 0;
        while !head.is_finished() {
            safety += 1;
            assert!(safety < 500, "protocol did not converge");
            let (_, msg) = ctx.sent.pop().expect("head must have sent something");
            match msg {
                PipeMsg::Decode { run_id, .. } => {
                    ctx.now += 0.005;
                    head.on_message(
                        1,
                        tags::RESULT,
                        PipeMsg::RunResult {
                            run_id,
                            payload: ActivationPayload::Empty,
                        },
                        ctx,
                    );
                }
                PipeMsg::Cache(_) | PipeMsg::Shutdown => {}
                other => panic!("unexpected message {other:?}"),
            }
        }
        head.record().clone()
    }

    #[test]
    fn output_matches_oracle_continuation_regardless_of_alignment() {
        let oracle = OracleTarget::new(7, 32000);
        let truth = oracle.generate(&[1, 2, 3, 4], 20);
        for alignment in [0.0, 0.5, 1.0] {
            let (mut head, _) = build(alignment, 12);
            let mut ctx = TestCtx {
                sent: Vec::new(),
                now: 0.0,
            };
            let record = drive(&mut head, &mut ctx);
            assert!(record.tokens.len() >= 12);
            // Speculative inference must produce exactly the target's greedy
            // continuation (minus the uncounted first sampled token).
            assert_eq!(
                record.tokens[..12].to_vec(),
                truth[1..13].to_vec(),
                "alignment {alignment}"
            );
        }
    }

    #[test]
    fn high_alignment_accepts_more_drafts_and_needs_fewer_runs() {
        let (mut good, _) = build(0.95, 16);
        let mut ctx_good = TestCtx {
            sent: Vec::new(),
            now: 0.0,
        };
        let r_good = drive(&mut good, &mut ctx_good);

        let (mut bad, _) = build(0.05, 16);
        let mut ctx_bad = TestCtx {
            sent: Vec::new(),
            now: 0.0,
        };
        let r_bad = drive(&mut bad, &mut ctx_bad);

        assert!(r_good.acceptance_rate() > r_bad.acceptance_rate());
        assert!(r_good.runs_launched < r_bad.runs_launched);
    }

    #[test]
    fn cache_cleanup_is_sent_when_drafts_are_rejected() {
        let (mut head, _) = build(0.0, 4);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            now: 0.0,
        };
        head.on_start(&mut ctx);
        // Answer the prompt run.
        let run_id = match ctx.sent.pop().unwrap().1 {
            PipeMsg::Decode { run_id, .. } => run_id,
            _ => unreachable!(),
        };
        head.on_message(
            1,
            tags::RESULT,
            PipeMsg::RunResult {
                run_id,
                payload: ActivationPayload::Empty,
            },
            &mut ctx,
        );
        // Answer the first verification run (every draft rejected).
        let run_id = match ctx.sent.pop().unwrap().1 {
            PipeMsg::Decode { run_id, .. } => run_id,
            _ => unreachable!(),
        };
        head.on_message(
            1,
            tags::RESULT,
            PipeMsg::RunResult {
                run_id,
                payload: ActivationPayload::Empty,
            },
            &mut ctx,
        );
        assert!(
            ctx.sent
                .iter()
                .any(|(_, m)| matches!(m, PipeMsg::Cache(CacheOp::SeqRm { .. }))),
            "a seq_rm cache op must be pipelined after a rejection"
        );
    }
}
