//! Iteration-level continuous batching: the [`StepSession`] step loop.
//!
//! The thread-per-request serving path (`pi_serve::Server::serve`) gives
//! every request its own pipeline: per-request engines, per-request weight
//! streaming, per-request decode steps.  At serving concurrency that wastes
//! the dominant cost — each decode step re-streams every stage's weights for
//! a handful of batch rows.  A `StepSession` instead drives **one** decode
//! loop for all in-flight requests: each iteration collects every request's
//! micro-batch (its pending token plus draft chain or tree), fuses them into
//! a single *forest* batch with one lane per request, and evaluates the
//! forest through the pipeline once.  Projections and FFNs then run as one
//! `m = Σ cohort widths` GEMM per stage (amortising the weight stream over
//! the whole cohort) while attention stays per-sequence against each
//! request's own KV cache — the fused rows are bitwise identical to solo
//! evaluation (`pi_model::Model::forward_layer_range_multi`).
//!
//! Requests join and leave at step boundaries (true continuous batching): a
//! newly admitted request's first step is its prefill, a finishing request
//! simply stops contributing, and the cohort re-forms every iteration.
//!
//! ## Determinism and byte-identity
//!
//! Per request, the session replicates the exact state machine of the solo
//! heads (`IterativeHead`, `SpeculativeHead`, `TreeSpecHead`): the same
//! draft calls against the same context, the same greedy verification, the
//! same KV-cache operations.  Fusing only changes *where* the rows are
//! evaluated, never their values — in `Real` mode because fused forward rows
//! are row-independent bitwise, in `Sim` mode because the oracle walk is a
//! pure function of each request's own context.  Every request's token
//! stream is therefore byte-identical to its solo run, whatever the cohort
//! interleaving.
//!
//! ## Cost model
//!
//! Under `Sim` mode the session keeps a virtual clock.  A fused step charges
//! each stage [`CostModel::layers_time_grouped`] — the weight stream once
//! for the whole cohort plus per-request KV streams, against the summed
//! compute — while the unfused knob ([`StepSession::with_fused`]) charges
//! the request-granularity sum of [`CostModel::layers_time`], i.e. a full
//! weight stream per request per step.  The two knobs run the identical
//! schedule and emit identical tokens; only the roofline differs, which is
//! precisely the quantity the `fig_cohort_batching` bench gates on.  Under
//! `Real` mode the clock accumulates measured wall time.

use crate::deploy::{build_drafter, ExecutionMode, PreparedDeployment, RunOutput, StepProfile};
use crate::drafter::Drafter;
use crate::engine::{apply_op, build_real_cache, maybe_commit_prompt, PooledState, PrefixPlan};
use crate::message::CacheOp;
use crate::tree::{spine_prefix_len, AdaptiveShape, DEFAULT_PRIOR, FIRST_TREE_SEQ};
use crate::verify::{verify_greedy, verify_tree};
use crate::{GenConfig, GenerationRecord};
use pi_cluster::ClusterStats;
use pi_model::kv_pool::StageKey;
use pi_model::{
    Batch, KvCache, Model, OracleTarget, Pos, Sampler, ScratchArena, SeqId, Token, TokenTree,
};
use pi_perf::{CostModel, ModelCost};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Cost charged for a metadata-only KV-cache operation under simulation
/// (mirrors the sim engines' `apply_cache_op`).
const SIM_CACHE_OP_COST: f64 = 1e-7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prompt,
    Decoding,
    Done,
}

/// One tree round's bookkeeping, kept between batch construction and
/// verification within a single step.
struct TreeRound {
    tree: TokenTree,
    node_seqs: Vec<Vec<SeqId>>,
    n_leaves: usize,
}

/// The micro-batch one request contributes to the current step.
struct PreparedStep {
    /// The request's sub-batch (lane 0; re-laned when fused into the forest).
    sub: Batch,
    /// Batch-index parent links for tree rounds (oracle finalization).
    parents: Vec<Option<usize>>,
    /// Tree bookkeeping when this round speculated a tree.
    tree: Option<TreeRound>,
}

/// Per-stage KV state of one request under `Real` execution.
struct StageCaches {
    cache: KvCache,
    pooled: Option<PooledState>,
}

/// One in-flight (or finished-but-uncollected) request.
struct RequestState {
    id: u64,
    config: GenConfig,
    profile: StepProfile,
    drafter: Option<Box<dyn Drafter>>,
    phase: Phase,
    /// Evaluated, accepted tokens (prompt included).
    context: Vec<Token>,
    /// Leading prompt tokens served from the shared page pool.
    prompt_cached: usize,
    /// Sampled but not yet evaluated token.
    pending: Token,
    record: GenerationRecord,
    /// Adaptive tree controller (tree profile only).
    shape: Option<AdaptiveShape>,
    total_accepted: usize,
    total_rejections: usize,
    /// Per-pipeline-stage KV caches (`Real` mode only), stage order.
    stages: Vec<StageCaches>,
    /// Pool ticket to settle at finish, with the prompt to commit in `Sim`
    /// mode (`Real` stages commit physical pages during prefill).
    pool_ticket: Option<u64>,
    /// The step currently prepared for this iteration.
    step: Option<PreparedStep>,
    /// Steps this request participated in, and the summed cohort widths and
    /// own rows of those steps (surfaced through its `RunOutput` stats).
    steps_participated: u64,
    width_sum: u64,
    own_rows: u64,
}

impl RequestState {
    fn active(&self) -> bool {
        self.phase != Phase::Done
    }

    /// Applies a pipelined cache op to every stage of this request (`Real`)
    /// or returns the op's simulated cost (`Sim`), mirroring the solo path
    /// where the head applies locally and workers apply on receipt.
    fn apply_cache_op(&mut self, op: &CacheOp, real: bool) -> f64 {
        if real {
            for stage in &mut self.stages {
                apply_op(&mut stage.cache, op);
            }
            0.0
        } else {
            SIM_CACHE_OP_COST
        }
    }
}

/// Aggregate cohort accounting of one session (or one served stream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Fused decode iterations evaluated.
    pub cohort_steps: u64,
    /// Σ cohort width over those steps (requests fused per iteration).
    pub cohort_width_sum: u64,
    /// Σ forest-batch rows over those steps.
    pub batched_rows: u64,
}

impl SessionStats {
    /// Mean requests fused per step (0 when no steps ran).
    pub fn mean_cohort_width(&self) -> f64 {
        if self.cohort_steps == 0 {
            0.0
        } else {
            self.cohort_width_sum as f64 / self.cohort_steps as f64
        }
    }
}

/// What one [`StepSession::step_cohort`] call did.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Requests fused into this step's forest batch (0 = nothing to do).
    pub width: usize,
    /// Total forest-batch rows evaluated.
    pub rows: usize,
    /// Requests that completed generation at this step boundary, in
    /// admission order.  Collect them with [`StepSession::take_output`].
    pub finished: Vec<u64>,
}

/// An iteration-level continuous-batching session over a
/// [`PreparedDeployment`] — see the module docs.
///
/// # Invariants
///
/// * Requests join ([`StepSession::admit`]) and leave only at step
///   boundaries; a request is never mutated mid-step by another's progress.
/// * Within one forest batch, lane `i` is the i-th participating request in
///   admission order; every batch entry keeps its request's own sequence ids
///   under its lane's namespace, so no row is ever attributed across
///   requests ([`Batch::level_groups`] only orders entries *within* a lane).
/// * Each request's KV caches (and pool ticket) are exclusively its own; the
///   cohort shares nothing but the weight stream.
pub struct StepSession<'d> {
    prepared: &'d PreparedDeployment,
    profile: StepProfile,
    fused: bool,
    clock: f64,
    slots: Vec<RequestState>,
    next_id: u64,
    /// Long-lived forward-pass temporaries (`Real` mode).
    scratch: Option<ScratchArena>,
    /// Ground-truth oracle (`Sim` mode).
    oracle: Option<OracleTarget>,
    /// Per-stage cost models (`Sim` mode), stage order.
    stage_costs: Vec<CostModel>,
    model_cost: Option<ModelCost>,
    stats: SessionStats,
}

impl<'d> StepSession<'d> {
    /// Opens a session; prefer [`PreparedDeployment::begin_session`].
    pub fn new(prepared: &'d PreparedDeployment) -> Self {
        let (oracle, stage_costs, model_cost, scratch) = match prepared.mode() {
            ExecutionMode::Sim {
                pair,
                cluster,
                oracle_seed,
            } => {
                let costs = prepared
                    .route()
                    .ranks()
                    .iter()
                    .map(|&rank| CostModel::new(cluster.node(rank).clone()))
                    .collect();
                (
                    Some(OracleTarget::new(
                        *oracle_seed,
                        pair.target.cfg.vocab_size as u32,
                    )),
                    costs,
                    Some(ModelCost::new(pair.target.cfg.clone(), pair.target.quant)),
                    None,
                )
            }
            ExecutionMode::Real { target, .. } => (
                None,
                Vec::new(),
                None,
                Some(ScratchArena::for_config(target.config())),
            ),
        };
        Self {
            prepared,
            profile: prepared.strategy().step_profile(),
            fused: true,
            clock: 0.0,
            slots: Vec::new(),
            next_id: 0,
            scratch,
            oracle,
            stage_costs,
            model_cost,
            stats: SessionStats::default(),
        }
    }

    /// Sets whether decode steps fuse the cohort into one forest batch
    /// (default) or evaluate request-granularity micro-batches — the
    /// baseline the `fig_cohort_batching` gate measures against.  Tokens are
    /// identical either way.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Whether decode steps fuse the cohort.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// The session clock in seconds: virtual under `Sim`, accumulated
    /// measured wall time under `Real`.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Fast-forwards the session clock (used by the serving layer to align
    /// admission with request arrival times).  Never moves backwards.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Number of requests currently decoding (admitted, not finished).
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|r| r.active()).count()
    }

    /// Cohort accounting so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Admits one request at the current step boundary.  Its first step is
    /// its prefill; it contributes to every subsequent cohort until its
    /// `n_generate` tokens are out.  Returns the session-local request id.
    pub fn admit(&mut self, config: &GenConfig) -> u64 {
        assert!(!config.prompt.is_empty(), "prompt must not be empty");
        let id = self.next_id;
        self.next_id += 1;

        // Compose with the deployment's KV page pool exactly like the solo
        // pooled path: admit, attach the longest cached prefix, and fall
        // back to isolated flat caches on refusal.
        let mut prompt_cached = 0;
        let mut pool_ticket = None;
        let mut plan = None;
        if let Some(pool) = self.prepared.kv_pool() {
            let required: Vec<StageKey> = match self.prepared.mode() {
                ExecutionMode::Real { .. } => self
                    .prepared
                    .splits()
                    .iter()
                    .map(|r| (r.start, r.end))
                    .collect(),
                ExecutionMode::Sim { .. } => Vec::new(),
            };
            if let Ok(ticket) = pool.begin_request(&config.prompt, config.n_generate, &required) {
                let span = ticket
                    .cached_tokens
                    .min(config.prompt.len().saturating_sub(1));
                prompt_cached = span;
                pool_ticket = Some(ticket.id);
                plan = Some(PrefixPlan {
                    pool: Arc::clone(pool),
                    ticket: ticket.id,
                    prompt: config.prompt.clone(),
                    cached_tokens: span,
                });
            }
        }

        let stages = match self.prepared.mode() {
            ExecutionMode::Real { target, .. } => self
                .prepared
                .splits()
                .iter()
                .map(|layers| {
                    let (cache, pooled) =
                        build_real_cache(target, layers, config.kv_capacity, plan.as_ref());
                    StageCaches { cache, pooled }
                })
                .collect(),
            ExecutionMode::Sim { .. } => Vec::new(),
        };

        let needs_drafter = !matches!(self.profile, StepProfile::NonSpeculative);
        let drafter = needs_drafter
            .then(|| build_drafter(self.prepared.mode(), self.prepared.route().head(), config));
        let shape = match self.profile {
            StepProfile::Tree(tree_config) => Some(AdaptiveShape::new(
                tree_config,
                config.max_draft,
                DEFAULT_PRIOR,
            )),
            _ => None,
        };

        let cached = prompt_cached.min(config.prompt.len() - 1);
        let mut context = Vec::with_capacity(config.prompt.len() + config.n_generate);
        context.extend_from_slice(&config.prompt[..cached]);

        self.slots.push(RequestState {
            id,
            config: config.clone(),
            profile: self.profile,
            drafter,
            phase: Phase::Prompt,
            context,
            prompt_cached: cached,
            pending: 0,
            record: GenerationRecord::default(),
            shape,
            total_accepted: 0,
            total_rejections: 0,
            stages,
            pool_ticket,
            step: None,
            steps_participated: 0,
            width_sum: 0,
            own_rows: 0,
        });
        id
    }

    /// Removes a finished request and returns its output.  `None` while the
    /// request is still decoding or the id is unknown.
    pub fn take_output(&mut self, id: u64) -> Option<RunOutput> {
        let idx = self
            .slots
            .iter()
            .position(|r| r.id == id && r.phase == Phase::Done)?;
        let r = self.slots.remove(idx);
        let mut stats = ClusterStats::new(self.prepared.n_nodes());
        stats.nodes[0].cohort_steps = r.steps_participated;
        stats.nodes[0].cohort_width_sum = r.width_sum;
        stats.nodes[0].batched_rows = r.own_rows;
        Some(RunOutput {
            record: r.record,
            stats,
            completed: true,
            trace: None,
        })
    }

    /// Runs one iteration of the step loop: every active request prepares
    /// its micro-batch (prefill, draft chain, or tree round), the cohort is
    /// fused into one forest batch and evaluated, and each request verifies
    /// its own rows and advances its state machine.  Requests that reach
    /// their token budget finish at this boundary.
    pub fn step_cohort(&mut self) -> StepReport {
        let real = matches!(self.prepared.mode(), ExecutionMode::Real { .. });
        let wall = real.then(Instant::now);
        let mut step_cost = 0.0;

        // Phase 1 — each active request prepares its micro-batch.  Drafting
        // and pre-eval cache ops (tree branch seeding) happen here, against
        // each request's own state only.
        for r in self.slots.iter_mut().filter(|r| r.active()) {
            step_cost += prepare_step(r, real);
        }

        let cohort: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].active() && self.slots[i].step.is_some())
            .collect();
        if cohort.is_empty() {
            return StepReport::default();
        }

        // Phase 2 — fuse and evaluate.  Lane i of the forest is cohort[i].
        let subs: Vec<Batch> = cohort
            .iter()
            .map(|&i| self.slots[i].step.as_ref().expect("prepared").sub.clone())
            .collect();
        let rows: usize = subs.iter().map(Batch::len).sum();
        let greedy_per_request: Vec<Vec<Token>> = if real {
            self.eval_real(&cohort, &subs)
        } else {
            let (greedy, cost) = self.eval_sim(&cohort, &subs);
            step_cost += cost;
            greedy
        };

        // Per-step accounting: one fused step of the cohort's width, or one
        // width-1 step per request under the request-granularity knob.
        let width = cohort.len();
        if self.fused {
            self.stats.cohort_steps += 1;
            self.stats.cohort_width_sum += width as u64;
        } else {
            self.stats.cohort_steps += width as u64;
            self.stats.cohort_width_sum += width as u64;
        }
        self.stats.batched_rows += rows as u64;
        for (&i, sub) in cohort.iter().zip(&subs) {
            let r = &mut self.slots[i];
            r.steps_participated += 1;
            r.width_sum += if self.fused { width as u64 } else { 1 };
            r.own_rows += sub.len() as u64;
        }

        // Phase 3 — per-request verification and state advance (exactly the
        // solo heads' post-result logic).
        if real {
            self.clock += wall.expect("real wall clock").elapsed().as_secs_f64();
        } else {
            self.clock += step_cost;
        }
        let mut post_cost = 0.0;
        let mut finished = Vec::new();
        let now = self.clock;
        for (&i, greedy) in cohort.iter().zip(&greedy_per_request) {
            let r = &mut self.slots[i];
            post_cost += postprocess(r, greedy, now, real);
            if r.phase == Phase::Done {
                if let Some(ticket) = r.pool_ticket.take() {
                    if let Some(pool) = self.prepared.kv_pool() {
                        if !real {
                            pool.commit_chain(ticket, &r.config.prompt, None);
                        }
                        pool.end_request(ticket);
                    }
                }
                finished.push(r.id);
            }
        }
        self.clock += post_cost;

        StepReport {
            width,
            rows,
            finished,
        }
    }

    /// Simulated evaluation of the cohort: oracle tokens per request plus
    /// the roofline cost of the whole step (fused or request-granularity).
    fn eval_sim(&mut self, cohort: &[usize], subs: &[Batch]) -> (Vec<Vec<Token>>, f64) {
        let oracle = self.oracle.as_ref().expect("sim oracle");
        let model_cost = self.model_cost.as_ref().expect("sim model cost");
        let splits = self.prepared.splits();

        // Stage costs: the weight stream amortises across the cohort when
        // fused; request-granularity charges it once per request.
        let groups: Vec<(usize, usize)> = subs
            .iter()
            .map(|sub| (sub.len(), sub.min_pos().unwrap_or(0).max(0) as usize))
            .collect();
        let mut cost = 0.0;
        for (stage, layers) in splits.iter().enumerate() {
            let cm = &self.stage_costs[stage];
            if self.fused {
                cost += cm.layers_time_grouped(model_cost, layers.len(), &groups);
            } else {
                for &(rows, ctx) in &groups {
                    cost += cm.layers_time(model_cost, layers.len(), rows, ctx);
                }
            }
        }

        // Head finalization (output head + sampling) is per-request either
        // way: the logits rows are per request and the oracle walk needs
        // each request's own context.
        let head_cm = &self.stage_costs[0];
        let mut out = Vec::with_capacity(cohort.len());
        for (&i, sub) in cohort.iter().zip(subs) {
            let r = &self.slots[i];
            let step = r.step.as_ref().expect("prepared");
            let greedy = if step.tree.is_some() {
                // Tree round: condition each entry on its root-to-node path.
                let mut paths: Vec<Vec<Token>> = Vec::with_capacity(sub.len());
                let mut g = Vec::with_capacity(sub.len());
                for (j, entry) in sub.iter().enumerate() {
                    let mut path = match step.parents[j] {
                        Some(p) => paths[p].clone(),
                        None => r.context.clone(),
                    };
                    path.push(entry.token);
                    g.push(oracle.next_token(&path));
                    paths.push(path);
                }
                g
            } else {
                // Chain/prefill: batch entries are the consumed continuation.
                let mut ctx = r.context.clone();
                let mut g = Vec::with_capacity(sub.len());
                for entry in sub.iter() {
                    ctx.push(entry.token);
                    g.push(oracle.next_token(&ctx));
                }
                g
            };
            cost += head_cm.io_time(model_cost, sub.len())
                + head_cm.sampling_time(model_cost, sub.len());
            out.push(greedy);
        }
        (out, cost)
    }

    /// Real evaluation of the cohort: one fused forward through every stage
    /// (or request-granularity forwards when unfused), then greedy sampling
    /// of each request's logits rows.
    fn eval_real(&mut self, cohort: &[usize], subs: &[Batch]) -> Vec<Vec<Token>> {
        let ExecutionMode::Real { target, .. } = self.prepared.mode() else {
            unreachable!("eval_real in sim mode");
        };
        let model = Arc::clone(target);
        let splits: Vec<Range<usize>> = self.prepared.splits().to_vec();
        let scratch = self.scratch.as_mut().expect("real scratch");

        if self.fused {
            // One forest batch: lane i = cohort[i].
            let mut forest = Batch::new();
            for (lane, sub) in subs.iter().enumerate() {
                forest.append_lane(sub, lane);
            }
            let mut hidden = model.embed(&forest);
            for (stage, layers) in splits.iter().enumerate() {
                let mut members: Vec<&mut RequestState> = Vec::with_capacity(cohort.len());
                let mut want = cohort.iter().peekable();
                for (idx, slot) in self.slots.iter_mut().enumerate() {
                    if want.peek() == Some(&&idx) {
                        members.push(slot);
                        want.next();
                    }
                }
                let mut caches: Vec<&mut KvCache> = members
                    .iter_mut()
                    .map(|r| &mut r.stages[stage].cache)
                    .collect();
                let cells =
                    Model::alloc_cells_multi(&forest, &mut caches).expect("stage KV exhausted");
                hidden = model
                    .forward_layer_range_multi(
                        &forest,
                        &hidden,
                        layers.clone(),
                        &mut caches,
                        &cells,
                        scratch,
                    )
                    .expect("fused layer-range evaluation failed");
                drop(caches);
                for (r, sub) in members.iter_mut().zip(subs) {
                    let stage_state = &mut r.stages[stage];
                    maybe_commit_prompt(&mut stage_state.cache, &mut stage_state.pooled, sub);
                }
            }
            let logits = model.logits(&hidden);
            let sampler = Sampler::Greedy;
            let mut out = Vec::with_capacity(cohort.len());
            let mut row = 0;
            for sub in subs {
                let g = (0..sub.len())
                    .map(|j| sampler.sample(logits.row(row + j).expect("logits row")))
                    .collect();
                row += sub.len();
                out.push(g);
            }
            out
        } else {
            // Request-granularity baseline: the same math, one request at a
            // time (each forward streams every stage's weights again).
            let mut out = Vec::with_capacity(cohort.len());
            for (&i, sub) in cohort.iter().zip(subs) {
                let r = &mut self.slots[i];
                let mut hidden = model.embed(sub);
                for (stage, layers) in splits.iter().enumerate() {
                    let stage_state = &mut r.stages[stage];
                    let mut caches = [&mut stage_state.cache];
                    let cells =
                        Model::alloc_cells_multi(sub, &mut caches).expect("stage KV exhausted");
                    hidden = model
                        .forward_layer_range_multi(
                            sub,
                            &hidden,
                            layers.clone(),
                            &mut caches,
                            &cells,
                            scratch,
                        )
                        .expect("layer-range evaluation failed");
                    maybe_commit_prompt(&mut stage_state.cache, &mut stage_state.pooled, sub);
                }
                let logits = model.logits(&hidden);
                let sampler = Sampler::Greedy;
                out.push(
                    (0..sub.len())
                        .map(|j| sampler.sample(logits.row(j).expect("logits row")))
                        .collect(),
                );
            }
            out
        }
    }
}

/// Builds one request's micro-batch for this step, mutating its drafting and
/// cache state exactly like the solo heads do before a launch.  Returns the
/// simulated cost charged (drafting + pre-eval cache ops); `Real` drafting
/// cost is part of the step's measured wall time.
fn prepare_step(r: &mut RequestState, real: bool) -> f64 {
    let mut cost = 0.0;
    let step = match r.phase {
        Phase::Done => return 0.0,
        Phase::Prompt => {
            let prompt = r.config.prompt.clone();
            let cached = r.prompt_cached;
            let sub = Batch::prompt(&prompt[cached..], cached as Pos, 0);
            r.record.runs_launched += 1;
            PreparedStep {
                sub,
                parents: Vec::new(),
                tree: None,
            }
        }
        Phase::Decoding => match r.profile {
            StepProfile::NonSpeculative => {
                let sub = Batch::single(r.pending, r.context.len() as Pos, 0);
                r.record.runs_launched += 1;
                PreparedStep {
                    sub,
                    parents: Vec::new(),
                    tree: None,
                }
            }
            StepProfile::Chain => {
                let drafter = r.drafter.as_mut().expect("chain profile has a drafter");
                let (chain, draft_cost) = drafter.draft(
                    &r.context,
                    &[r.pending],
                    r.config.max_draft,
                    r.config.confidence_cutoff,
                );
                if !real {
                    cost += draft_cost;
                }
                r.record.drafted += chain.len();
                let base = r.context.len() as Pos;
                let mut sub = Batch::new();
                sub.push(r.pending, base, vec![0], true);
                for (i, (tok, _conf)) in chain.iter().enumerate() {
                    sub.push(*tok, base + 1 + i as Pos, vec![0], true);
                }
                r.record.runs_launched += 1;
                PreparedStep {
                    sub,
                    parents: Vec::new(),
                    tree: None,
                }
            }
            StepProfile::Tree(_) => {
                let shape = r.shape.as_mut().expect("tree profile has a controller");
                let (width, depth) = shape.shape();
                r.record.tree_shapes.push((width, depth));
                let drafter = r.drafter.as_mut().expect("tree profile has a drafter");
                let (tree, draft_cost) = drafter.draft_tree(
                    &r.context,
                    &[r.pending],
                    width,
                    depth,
                    r.config.confidence_cutoff,
                );
                if !real {
                    cost += draft_cost;
                }
                r.record.tree_rounds += 1;
                r.record.drafted += tree.len();
                r.record.tree_nodes += tree.len();

                let base = r.context.len() as Pos;
                let node_seqs = tree.assign_sequences(FIRST_TREE_SEQ);
                let n_leaves = tree.n_sequences();

                // Seed every branch sequence with the canonical prefix
                // before any tree cell is allocated.
                for leaf in 0..n_leaves as SeqId {
                    let op = CacheOp::SeqCp {
                        src: 0,
                        dst: FIRST_TREE_SEQ + leaf,
                        p0: 0,
                        p1: Pos::MAX,
                    };
                    cost += r.apply_cache_op(&op, real);
                }

                let mut sub = Batch::new();
                let mut pending_seqs = vec![0];
                pending_seqs.extend((0..n_leaves as SeqId).map(|l| FIRST_TREE_SEQ + l));
                sub.push(r.pending, base, pending_seqs, true);
                let mut parents: Vec<Option<usize>> = vec![None];
                for (id, node) in tree.nodes().iter().enumerate() {
                    sub.push(
                        node.token,
                        base + 1 + node.depth as Pos,
                        node_seqs[id].clone(),
                        true,
                    );
                    parents.push(Some(node.parent.map(|p| p + 1).unwrap_or(0)));
                }
                r.record.runs_launched += 1;
                PreparedStep {
                    sub,
                    parents,
                    tree: Some(TreeRound {
                        tree,
                        node_seqs,
                        n_leaves,
                    }),
                }
            }
        },
    };
    r.step = Some(step);
    cost
}

/// Advances one request's state machine given its greedy tokens — the solo
/// heads' post-result logic, verbatim.  Returns the simulated cost of any
/// post-verification cache ops.
fn postprocess(r: &mut RequestState, greedy: &[Token], now: f64, real: bool) -> f64 {
    let step = r.step.take().expect("step was prepared");
    let mut cost = 0.0;
    match r.phase {
        Phase::Done => {}
        Phase::Prompt => {
            r.record.prompt_done_at = now;
            r.pending = *greedy.last().expect("prompt batch is non-empty");
            r.context.extend(step.sub.tokens());
            r.phase = Phase::Decoding;
        }
        Phase::Decoding => match step.tree {
            None => {
                // Chain (and non-speculative, where the draft is empty).
                let tokens = step.sub.tokens();
                let draft = &tokens[1..];
                let outcome = verify_greedy(draft, greedy);
                let n_accepted = outcome.n_accepted();
                r.record.accepted_drafts += n_accepted;

                let base = r.context.len() as Pos;
                r.context.push(tokens[0]);
                for tok in &outcome.accepted {
                    r.context.push(*tok);
                    r.record.tokens.push(*tok);
                    r.record.accept_times.push(now);
                }
                r.record.tokens.push(outcome.pending);
                r.record.accept_times.push(now);

                if n_accepted < draft.len() {
                    let op = CacheOp::SeqRm {
                        seq: 0,
                        p0: base + 1 + n_accepted as Pos,
                        p1: Pos::MAX,
                    };
                    cost += r.apply_cache_op(&op, real);
                }
                r.pending = outcome.pending;
            }
            Some(round) => {
                let outcome = verify_tree(&round.tree, greedy);
                let n_accepted = outcome.n_accepted();
                r.record.accepted_drafts += n_accepted;
                r.record.tree_accepted_path += n_accepted;
                let spine_accepted = spine_prefix_len(&round.tree, &outcome.accepted_path);
                r.total_accepted += spine_accepted;
                if spine_accepted < round.tree.span() {
                    r.total_rejections += 1;
                }
                if let Some(shape) = r.shape.as_mut() {
                    shape.observe(spine_accepted, round.tree.span());
                }

                let base = r.context.len() as Pos;
                r.context.push(r.pending);
                for tok in &outcome.accepted {
                    r.context.push(*tok);
                    r.record.tokens.push(*tok);
                    r.record.accept_times.push(now);
                }
                r.record.tokens.push(outcome.pending);
                r.record.accept_times.push(now);

                if round.n_leaves > 0 {
                    let op = if n_accepted > 0 {
                        let deepest = *outcome.accepted_path.last().unwrap();
                        CacheOp::BranchCommit {
                            dst: 0,
                            path: round.node_seqs[deepest][0],
                            first: FIRST_TREE_SEQ,
                            n_seqs: round.n_leaves as u32,
                            p0: base + 1,
                            p1: base + 1 + n_accepted as Pos,
                        }
                    } else {
                        CacheOp::BranchRollback {
                            first: FIRST_TREE_SEQ,
                            n_seqs: round.n_leaves as u32,
                        }
                    };
                    cost += r.apply_cache_op(&op, real);
                }
                r.pending = outcome.pending;
            }
        },
    }
    if r.phase == Phase::Decoding && r.record.tokens.len() >= r.config.n_generate {
        r.record.finished_at = now;
        r.phase = Phase::Done;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{Deployment, IterativeStrategy, SpeculativeStrategy};
    use crate::tree::TreeSpeculationStrategy;
    use pi_model::ModelConfig;
    use pi_perf::{ClusterSpec, ModelPair};

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    fn real_mode(seed: u64) -> ExecutionMode {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(cfg.clone(), seed));
        let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
        ExecutionMode::Real { target, draft }
    }

    fn gen(prompt_fill: Token, prompt_len: usize, n_generate: usize) -> GenConfig {
        GenConfig {
            prompt: vec![prompt_fill; prompt_len],
            n_generate,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        }
    }

    fn run_session(
        prepared: &PreparedDeployment,
        configs: &[GenConfig],
        fused: bool,
    ) -> (Vec<Vec<Token>>, f64, SessionStats) {
        let mut session = prepared.begin_session().with_fused(fused);
        let ids: Vec<u64> = configs.iter().map(|c| session.admit(c)).collect();
        let mut safety = 0;
        while session.active() > 0 {
            safety += 1;
            assert!(safety < 10_000, "session did not converge");
            session.step_cohort();
        }
        let outs: Vec<Vec<Token>> = ids
            .iter()
            .map(|&id| session.take_output(id).expect("finished").record.tokens)
            .collect();
        (outs, session.now(), session.stats())
    }

    #[test]
    fn chain_session_matches_solo_runs_in_sim() {
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4);
        let configs = [gen(5, 12, 16), gen(9, 8, 12), gen(3, 10, 20)];
        let (outs, _, stats) = run_session(&prepared, &configs, true);
        for (config, tokens) in configs.iter().zip(&outs) {
            let solo = prepared.run(config);
            assert_eq!(tokens, &solo.record.tokens, "fused stream must be solo");
        }
        assert!(stats.mean_cohort_width() > 1.5, "{stats:?}");
    }

    #[test]
    fn tree_session_matches_solo_runs_in_sim() {
        let prepared = Deployment::new(TreeSpeculationStrategy::default()).prepare(&sim_mode(4), 4);
        let configs = [gen(5, 12, 16), gen(7, 9, 12)];
        let (outs, _, _) = run_session(&prepared, &configs, true);
        for (config, tokens) in configs.iter().zip(&outs) {
            let solo = prepared.run(config);
            assert_eq!(tokens, &solo.record.tokens);
        }
    }

    #[test]
    fn iterative_session_matches_solo_runs_in_sim() {
        let prepared = Deployment::new(IterativeStrategy).prepare(&sim_mode(4), 4);
        let configs = [gen(5, 12, 8), gen(2, 6, 6)];
        let (outs, _, _) = run_session(&prepared, &configs, true);
        for (config, tokens) in configs.iter().zip(&outs) {
            let solo = prepared.run(config);
            assert_eq!(tokens, &solo.record.tokens);
        }
    }

    #[test]
    fn real_chain_session_matches_solo_runs() {
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&real_mode(11), 2);
        let configs = [gen(5, 6, 8), gen(9, 4, 6)];
        let (outs, _, _) = run_session(&prepared, &configs, true);
        for (config, tokens) in configs.iter().zip(&outs) {
            let solo = prepared.run(config);
            assert_eq!(tokens, &solo.record.tokens, "real fused rows must be solo");
        }
    }

    #[test]
    fn fused_and_unfused_agree_on_tokens_but_not_cost() {
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4);
        let configs = [gen(5, 12, 16), gen(9, 8, 16), gen(3, 10, 16), gen(6, 7, 16)];
        let (fused, fused_t, fused_stats) = run_session(&prepared, &configs, true);
        let (unfused, unfused_t, unfused_stats) = run_session(&prepared, &configs, false);
        assert_eq!(fused, unfused, "fusion must never change any stream");
        assert!(
            fused_t < unfused_t,
            "fused {fused_t} s must beat request-granularity {unfused_t} s"
        );
        assert!(fused_stats.mean_cohort_width() > 2.0, "{fused_stats:?}");
        assert!((unfused_stats.mean_cohort_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requests_join_and_leave_at_step_boundaries() {
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4);
        let mut session = prepared.begin_session();
        let a = session.admit(&gen(5, 12, 20));
        // Let the first request run alone for a few steps, then join.
        for _ in 0..3 {
            session.step_cohort();
        }
        let b = session.admit(&gen(9, 8, 10));
        let mut finished = Vec::new();
        let mut safety = 0;
        while session.active() > 0 {
            safety += 1;
            assert!(safety < 1000);
            finished.extend(session.step_cohort().finished);
        }
        assert!(finished.contains(&a) && finished.contains(&b));
        for (id, config) in [(a, gen(5, 12, 20)), (b, gen(9, 8, 10))] {
            let tokens = session.take_output(id).unwrap().record.tokens;
            let solo = prepared.run(&config);
            assert_eq!(
                tokens, solo.record.tokens,
                "mid-stream join must not perturb"
            );
        }
    }

    #[test]
    fn session_outputs_carry_cohort_participation() {
        let prepared = Deployment::new(SpeculativeStrategy).prepare(&sim_mode(4), 4);
        let mut session = prepared.begin_session();
        let a = session.admit(&gen(5, 12, 8));
        let b = session.admit(&gen(9, 8, 8));
        while session.active() > 0 {
            session.step_cohort();
        }
        for id in [a, b] {
            let out = session.take_output(id).unwrap();
            assert!(out.stats.nodes[0].cohort_steps > 0);
            assert!(out.stats.nodes[0].cohort_width_sum >= out.stats.nodes[0].cohort_steps);
            assert!(out.stats.nodes[0].batched_rows > 0);
        }
    }
}
