//! Pipeline-parallel iterative (non-speculative) inference — baseline 1.
//!
//! The head rank processes the prompt through the pipeline, then repeatedly
//! evaluates one token at a time: each generated token must travel through
//! every pipeline stage before the next can be sampled, so per-token latency
//! is the sum of the stage times plus interconnect hops — which is why the
//! paper observes essentially constant generation speed as nodes are added.

use crate::engine::HeadEngine;
use crate::message::{tags, ActivationPayload, PipeMsg, RunId, RunKind};
use crate::route::PipelineRoute;
use crate::worker::record_kv_events;
use crate::{GenConfig, GenerationRecord};
use pi_cluster::{NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::{Batch, Pos, Token};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prompt,
    Decoding,
    Done,
}

/// Head rank of the iterative baseline.
pub struct IterativeHead {
    route: PipelineRoute,
    engine: Box<dyn HeadEngine>,
    config: GenConfig,
    phase: Phase,
    /// Tokens whose KV entries are (or are being) materialised, including the
    /// prompt.
    context: Vec<Token>,
    /// Leading prompt tokens already resident in every stage's KV cache (via
    /// a shared page pool); prefill covers only the remaining suffix.
    prompt_cached: usize,
    /// Sampled but not yet evaluated token.
    pending: Token,
    in_flight: Option<(RunId, Batch)>,
    next_run_id: RunId,
    record: GenerationRecord,
    output: Arc<Mutex<Option<GenerationRecord>>>,
    finished: bool,
}

impl IterativeHead {
    /// Creates the head rank.  The final [`GenerationRecord`] is written to
    /// `output` when generation completes.
    pub fn new(
        route: PipelineRoute,
        engine: Box<dyn HeadEngine>,
        config: GenConfig,
        output: Arc<Mutex<Option<GenerationRecord>>>,
    ) -> Self {
        Self {
            route,
            engine,
            config,
            phase: Phase::Prompt,
            context: Vec::new(),
            prompt_cached: 0,
            pending: 0,
            in_flight: None,
            next_run_id: 0,
            record: GenerationRecord::default(),
            output,
            finished: false,
        }
    }

    /// Declares that the leading `n` prompt tokens are already resident in
    /// every stage's KV cache, so prefill starts at position `n`.  Clamped to
    /// leave at least the final prompt token for live evaluation.
    pub fn with_prompt_cached(mut self, n: usize) -> Self {
        self.prompt_cached = n;
        self
    }

    fn launch(&mut self, batch: Batch, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        self.record.runs_launched += 1;
        let (payload, cost) = self.engine.eval_first_stage(&batch);
        ctx.elapse(cost);
        self.in_flight = Some((run_id, batch.clone()));
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(
                next,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind: RunKind::NonSpeculative,
                    batch,
                    payload,
                    tree: None,
                },
            );
        } else {
            // Single-stage pipeline: the head is also the last stage.
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn handle_result(
        &mut self,
        run_id: RunId,
        payload: ActivationPayload,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let Some((expected, batch)) = self.in_flight.take() else {
            return;
        };
        debug_assert_eq!(expected, run_id);
        let (greedy, cost) = self.engine.finalize(&batch, &payload, &self.context);
        ctx.elapse(cost);
        let next_token = *greedy.last().expect("batch always has at least one token");
        // All batch tokens are now evaluated and part of the context.
        self.context.extend(batch.tokens());
        match self.phase {
            Phase::Prompt => {
                self.record.prompt_done_at = ctx.now();
                // The token sampled at the end of prompt processing is not
                // counted as a generated token (paper TTFT definition).
                self.pending = next_token;
                self.phase = Phase::Decoding;
                let batch = Batch::single(self.pending, self.context.len() as Pos, 0);
                self.launch(batch, ctx);
            }
            Phase::Decoding => {
                // The newly sampled token is a generated token.
                self.record.tokens.push(next_token);
                self.record.accept_times.push(ctx.now());
                if self.record.tokens.len() >= self.config.n_generate {
                    self.finish(ctx);
                } else {
                    self.pending = next_token;
                    let batch = Batch::single(self.pending, self.context.len() as Pos, 0);
                    self.launch(batch, ctx);
                }
            }
            Phase::Done => {}
        }
    }

    fn finish(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.phase = Phase::Done;
        self.record.finished_at = ctx.now();
        record_kv_events(self.engine.take_kv_events(), ctx);
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tags::SHUTDOWN, PipeMsg::Shutdown);
        }
        *self.output.lock().unwrap() = Some(self.record.clone());
        self.finished = true;
    }

    /// The record accumulated so far (mostly useful in tests).
    pub fn record(&self) -> &GenerationRecord {
        &self.record
    }
}

impl NodeBehavior<PipeMsg> for IterativeHead {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let prompt = self.config.prompt.clone();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let cached = self.prompt_cached.min(prompt.len() - 1);
        self.context.extend_from_slice(&prompt[..cached]);
        let batch = Batch::prompt(&prompt[cached..], cached as Pos, 0);
        self.launch(batch, ctx);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let PipeMsg::RunResult { run_id, payload } = msg {
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimHeadEngine;
    use pi_model::{ModelConfig, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_tensor::QuantKind;

    struct TestCtx {
        sent: Vec<(Rank, PipeMsg)>,
        now: f64,
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            0
        }
        fn world_size(&self) -> usize {
            2
        }
        fn now(&self) -> f64 {
            self.now
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.now += seconds;
        }
    }

    fn head(n_generate: usize) -> (IterativeHead, Arc<Mutex<Option<GenerationRecord>>>) {
        let out = Arc::new(Mutex::new(None));
        let oracle = OracleTarget::new(7, 32000);
        let engine = SimHeadEngine::new(
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K),
            40,
            oracle,
        );
        let h = IterativeHead::new(
            PipelineRoute::baseline(2),
            Box::new(engine),
            GenConfig::small_test(vec![1, 2, 3, 4], n_generate),
            out.clone(),
        );
        (h, out)
    }

    #[test]
    fn prompt_is_launched_on_start() {
        let (mut h, _) = head(4);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            now: 0.0,
        };
        h.on_start(&mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        match &ctx.sent[0].1 {
            PipeMsg::Decode { batch, kind, .. } => {
                assert_eq!(batch.len(), 4);
                assert_eq!(*kind, RunKind::NonSpeculative);
            }
            other => panic!("unexpected message {other:?}"),
        }
        assert!(ctx.now > 0.0, "head stage evaluation must be charged");
    }

    #[test]
    fn full_generation_against_oracle_matches_ground_truth() {
        let (mut h, out) = head(6);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            now: 0.0,
        };
        h.on_start(&mut ctx);
        // Drive the protocol manually: every Decode the head sends is
        // answered with a RunResult (the worker is a pass-through here).
        let mut safety = 0;
        while !h.is_finished() {
            safety += 1;
            assert!(safety < 100, "protocol did not converge");
            let decode = ctx.sent.pop().expect("head must have sent a decode");
            let run_id = match decode.1 {
                PipeMsg::Decode { run_id, .. } => run_id,
                PipeMsg::Shutdown => break,
                other => panic!("unexpected {other:?}"),
            };
            ctx.now += 0.01;
            h.on_message(
                1,
                tags::RESULT,
                PipeMsg::RunResult {
                    run_id,
                    payload: ActivationPayload::Empty,
                },
                &mut ctx,
            );
        }
        let record = out.lock().unwrap().clone().expect("record must be written");
        assert_eq!(record.tokens.len(), 6);
        // The generated tokens are exactly the oracle's greedy continuation,
        // skipping the first (uncounted) token sampled from the prompt.
        let oracle = OracleTarget::new(7, 32000);
        let truth = oracle.generate(&[1, 2, 3, 4], 7);
        assert_eq!(record.tokens, truth[1..7].to_vec());
        assert!(record.prompt_done_at > 0.0);
        assert!(record.ttft() > 0.0);
        assert!(record.finished_at >= *record.accept_times.last().unwrap());
        // One prompt run plus one single-token run per generated token.
        assert_eq!(record.runs_launched, 1 + 6);
    }
}
