//! Strategy-agnostic cluster assembly: the [`Deployment`] layer.
//!
//! Every inference strategy in the workspace — iterative, SpecInfer-style
//! speculative, PipeInfer, and whatever future PRs add — executes the same
//! way: pick a pipeline route over the ranks, split the target model's
//! layers across the route's stages, build a head behavior plus one
//! [`PipelineWorker`] per non-head stage,
//! then run all behaviors under the driver matching the
//! [`ExecutionMode`].  Historically that plumbing was copy-pasted into
//! `run_iterative`, `run_speculative` and `pipeinfer_core::run_pipeinfer`;
//! it now lives here exactly once.
//!
//! A strategy only describes what makes it *different*:
//!
//! * its **rank-layout policy** ([`Strategy::route`]) — e.g. PipeInfer keeps
//!   rank 0 as a draft-hosting head with no target layers;
//! * its **layer-split policy** ([`Strategy::split_layers`]);
//! * its **head behavior factory** ([`Strategy::build_head`]), fed with the
//!   pre-built engine/drafter for the execution mode.
//!
//! The deployment owns everything else, split into two phases:
//! [`Deployment::prepare`] validates the rank layout once and captures the
//! execution mode in a reusable [`PreparedDeployment`];
//! [`PreparedDeployment::run`] then builds per-request engines, drafters and
//! workers (fresh KV caches — an isolated session per call) and executes them
//! under the driver matching the mode, collecting a [`RunOutput`].
//! [`Deployment::run`] is the one-shot convenience wrapper over both.

use crate::drafter::{Drafter, OracleDrafter, RealDrafter};
use crate::engine::{
    HeadEngine, PrefixPlan, RealHeadEngine, RealStageEngine, SimHeadEngine, SimStageEngine,
};
use crate::iterative::IterativeHead;
use crate::message::PipeMsg;
use crate::route::PipelineRoute;
use crate::speculative::SpeculativeHead;
use crate::worker::PipelineWorker;
use crate::{GenConfig, GenerationRecord};
use pi_cluster::sim::SimDriver;
use pi_cluster::threaded::ThreadedDriver;
use pi_cluster::{ClusterStats, FaultPlan, NodeBehavior, Topology, Trace, TraceConfig};
use pi_model::kv_pool::{AdmissionRefusal, KvPagePool, KvPoolConfig, StageKey};
use pi_model::{Model, OracleDraft, OracleTarget};
use pi_perf::{ClusterSpec, CostModel, ModelCost, ModelPair};
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How model compute is realised during a run.
///
/// The `Sim` variant inlines its (large) presets on purpose: one value is
/// constructed per run and moved, never stored in bulk, so boxing would only
/// complicate every construction site.
#[derive(Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ExecutionMode {
    /// Real tiny models, threaded driver, wall-clock time.
    Real {
        /// The target model.
        target: Arc<Model>,
        /// The draft model (ignored by the iterative baseline).
        draft: Arc<Model>,
    },
    /// Cost-model simulation of a paper-scale deployment.
    Sim {
        /// Target/draft pair with its acceptance rate.
        pair: ModelPair,
        /// Hardware the deployment runs on (node count = pipeline size).
        cluster: ClusterSpec,
        /// Seed for the token oracles (fixed seed ⇒ bit-reproducible runs).
        oracle_seed: u64,
    },
}

impl ExecutionMode {
    /// Number of ranks this mode naturally runs with (`Sim` deployments are
    /// sized by their cluster spec; `Real` runs accept any count).
    pub fn preferred_nodes(&self) -> Option<usize> {
        match self {
            ExecutionMode::Real { .. } => None,
            ExecutionMode::Sim { cluster, .. } => Some(cluster.n_nodes()),
        }
    }

    /// Number of decoder layers in the target model of this mode.
    pub fn target_layers(&self) -> usize {
        match self {
            ExecutionMode::Real { target, .. } => target.config().n_layers,
            ExecutionMode::Sim { pair, .. } => pair.target.cfg.n_layers,
        }
    }
}

/// Result of executing one generation run on a cluster.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The head rank's record of the generation.
    pub record: GenerationRecord,
    /// Driver statistics (per-rank utilisation, messages, bytes).
    pub stats: ClusterStats,
    /// Whether every rank finished cleanly.
    pub completed: bool,
    /// Structured event trace, present iff the run was started through a
    /// traced entry point ([`PreparedDeployment::run_traced`] or
    /// [`execute_traced`]) with the `trace` feature on.
    pub trace: Option<Trace>,
}

/// Shared handle type used to pull the record out of the head behavior.
pub type RecordHandle = Arc<Mutex<Option<GenerationRecord>>>;

fn take_record(handle: &RecordHandle) -> GenerationRecord {
    handle
        .lock()
        .unwrap()
        .clone()
        .expect("head rank did not produce a generation record (run incomplete?)")
}

/// Everything a [`Strategy`] receives to construct its head behavior.
///
/// The deployment builds the pieces that depend only on the execution mode
/// (engine, drafter) so strategy implementations stay mode-oblivious.
pub struct HeadParts {
    /// The target-pipeline route; the head is stage 0.
    pub route: PipelineRoute,
    /// Embedding / output-head / stage-0 evaluation engine.
    pub engine: Box<dyn HeadEngine>,
    /// Draft-model front-end, present iff [`Strategy::needs_drafter`].
    pub drafter: Option<Box<dyn Drafter>>,
    /// Generation parameters for this run.
    pub gen_config: GenConfig,
    /// Handle the final [`GenerationRecord`] must be written to.
    pub record: RecordHandle,
    /// Leading prompt tokens already resident in every stage's KV cache
    /// (served from a shared page pool); the head must seed its context with
    /// `prompt[..prompt_cached]` and prefill only the remaining suffix.
    /// Always strictly less than the prompt length; 0 without a pool.
    pub prompt_cached: usize,
}

impl HeadParts {
    /// Takes the drafter out of the parts, panicking with a clear message if
    /// the strategy forgot to declare [`Strategy::needs_drafter`].
    pub fn take_drafter(&mut self) -> Box<dyn Drafter> {
        self.drafter
            .take()
            .expect("strategy requested a drafter but needs_drafter() returned false")
    }
}

/// The per-iteration decode shape a strategy contributes to the
/// [`StepSession`](crate::session::StepSession) step loop: what one request
/// submits per step when many requests are fused into a single forest batch.
///
/// Strategies whose solo execution is asynchronous (PipeInfer's continuous
/// speculation) collapse to their synchronous per-step equivalent here —
/// greedy speculative verification is lossless, so the emitted token stream
/// is identical either way; only the overlap structure (and therefore solo
/// latency) differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepProfile {
    /// One pending token per step (the iterative baseline).
    NonSpeculative,
    /// `[pending] ++ draft chain` per step, verified greedily.
    Chain,
    /// `[pending] ++ token tree` per step with adaptive width/depth.
    Tree(crate::tree::TreeConfig),
}

/// What makes an inference strategy different from the others: rank layout,
/// layer split and the head rank's behavior.
///
/// Implementations: [`IterativeStrategy`], [`SpeculativeStrategy`] (both
/// here) and `pipeinfer_core::PipeInferStrategy`.
pub trait Strategy: Send + Sync {
    /// Human-readable strategy name (used in diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Smallest cluster this strategy can run on.
    fn min_nodes(&self) -> usize {
        1
    }

    /// Whether the head rank hosts a draft model.  When `true` the
    /// deployment builds a mode-appropriate drafter into [`HeadParts`].
    fn needs_drafter(&self) -> bool {
        false
    }

    /// Rank-layout policy: which ranks form the target pipeline, in stage
    /// order.  The head must be rank 0 (both drivers deliver the record from
    /// rank 0).  Defaults to all ranks in order.
    ///
    /// Every rank not on the route must receive a behavior from
    /// [`Strategy::build_auxiliary`] — [`Deployment::run`] needs one
    /// behavior per rank and fails with a descriptive panic otherwise.
    fn route(&self, n_nodes: usize) -> PipelineRoute {
        PipelineRoute::baseline(n_nodes)
    }

    /// Layer-split policy: the half-open layer range evaluated by each stage
    /// of `route`, in stage order.  Must return exactly
    /// `route.n_stages()` ranges that jointly cover `0..n_layers`.
    fn split_layers(&self, n_layers: usize, route: &PipelineRoute) -> Vec<Range<usize>> {
        Model::split_layers(n_layers, route.n_stages())
    }

    /// The decode shape one request contributes per iteration when served
    /// through a [`StepSession`](crate::session::StepSession) instead of a
    /// dedicated per-request pipeline.  Defaults to a draft chain for
    /// drafting strategies and single-token decoding otherwise; tree
    /// strategies override with their tree configuration.
    fn step_profile(&self) -> StepProfile {
        if self.needs_drafter() {
            StepProfile::Chain
        } else {
            StepProfile::NonSpeculative
        }
    }

    /// Head behavior factory.
    fn build_head(&self, parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>>;

    /// Behaviors for ranks that are *not* pipeline stages — e.g. a dedicated
    /// draft rank in the paper's Fig. 3 layout (`PipelineRoute::pipeinfer`
    /// skips rank 1).  Returns `(rank, behavior)` pairs; the default is none,
    /// which is correct for every strategy whose route covers all ranks.
    /// [`build_drafter`] is available for hosting a draft model here.
    fn build_auxiliary(
        &self,
        _mode: &ExecutionMode,
        _n_nodes: usize,
        _route: &PipelineRoute,
        _gen_config: &GenConfig,
    ) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
        Vec::new()
    }
}

/// Pipeline-parallel iterative inference (baseline 1): every rank is a
/// pipeline stage, one token evaluated at a time, no draft model.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterativeStrategy;

impl Strategy for IterativeStrategy {
    fn name(&self) -> &'static str {
        "Iterative"
    }

    fn build_head(&self, parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
        Box::new(
            IterativeHead::new(parts.route, parts.engine, parts.gen_config, parts.record)
                .with_prompt_cached(parts.prompt_cached),
        )
    }
}

/// Pipeline-parallel speculative inference (baseline 2, SpecInfer-style):
/// every rank is a pipeline stage and the head also hosts the draft model
/// for a synchronous speculate-then-verify loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeculativeStrategy;

impl Strategy for SpeculativeStrategy {
    fn name(&self) -> &'static str {
        "Speculative"
    }

    fn needs_drafter(&self) -> bool {
        true
    }

    fn build_head(&self, mut parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
        let drafter = parts.take_drafter();
        Box::new(
            SpeculativeHead::new(
                parts.route,
                parts.engine,
                drafter,
                parts.gen_config,
                parts.record,
            )
            .with_prompt_cached(parts.prompt_cached),
        )
    }
}

/// A strategy bound to the shared assembly/execution plumbing.
///
/// `Deployment::new(strategy).run(&mode, n_nodes, &gen_config)` is the single
/// entry point every runner, bench, example and test goes through.  Long-
/// lived callers (the `pi-serve` server) instead call
/// [`Deployment::prepare`] once and reuse the resulting
/// [`PreparedDeployment`] across a whole request stream.
pub struct Deployment {
    strategy: Arc<dyn Strategy>,
}

impl Deployment {
    /// Wraps a strategy.
    pub fn new<S: Strategy + 'static>(strategy: S) -> Self {
        Self {
            strategy: Arc::new(strategy),
        }
    }

    /// Wraps an already-boxed strategy.
    pub fn from_boxed(strategy: Box<dyn Strategy>) -> Self {
        Self {
            strategy: Arc::from(strategy),
        }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &dyn Strategy {
        self.strategy.as_ref()
    }

    /// The validated rank layout this deployment would use over `n_nodes`
    /// ranks, exposed for tests and capacity planning.  Panics with the same
    /// descriptive diagnostics as [`Deployment::run`] when the strategy's
    /// policies are inconsistent (too few ranks, head not rank 0, layer
    /// splits that do not tile the model).
    pub fn layout(
        &self,
        mode: &ExecutionMode,
        n_nodes: usize,
    ) -> (PipelineRoute, Vec<Range<usize>>) {
        let strategy = self.strategy.as_ref();
        assert!(
            n_nodes >= strategy.min_nodes(),
            "{} needs at least {} rank(s), got {n_nodes}",
            strategy.name(),
            strategy.min_nodes()
        );
        let route = strategy.route(n_nodes);
        assert_eq!(
            route.head(),
            0,
            "{}: the head must be rank 0",
            strategy.name()
        );
        let n_layers = mode.target_layers();
        let splits = strategy.split_layers(n_layers, &route);
        assert_eq!(
            splits.len(),
            route.n_stages(),
            "{}: one layer range per pipeline stage",
            strategy.name()
        );
        let mut next_layer = 0;
        for (stage, split) in splits.iter().enumerate() {
            assert!(
                split.start == next_layer && split.end >= split.start,
                "{}: stage {stage} covers {split:?} but layer {next_layer} is next — \
                 split_layers must tile 0..{n_layers} contiguously",
                strategy.name()
            );
            next_layer = split.end;
        }
        assert_eq!(
            next_layer,
            n_layers,
            "{}: split_layers covered only 0..{next_layer} of 0..{n_layers}",
            strategy.name()
        );
        (route, splits)
    }

    /// Validates the strategy's policies against `mode`/`n_nodes` once and
    /// returns a reusable [`PreparedDeployment`].
    ///
    /// Preparation is the per-deployment work: route construction, layer
    /// splitting and their consistency checks, plus capturing the execution
    /// mode (whose model weights are `Arc`-shared, so the expensive state is
    /// genuinely built once).  What remains per request — engines, drafter
    /// and worker behaviors — *must* be rebuilt for every generation because
    /// they own the KV caches and run-tracking state, which is exactly the
    /// per-request session isolation a serving layer needs.
    /// When `PIPEINFER_KV_POOL_PAGES` is set, the prepared deployment owns a
    /// [`KvPagePool`] shared across every [`PreparedDeployment::run`] call —
    /// concurrent requests with a common prompt prefix attach the same
    /// physical pages and skip prefill for the cached span.  Without the env
    /// knob the pool is absent and behaviour is exactly the classic
    /// fresh-cache-per-run path ([`PreparedDeployment::with_kv_pool`]
    /// attaches one explicitly).
    pub fn prepare(&self, mode: &ExecutionMode, n_nodes: usize) -> PreparedDeployment {
        let (route, splits) = self.layout(mode, n_nodes);
        let pool = KvPoolConfig::from_env().map(KvPagePool::new);
        PreparedDeployment {
            strategy: Arc::clone(&self.strategy),
            mode: mode.clone(),
            n_nodes,
            route,
            splits,
            pool,
        }
    }

    /// Assembles and executes one generation run across `n_nodes` ranks.
    ///
    /// Thin wrapper over [`Deployment::prepare`] +
    /// [`PreparedDeployment::run`] for one-shot callers.
    pub fn run(&self, mode: &ExecutionMode, n_nodes: usize, gen_config: &GenConfig) -> RunOutput {
        self.prepare(mode, n_nodes).run(gen_config)
    }
}

/// A validated, reusable deployment: one strategy bound to one execution
/// mode and rank count, with the rank layout computed and checked once.
///
/// `PreparedDeployment` is `Send + Sync`, so a server can execute many
/// requests over the same prepared state concurrently — each
/// [`PreparedDeployment::run`] call builds fresh engines and workers (fresh
/// KV caches and run trackers, i.e. an isolated session) around the shared
/// strategy, model weights and layout.
pub struct PreparedDeployment {
    strategy: Arc<dyn Strategy>,
    mode: ExecutionMode,
    n_nodes: usize,
    route: PipelineRoute,
    splits: Vec<Range<usize>>,
    /// Deployment-owned KV page pool, shared across `run` calls.
    pool: Option<Arc<KvPagePool>>,
}

impl PreparedDeployment {
    /// The wrapped strategy.
    pub fn strategy(&self) -> &dyn Strategy {
        self.strategy.as_ref()
    }

    /// The execution mode this deployment was prepared for.
    pub fn mode(&self) -> &ExecutionMode {
        &self.mode
    }

    /// Number of ranks in the prepared cluster.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The validated pipeline route.
    pub fn route(&self) -> &PipelineRoute {
        &self.route
    }

    /// The validated per-stage layer splits.
    pub fn splits(&self) -> &[Range<usize>] {
        &self.splits
    }

    /// Attaches a KV page pool shared across every subsequent run, replacing
    /// whatever [`Deployment::prepare`] resolved from the environment.
    pub fn with_kv_pool(mut self, pool: Arc<KvPagePool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The deployment-owned KV page pool, if one is attached.
    pub fn kv_pool(&self) -> Option<&Arc<KvPagePool>> {
        self.pool.as_ref()
    }

    /// Opens an iteration-level continuous-batching session over this
    /// deployment: requests join and leave at step boundaries, and every
    /// step fuses all in-flight requests' micro-batches into one forest
    /// batch (see [`StepSession`](crate::session::StepSession)).
    pub fn begin_session(&self) -> crate::session::StepSession<'_> {
        crate::session::StepSession::new(self)
    }

    /// Executes one generation run over the prepared layout.
    ///
    /// With a KV pool attached, admission is attempted first; a pool too full
    /// to admit the request falls back to the classic pool-less path (fresh
    /// flat caches) instead of failing — use [`PreparedDeployment::try_run`]
    /// to surface the refusal instead.
    pub fn run(&self, gen_config: &GenConfig) -> RunOutput {
        self.run_inner(gen_config, None, None)
    }

    /// Executes one generation run, surfacing pool-admission refusals to the
    /// caller instead of silently falling back.  Without a pool this is
    /// exactly [`PreparedDeployment::run`] and never errs.
    pub fn try_run(&self, gen_config: &GenConfig) -> Result<RunOutput, AdmissionRefusal> {
        match &self.pool {
            None => Ok(self.run_plain(gen_config, None, None, 0, None)),
            Some(pool) => self.run_pooled(pool, gen_config, None, None),
        }
    }

    /// Executes one generation run pretending the leading `cached_tokens` of
    /// the prompt are already resident in every stage's KV cache — the
    /// serving layer's entry point after its own admission pre-pass has
    /// consulted the pool.  Only `Sim` mode honours the span (virtual-time
    /// prefill skip); `Real` runs ignore it because no physical pages back a
    /// span that was computed outside this call.
    pub fn run_prefix_cached(&self, gen_config: &GenConfig, cached_tokens: usize) -> RunOutput {
        self.run_prefix_cached_inner(gen_config, cached_tokens, None)
    }

    /// [`PreparedDeployment::run_prefix_cached`] with a structured event
    /// recorder attached.
    pub fn run_prefix_cached_traced(
        &self,
        gen_config: &GenConfig,
        cached_tokens: usize,
        trace: TraceConfig,
    ) -> RunOutput {
        self.run_prefix_cached_inner(gen_config, cached_tokens, Some(trace))
    }

    fn run_prefix_cached_inner(
        &self,
        gen_config: &GenConfig,
        cached_tokens: usize,
        trace: Option<TraceConfig>,
    ) -> RunOutput {
        let span = match &self.mode {
            ExecutionMode::Sim { .. } => {
                cached_tokens.min(gen_config.prompt.len().saturating_sub(1))
            }
            ExecutionMode::Real { .. } => 0,
        };
        self.run_plain(gen_config, trace, None, span, None)
    }

    /// Executes one generation run with a structured event recorder attached
    /// to every rank; the returned [`RunOutput::trace`] carries the
    /// cross-rank trace (virtual time under `Sim`, wall time under `Real`).
    /// Recording never perturbs generation output — only observes it.
    pub fn run_traced(&self, gen_config: &GenConfig, trace: TraceConfig) -> RunOutput {
        self.run_inner(gen_config, Some(trace), None)
    }

    /// Executes one generation run with a seeded chaos schedule attached to
    /// the driver (`SimDriver::with_faults`; the threaded driver applies its
    /// best-effort subset).  Under `Sim` mode the perturbed run replays
    /// bit-identically for the same plan.
    pub fn run_faulted(&self, gen_config: &GenConfig, faults: FaultPlan) -> RunOutput {
        self.run_inner(gen_config, None, Some(faults))
    }

    /// [`PreparedDeployment::run_faulted`] with a structured event recorder
    /// attached, so injected faults and any recovery they provoke
    /// (`fault_injected`, `draft_failover`, …) land in the trace.
    pub fn run_faulted_traced(
        &self,
        gen_config: &GenConfig,
        faults: FaultPlan,
        trace: TraceConfig,
    ) -> RunOutput {
        self.run_inner(gen_config, Some(trace), Some(faults))
    }

    fn run_inner(
        &self,
        gen_config: &GenConfig,
        trace: Option<TraceConfig>,
        faults: Option<FaultPlan>,
    ) -> RunOutput {
        match &self.pool {
            None => self.run_plain(gen_config, trace, faults, 0, None),
            Some(pool) => match self.run_pooled(pool, gen_config, trace, faults.clone()) {
                Ok(out) => out,
                // The pool cannot host this request right now; degrade to an
                // isolated flat-cache session rather than failing the run.
                Err(_refusal) => self.run_plain(gen_config, trace, faults, 0, None),
            },
        }
    }

    /// One run through the shared page pool: admit, attach the longest cached
    /// prefix, run with suffix-only prefill, then commit the prompt chain and
    /// release the admission pin.
    fn run_pooled(
        &self,
        pool: &Arc<KvPagePool>,
        gen_config: &GenConfig,
        trace: Option<TraceConfig>,
        faults: Option<FaultPlan>,
    ) -> Result<RunOutput, AdmissionRefusal> {
        // Real engines attach physical pages, so a prefix only counts as
        // cached once every stage's K/V planes are committed for it.  Sim
        // engines carry no tensors — a token-level match suffices there.
        let required: Vec<StageKey> = match &self.mode {
            ExecutionMode::Real { .. } => self.splits.iter().map(|r| (r.start, r.end)).collect(),
            ExecutionMode::Sim { .. } => Vec::new(),
        };
        let ticket = pool.begin_request(&gen_config.prompt, gen_config.n_generate, &required)?;
        // Keep at least the final prompt token for live prefill: heads need
        // one evaluated position to produce the first logits.
        let span = ticket
            .cached_tokens
            .min(gen_config.prompt.len().saturating_sub(1));
        let plan = PrefixPlan {
            pool: Arc::clone(pool),
            ticket: ticket.id,
            prompt: gen_config.prompt.clone(),
            cached_tokens: span,
        };
        let out = self.run_plain(gen_config, trace, faults, span, Some(&plan));
        if matches!(self.mode, ExecutionMode::Sim { .. }) {
            // Sim engines never touch physical pages; commit the prompt as a
            // token-only chain so later requests can match against it.
            pool.commit_chain(ticket.id, &gen_config.prompt, None);
        }
        pool.end_request(ticket.id);
        Ok(out)
    }

    fn run_plain(
        &self,
        gen_config: &GenConfig,
        trace: Option<TraceConfig>,
        faults: Option<FaultPlan>,
        prompt_cached: usize,
        plan: Option<&PrefixPlan>,
    ) -> RunOutput {
        let strategy = self.strategy.as_ref();
        let (mode, route, splits) = (&self.mode, &self.route, &self.splits);
        let handle: RecordHandle = Arc::new(Mutex::new(None));
        let engine = build_head_engine_with(mode, splits, gen_config, plan);
        let drafter = strategy
            .needs_drafter()
            .then(|| build_drafter(mode, route.head(), gen_config));
        let head = strategy.build_head(HeadParts {
            route: route.clone(),
            engine,
            drafter,
            gen_config: gen_config.clone(),
            record: handle.clone(),
            prompt_cached,
        });
        let mut others = build_workers_with(mode, route, splits, gen_config, plan);
        others.extend(strategy.build_auxiliary(mode, self.n_nodes, route, gen_config));
        let behaviors = assemble_for(strategy.name(), self.n_nodes, head, others);
        execute_with(mode, behaviors, &handle, trace, faults)
    }
}

/// Executes behaviors under the driver matching the execution mode.
pub fn execute(
    mode: &ExecutionMode,
    behaviors: Vec<Box<dyn NodeBehavior<PipeMsg>>>,
    handle: &RecordHandle,
) -> RunOutput {
    execute_with(mode, behaviors, handle, None, None)
}

/// [`execute`] with an optional structured event recorder attached to the
/// driver.
pub fn execute_traced(
    mode: &ExecutionMode,
    behaviors: Vec<Box<dyn NodeBehavior<PipeMsg>>>,
    handle: &RecordHandle,
    trace: Option<TraceConfig>,
) -> RunOutput {
    execute_with(mode, behaviors, handle, trace, None)
}

/// [`execute`] with an optional structured event recorder and an optional
/// seeded chaos schedule attached to the driver.
pub fn execute_with(
    mode: &ExecutionMode,
    behaviors: Vec<Box<dyn NodeBehavior<PipeMsg>>>,
    handle: &RecordHandle,
    trace: Option<TraceConfig>,
    faults: Option<FaultPlan>,
) -> RunOutput {
    match mode {
        ExecutionMode::Real { .. } => {
            let mut driver = ThreadedDriver::new().with_timeout(Duration::from_secs(120));
            if let Some(cfg) = trace {
                driver = driver.with_trace(cfg);
            }
            if let Some(plan) = faults {
                driver = driver.with_faults(plan);
            }
            let out = driver.run(behaviors);
            RunOutput {
                record: take_record(handle),
                stats: out.stats,
                completed: out.completed,
                trace: out.trace,
            }
        }
        ExecutionMode::Sim { cluster, .. } => {
            let topology: Topology = cluster.topology();
            let mut driver = SimDriver::new(topology);
            if let Some(cfg) = trace {
                driver = driver.with_trace(cfg);
            }
            if let Some(plan) = faults {
                driver = driver.with_faults(plan);
            }
            let out = driver.run(behaviors);
            let completed = out.completed();
            RunOutput {
                record: take_record(handle),
                stats: out.stats,
                completed,
                trace: out.trace,
            }
        }
    }
}

/// Builds the worker behaviors for stages `1..n_stages` of `route`.
pub fn build_workers(
    mode: &ExecutionMode,
    route: &PipelineRoute,
    splits: &[Range<usize>],
    config: &GenConfig,
) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
    build_workers_with(mode, route, splits, config, None)
}

/// [`build_workers`] with an optional shared-prefix plan: real stage engines
/// attach the plan's pooled pages instead of starting from an empty cache.
pub fn build_workers_with(
    mode: &ExecutionMode,
    route: &PipelineRoute,
    splits: &[Range<usize>],
    config: &GenConfig,
    plan: Option<&PrefixPlan>,
) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
    let mut out: Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> = Vec::new();
    for (stage, &rank) in route.ranks().iter().enumerate().skip(1) {
        let worker: Box<dyn NodeBehavior<PipeMsg>> = match mode {
            ExecutionMode::Real { target, .. } => Box::new(PipelineWorker::new(
                rank,
                route.clone(),
                Box::new(RealStageEngine::new_with_plan(
                    target.clone(),
                    splits[stage].clone(),
                    config.kv_capacity,
                    plan,
                )),
            )),
            ExecutionMode::Sim { pair, cluster, .. } => Box::new(PipelineWorker::new(
                rank,
                route.clone(),
                Box::new(SimStageEngine::new(
                    CostModel::new(cluster.node(rank).clone()),
                    ModelCost::new(pair.target.cfg.clone(), pair.target.quant),
                    splits[stage].len(),
                )),
            )),
        };
        out.push((rank, worker));
    }
    out
}

/// Builds a head engine for stage 0 of the route.
pub fn build_head_engine(
    mode: &ExecutionMode,
    splits: &[Range<usize>],
    config: &GenConfig,
) -> Box<dyn HeadEngine> {
    build_head_engine_with(mode, splits, config, None)
}

/// [`build_head_engine`] with an optional shared-prefix plan (see
/// [`build_workers_with`]).
pub fn build_head_engine_with(
    mode: &ExecutionMode,
    splits: &[Range<usize>],
    config: &GenConfig,
    plan: Option<&PrefixPlan>,
) -> Box<dyn HeadEngine> {
    match mode {
        ExecutionMode::Real { target, .. } => Box::new(RealHeadEngine::new_with_plan(
            target.clone(),
            splits[0].clone(),
            config.kv_capacity,
            plan,
        )),
        ExecutionMode::Sim {
            pair,
            cluster,
            oracle_seed,
        } => Box::new(SimHeadEngine::new(
            CostModel::new(cluster.node(0).clone()),
            ModelCost::new(pair.target.cfg.clone(), pair.target.quant),
            splits[0].len(),
            OracleTarget::new(*oracle_seed, pair.target.cfg.vocab_size as u32),
        )),
    }
}

/// Builds a drafter hosted on rank `host_rank`.
pub fn build_drafter(
    mode: &ExecutionMode,
    host_rank: usize,
    config: &GenConfig,
) -> Box<dyn Drafter> {
    match mode {
        ExecutionMode::Real { draft, .. } => {
            Box::new(RealDrafter::new(draft.as_ref().clone(), config.kv_capacity))
        }
        ExecutionMode::Sim {
            pair,
            cluster,
            oracle_seed,
        } => Box::new(OracleDrafter::new(
            OracleTarget::new(*oracle_seed, pair.target.cfg.vocab_size as u32),
            OracleDraft::new(
                oracle_seed.wrapping_add(0x5eed_cafe),
                pair.target.cfg.vocab_size as u32,
                pair.acceptance_rate,
            ),
            CostModel::new(cluster.node(host_rank).clone()),
            ModelCost::new(pair.draft.cfg.clone(), pair.draft.quant),
        )),
    }
}

/// Orders behaviors by rank into a dense vector for the drivers, verifying
/// that the strategy assigned exactly one behavior to every rank.
fn assemble_for(
    strategy: &str,
    n_nodes: usize,
    head: Box<dyn NodeBehavior<PipeMsg>>,
    mut others: Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)>,
) -> Vec<Box<dyn NodeBehavior<PipeMsg>>> {
    let mut slots: Vec<Option<Box<dyn NodeBehavior<PipeMsg>>>> =
        (0..n_nodes).map(|_| None).collect();
    slots[0] = Some(head);
    for (rank, b) in others.drain(..) {
        assert!(
            rank < n_nodes,
            "{strategy}: behavior assigned to rank {rank} outside the {n_nodes}-rank cluster"
        );
        assert!(
            slots[rank].is_none(),
            "{strategy}: rank {rank} was assigned two behaviors \
             (route worker and auxiliary overlap?)"
        );
        slots[rank] = Some(b);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(rank, slot)| {
            slot.unwrap_or_else(|| {
                panic!(
                    "{strategy}: rank {rank} has no behavior — the route skipped it \
                     without Strategy::build_auxiliary providing one"
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::ModelConfig;

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    fn real_mode(seed: u64) -> ExecutionMode {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(cfg.clone(), seed));
        let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
        ExecutionMode::Real { target, draft }
    }

    fn assert_covers(splits: &[Range<usize>], n_layers: usize) {
        let mut next = 0;
        for r in splits {
            assert_eq!(r.start, next, "splits must be contiguous");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n_layers, "splits must cover every layer");
    }

    #[test]
    fn baseline_strategies_route_all_ranks_with_head_zero() {
        for strategy in [
            Deployment::new(IterativeStrategy),
            Deployment::new(SpeculativeStrategy),
        ] {
            for n in [1usize, 2, 4, 9] {
                let (route, splits) = strategy.layout(&sim_mode(n.max(4)), n);
                assert_eq!(route.head(), 0);
                assert_eq!(route.n_stages(), n);
                assert_eq!(route.ranks(), (0..n).collect::<Vec<_>>().as_slice());
                assert_covers(&splits, sim_mode(4).target_layers());
            }
        }
    }

    #[test]
    fn split_layers_matches_model_split() {
        let strategy = IterativeStrategy;
        let route = strategy.route(5);
        let splits = strategy.split_layers(80, &route);
        assert_eq!(splits, Model::split_layers(80, 5));
        assert_covers(&splits, 80);
    }

    #[test]
    fn drafter_policy_matches_strategy() {
        assert!(!IterativeStrategy.needs_drafter());
        assert!(SpeculativeStrategy.needs_drafter());
    }

    #[test]
    fn iterative_and_speculative_agree_in_sim_mode() {
        let config = GenConfig {
            prompt: vec![9; 12],
            n_generate: 24,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let iter = Deployment::new(IterativeStrategy).run(&sim_mode(4), 4, &config);
        let spec = Deployment::new(SpeculativeStrategy).run(&sim_mode(4), 4, &config);
        assert!(iter.completed && spec.completed);
        assert_eq!(
            iter.record.tokens[..24],
            spec.record.tokens[..24],
            "strategies must produce the same greedy stream for one oracle seed"
        );
    }

    #[test]
    fn prepared_deployment_is_reusable_and_matches_one_shot_run() {
        let config = GenConfig {
            prompt: vec![9; 12],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let deployment = Deployment::new(SpeculativeStrategy);
        let prepared = deployment.prepare(&sim_mode(4), 4);
        assert_eq!(prepared.n_nodes(), 4);
        assert_eq!(prepared.strategy().name(), "Speculative");
        assert_eq!(prepared.route().n_stages(), 4);
        assert_eq!(prepared.splits().len(), 4);
        // Repeated runs over one prepared deployment are isolated sessions:
        // identical configs reproduce identical outputs, and both match the
        // one-shot Deployment::run path bit-for-bit.
        let a = prepared.run(&config);
        let b = prepared.run(&config);
        let solo = deployment.run(&sim_mode(4), 4, &config);
        assert!(a.completed && b.completed && solo.completed);
        assert_eq!(a.record.tokens, b.record.tokens);
        assert_eq!(a.record.tokens, solo.record.tokens);
        assert_eq!(a.record.finished_at, solo.record.finished_at);
    }

    #[test]
    fn prepared_deployment_is_shareable_across_threads() {
        let config = GenConfig::small_test(vec![4; 8], 8);
        let prepared = Deployment::new(IterativeStrategy).prepare(&sim_mode(4), 4);
        let tokens: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| prepared.run(&config).record.tokens.clone()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(tokens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn deployment_runs_real_mode_end_to_end() {
        let config = GenConfig::small_test(vec![3, 1, 4, 1, 5], 8);
        let out = Deployment::new(IterativeStrategy).run(&real_mode(17), 2, &config);
        assert!(out.completed);
        assert_eq!(out.record.tokens.len(), 8);
    }

    #[test]
    #[should_panic(expected = "needs at least")]
    fn min_nodes_is_enforced() {
        struct Needy;
        impl Strategy for Needy {
            fn name(&self) -> &'static str {
                "Needy"
            }
            fn min_nodes(&self) -> usize {
                3
            }
            fn build_head(&self, _parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
                unreachable!()
            }
        }
        let config = GenConfig::small_test(vec![1], 1);
        let _ = Deployment::new(Needy).run(&sim_mode(4), 2, &config);
    }

    /// Iterative head over the Fig. 3-style route that skips rank 1.
    struct SkipRankOne {
        with_auxiliary: bool,
    }

    impl Strategy for SkipRankOne {
        fn name(&self) -> &'static str {
            "SkipRankOne"
        }
        fn min_nodes(&self) -> usize {
            3
        }
        fn route(&self, n_nodes: usize) -> PipelineRoute {
            PipelineRoute::pipeinfer(n_nodes)
        }
        fn build_head(&self, parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
            IterativeStrategy.build_head(parts)
        }
        fn build_auxiliary(
            &self,
            _mode: &ExecutionMode,
            n_nodes: usize,
            route: &PipelineRoute,
            _gen_config: &GenConfig,
        ) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
            if !self.with_auxiliary {
                return Vec::new();
            }
            struct Idle;
            impl NodeBehavior<PipeMsg> for Idle {
                fn on_message(
                    &mut self,
                    _: usize,
                    _: u32,
                    _: PipeMsg,
                    _: &mut dyn pi_cluster::NodeCtx<PipeMsg>,
                ) {
                }
                fn is_finished(&self) -> bool {
                    true
                }
                fn as_any(&self) -> &dyn std::any::Any {
                    self
                }
            }
            // Every rank the route skipped gets an idle placeholder (a
            // dedicated draft rank in a real strategy).
            (0..n_nodes)
                .filter(|r| route.stage_of(*r).is_none())
                .map(|r| (r, Box::new(Idle) as Box<dyn NodeBehavior<PipeMsg>>))
                .collect()
        }
    }

    #[test]
    fn off_route_ranks_are_served_by_auxiliary_behaviors() {
        let config = GenConfig {
            prompt: vec![9; 8],
            n_generate: 12,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let skip = Deployment::new(SkipRankOne {
            with_auxiliary: true,
        })
        .run(&sim_mode(4), 4, &config);
        assert!(skip.completed);
        // Rank 1 is off the pipeline, so the skipping layout must match a
        // 3-stage baseline token-for-token.
        let base = Deployment::new(IterativeStrategy).run(&sim_mode(3), 3, &config);
        assert_eq!(skip.record.tokens, base.record.tokens);
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn gapped_layer_split_is_rejected() {
        struct Gapped;
        impl Strategy for Gapped {
            fn name(&self) -> &'static str {
                "Gapped"
            }
            fn split_layers(&self, n_layers: usize, _route: &PipelineRoute) -> Vec<Range<usize>> {
                // Skips layer 0 and overlaps nothing: stage 0 starts at 1.
                vec![1..n_layers / 2, n_layers / 2..n_layers]
            }
            fn build_head(&self, _parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
                unreachable!("split validation fires first")
            }
        }
        let config = GenConfig::small_test(vec![1], 1);
        let _ = Deployment::new(Gapped).run(&sim_mode(4), 2, &config);
    }

    #[test]
    fn uncovered_off_route_rank_panics_descriptively() {
        let config = GenConfig::small_test(vec![1, 2], 2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Deployment::new(SkipRankOne {
                with_auxiliary: false,
            })
            .run(&sim_mode(4), 4, &config);
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("SkipRankOne") && msg.contains("build_auxiliary"),
            "panic should name the strategy and the fix, got: {msg}"
        );
    }

    #[test]
    fn pooled_sim_runs_hit_shared_prefix_and_stay_byte_identical() {
        let config = GenConfig {
            prompt: vec![7; 12],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let deployment = Deployment::new(SpeculativeStrategy);
        let baseline = deployment.prepare(&sim_mode(4), 4).run(&config);
        let pool = KvPagePool::new(KvPoolConfig {
            tokens_per_page: 4,
            n_pages: 64,
        });
        let pooled = deployment
            .prepare(&sim_mode(4), 4)
            .with_kv_pool(Arc::clone(&pool));
        let first = pooled.run(&config);
        let second = pooled.run(&config);
        assert!(first.completed && second.completed);
        // Prefill reuse must never change the token stream.
        assert_eq!(first.record.tokens, baseline.record.tokens);
        assert_eq!(second.record.tokens, baseline.record.tokens);
        let stats = pool.stats();
        assert!(stats.share_hits > 0, "second run must match the prefix");
        assert!(stats.shared_tokens > 0);
        assert!(pool.hit_rate() > 0.0);
        // The cached span skips most of prefill, so prompt processing
        // finishes strictly earlier on the simulator's virtual clock.
        assert!(second.record.prompt_done_at < first.record.prompt_done_at);
    }

    #[test]
    fn pooled_real_runs_hit_shared_prefix_and_stay_byte_identical() {
        let mode = real_mode(17);
        let config = GenConfig::small_test(vec![3, 1, 4, 1, 5, 9, 2, 6], 8);
        let deployment = Deployment::new(IterativeStrategy);
        let baseline = deployment.prepare(&mode, 2).run(&config);
        let pool = KvPagePool::new(KvPoolConfig {
            tokens_per_page: 4,
            n_pages: 32,
        });
        let pooled = deployment.prepare(&mode, 2).with_kv_pool(Arc::clone(&pool));
        let first = pooled.run(&config);
        let second = pooled.run(&config);
        assert!(first.completed && second.completed);
        // Attached pages hold bitwise-identical K/V to recomputation, so the
        // paged second run reproduces the flat baseline exactly.
        assert_eq!(first.record.tokens, baseline.record.tokens);
        assert_eq!(second.record.tokens, baseline.record.tokens);
        let stats = pool.stats();
        assert!(
            stats.share_hits > 0,
            "real-mode prefix must hit once every stage committed: {stats:?}"
        );
        assert!(stats.pages_committed > 0);
    }

    #[test]
    fn pool_exhaustion_refuses_then_run_falls_back() {
        let config = GenConfig {
            prompt: vec![7; 12],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let pool = KvPagePool::new(KvPoolConfig {
            tokens_per_page: 4,
            n_pages: 2,
        });
        let prepared = Deployment::new(IterativeStrategy)
            .prepare(&sim_mode(4), 4)
            .with_kv_pool(Arc::clone(&pool));
        let err = prepared
            .try_run(&config)
            .expect_err("12 prompt + 16 generated tokens cannot fit 2 pages");
        assert!(err.needed_pages > err.free_pages);
        // The infallible path degrades to an isolated flat-cache run.
        let out = prepared.run(&config);
        assert!(out.completed);
        assert_eq!(out.record.tokens.len(), 16);
        assert_eq!(pool.stats().refusals, 2);
    }

    #[test]
    fn take_drafter_panics_without_drafter_declaration() {
        let splits = vec![0..1; 1];
        let mut parts = HeadParts {
            route: PipelineRoute::baseline(1),
            engine: build_head_engine(&sim_mode(4), &splits, &GenConfig::small_test(vec![1], 1)),
            drafter: None,
            gen_config: GenConfig::small_test(vec![1], 1),
            record: Arc::new(Mutex::new(None)),
            prompt_cached: 0,
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = parts.take_drafter();
        }));
        assert!(caught.is_err());
    }
}
