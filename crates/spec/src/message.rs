//! The pipeline message protocol.
//!
//! Every inference strategy in this reproduction — the iterative and
//! speculative baselines and PipeInfer itself — drives its target pipeline
//! with the same message enum.  One logical pipeline *transaction* of the
//! paper (a typed sequence of MPI sends issued under a single tag, §IV-A2)
//! is represented as one [`PipeMsg`] value: atomicity within a transaction
//! is then automatic, and the per-link FIFO ordering that both drivers
//! guarantee supplies the cross-transaction ordering the paper obtains from
//! MPI's non-overtaking rule.

use pi_cluster::WireMessage;
use pi_model::{Batch, Pos, SeqId, Token};
use pi_tensor::Tensor;

/// Identifier of an inference run travelling through the target pipeline.
pub type RunId = u64;

/// Whether a run carries speculative tokens or the single non-speculated
/// ("canonical") token.  Early inference cancellation treats the two
/// differently: non-speculative runs are always evaluated in full so that the
/// KV cache stays authoritative (paper §IV-D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunKind {
    /// Single-token inference of the pending (already accepted) token.
    NonSpeculative,
    /// Verification of speculated tokens.
    Speculative,
}

/// Activation tensors flowing between pipeline stages.
///
/// Real execution ships actual hidden states; simulated execution ships only
/// the size so the interconnect model can charge transfer time.  Cancelled
/// runs ship `Empty` payloads to preserve message ordering, exactly as the
/// paper keeps empty activation transfers for cancelled runs (§IV-D2).
#[derive(Debug, Clone)]
pub enum ActivationPayload {
    /// Real hidden states `[n_tokens, d_model]`.
    Real(Tensor),
    /// Simulated payload of the given size.
    Simulated {
        /// Number of tokens represented.
        tokens: usize,
        /// Size in bytes charged to the interconnect.
        bytes: u64,
    },
    /// Empty payload used by cancelled runs.
    Empty,
}

/// Topology of a speculation tree travelling with a decode transaction.
///
/// Tree verification ships the speculated tokens as one batch whose
/// sequence-id sets already encode the attention mask, but the head also
/// needs the per-node parent links to walk the deepest accepted path when
/// the result returns, and a real multi-process deployment would need them
/// to rebuild the mask.  `parents[i]` is the *batch index* of entry `i`'s
/// parent, or `None` for entries that directly continue the accepted
/// context (the pending token and, through it, the tree's roots).  Parents
/// always precede children (the batch is linearised parent-before-child).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTopology {
    /// Per-batch-entry parent index.
    pub parents: Vec<Option<u32>>,
}

impl TreeTopology {
    /// Serialized size: a length word plus one parent word per entry.
    pub fn wire_bytes(&self) -> u64 {
        4 + 4 * self.parents.len() as u64
    }

    /// The parents as `usize` indices for engines that resolve them.
    pub fn parent_indices(&self) -> Vec<Option<usize>> {
        self.parents.iter().map(|p| p.map(|i| i as usize)).collect()
    }

    /// The wire topology of a [`pi_model::TokenTree`] (node-insertion order
    /// is parent-before-child by construction).
    pub fn from_tree(tree: &pi_model::TokenTree) -> Self {
        Self {
            parents: tree.parents().iter().map(|p| p.map(|i| i as u32)).collect(),
        }
    }

    /// Rebuilds the [`pi_model::TokenTree`] this topology describes from
    /// its wire nodes (`(token, confidence)` pairs in the same order).
    ///
    /// Panics if a parent index does not precede its node — the invariant
    /// every legal wire topology satisfies.
    pub fn to_tree(&self, nodes: &[(Token, f32)]) -> pi_model::TokenTree {
        let mut tree = pi_model::TokenTree::new();
        for (i, &(tok, prob)) in nodes.iter().enumerate() {
            let parent = self.parents.get(i).copied().flatten().map(|p| {
                let p = p as usize;
                assert!(p < i, "topology parent {p} does not precede node {i}");
                p
            });
            tree.add(parent, tok, prob);
        }
        tree
    }
}

impl ActivationPayload {
    /// Number of tokens the payload represents.
    pub fn tokens(&self) -> usize {
        match self {
            ActivationPayload::Real(t) => t.rows(),
            ActivationPayload::Simulated { tokens, .. } => *tokens,
            ActivationPayload::Empty => 0,
        }
    }

    /// Size in bytes for interconnect accounting.
    pub fn nbytes(&self) -> u64 {
        match self {
            ActivationPayload::Real(t) => t.nbytes() as u64,
            ActivationPayload::Simulated { bytes, .. } => *bytes,
            ActivationPayload::Empty => 0,
        }
    }
}

/// A KV-cache metadata operation, pipelined through the stages in the same
/// order as the activation traffic (paper §IV-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Copy entries of `src` in `[p0, p1)` into `dst` (metadata only).
    SeqCp {
        /// Source sequence.
        src: SeqId,
        /// Destination sequence.
        dst: SeqId,
        /// First position (inclusive).
        p0: Pos,
        /// Last position (exclusive).
        p1: Pos,
    },
    /// Remove entries of `seq` in `[p0, p1)`.
    SeqRm {
        /// Sequence to remove from.
        seq: SeqId,
        /// First position (inclusive).
        p0: Pos,
        /// Last position (exclusive).
        p1: Pos,
    },
    /// Keep only `seq`, freeing every other sequence.
    SeqKeep {
        /// Sequence to keep.
        seq: SeqId,
    },
    /// Commit the accepted root-to-leaf path of a speculation tree: copy the
    /// entries of leaf sequence `path` in `[p0, p1)` into `dst`, then drop
    /// every tree sequence in `first .. first + n_seqs`, freeing the
    /// rejected sibling branches (see `KvCache::branch_commit`).
    BranchCommit {
        /// Destination (normally the canonical) sequence.
        dst: SeqId,
        /// Leaf sequence whose path contains every accepted node.
        path: SeqId,
        /// First tree sequence.
        first: SeqId,
        /// Number of tree sequences (= number of leaves).
        n_seqs: u32,
        /// First accepted position (inclusive).
        p0: Pos,
        /// One past the last accepted position (exclusive).
        p1: Pos,
    },
    /// Roll a speculation tree back entirely: drop every tree sequence in
    /// `first .. first + n_seqs` (see `KvCache::branch_rollback`).
    BranchRollback {
        /// First tree sequence.
        first: SeqId,
        /// Number of tree sequences.
        n_seqs: u32,
    },
}

/// Messages exchanged between ranks.
#[derive(Debug, Clone)]
pub enum PipeMsg {
    /// A decode transaction entering a pipeline stage: evaluate `batch` with
    /// the given input activations and forward the result.
    Decode {
        /// Run identifier.
        run_id: RunId,
        /// Run kind (speculative or not).
        kind: RunKind,
        /// Token batch (positions + sequence ids).
        batch: Batch,
        /// Input activations for this stage.
        payload: ActivationPayload,
        /// Per-node parent links when the run verifies a speculation tree;
        /// `None` for linear runs (prompts, single tokens and chains, which
        /// are degenerate single-branch trees whose topology is implicit in
        /// the batch order).
        tree: Option<TreeTopology>,
    },
    /// Final-stage output returning to the head for sampling/verification.
    RunResult {
        /// Run identifier.
        run_id: RunId,
        /// Output activations of the last stage.
        payload: ActivationPayload,
    },
    /// A pipelined KV-cache operation.
    Cache(CacheOp),
    /// Back-propagated early-cancellation signal for a run.
    Cancel {
        /// Run to cancel.
        run_id: RunId,
    },
    /// Request for the dedicated draft rank: speculate a tree micro-batch.
    DraftRequest {
        /// Monotonically increasing request sequence number; the reply
        /// echoes it so the head can drop responses to hypotheses it has
        /// since abandoned.
        request_id: u64,
        /// The head's current hypothesis: every accepted token followed by
        /// every token already speculated and dispatched for verification.
        /// The draft continues from the end of this sequence.
        context: Vec<Token>,
        /// Maximum number of root-level branches in the drafted tree
        /// (1 requests a plain chain).
        width: usize,
        /// Maximum depth of the primary branch (the micro-batch size).
        max_tokens: usize,
        /// Confidence cutoff for this request (continuous speculation adjusts
        /// it with the recovery/decay factors).
        confidence_cutoff: f32,
    },
    /// The draft rank's reply to a [`PipeMsg::DraftRequest`].
    DraftResponse {
        /// Echo of the request's sequence number.
        request_id: u64,
        /// Drafted tree nodes in parent-before-child order, with the draft
        /// model's confidence for each.
        nodes: Vec<(Token, f32)>,
        /// Per-node parent links of the drafted tree (same order as
        /// `nodes`) — the topology the head needs to rebuild the
        /// [`pi_model::TokenTree`].
        topology: TreeTopology,
        /// Context length the draft rank drafted from (echo for validation).
        context_len: usize,
    },
    /// Out-of-band signal to the draft rank: every draft request with
    /// sequence number `up_to` or below speculates from an invalidated
    /// hypothesis — drop it unserved.
    DraftCancel {
        /// Highest stale request sequence number.
        up_to: u64,
    },
    /// Orderly end of the run; forwarded along the pipeline.
    Shutdown,
}

impl WireMessage for PipeMsg {
    fn priority(&self) -> bool {
        matches!(self, PipeMsg::Cancel { .. } | PipeMsg::DraftCancel { .. })
    }

    fn is_draft(&self) -> bool {
        matches!(
            self,
            PipeMsg::DraftRequest { .. }
                | PipeMsg::DraftResponse { .. }
                | PipeMsg::DraftCancel { .. }
        )
    }

    fn wire_bytes(&self) -> u64 {
        match self {
            PipeMsg::Decode {
                batch,
                payload,
                tree,
                ..
            } => {
                16 + batch.wire_bytes()
                    + payload.nbytes()
                    + tree.as_ref().map_or(0, TreeTopology::wire_bytes)
            }
            PipeMsg::RunResult { payload, .. } => 12 + payload.nbytes(),
            PipeMsg::Cache(CacheOp::BranchCommit { .. }) => 28,
            PipeMsg::Cache(CacheOp::BranchRollback { .. }) => 16,
            PipeMsg::Cache(_) => 20,
            PipeMsg::Cancel { .. } => 12,
            // request_id + width + max_tokens + cutoff + length word, then
            // one token word per context entry.
            PipeMsg::DraftRequest { context, .. } => 24 + 4 * context.len() as u64,
            // request_id + context_len + (token, confidence) pairs + the
            // per-node parent topology.
            PipeMsg::DraftResponse {
                nodes, topology, ..
            } => 16 + 8 * nodes.len() as u64 + topology.wire_bytes(),
            PipeMsg::DraftCancel { .. } => 12,
            PipeMsg::Shutdown => 4,
        }
    }
}

/// Message tags (informational; ordering is per-link regardless of tag).
pub mod tags {
    /// Decode transactions.
    pub const DECODE: u32 = 1;
    /// Run results returning to the head.
    pub const RESULT: u32 = 2;
    /// Cache operations.
    pub const CACHE: u32 = 3;
    /// Cancellation signals.
    pub const CANCEL: u32 = 4;
    /// Draft requests/responses.
    pub const DRAFT: u32 = 5;
    /// Shutdown.
    pub const SHUTDOWN: u32 = 6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_token_counts_and_sizes() {
        let real = ActivationPayload::Real(Tensor::zeros(&[3, 8]));
        assert_eq!(real.tokens(), 3);
        assert_eq!(real.nbytes(), 3 * 8 * 4);
        let sim = ActivationPayload::Simulated {
            tokens: 5,
            bytes: 999,
        };
        assert_eq!(sim.tokens(), 5);
        assert_eq!(sim.nbytes(), 999);
        assert_eq!(ActivationPayload::Empty.tokens(), 0);
        assert_eq!(ActivationPayload::Empty.nbytes(), 0);
    }

    #[test]
    fn decode_wire_bytes_include_batch_and_payload() {
        let batch = Batch::prompt(&[1, 2, 3], 0, 0);
        let msg = PipeMsg::Decode {
            run_id: 1,
            kind: RunKind::Speculative,
            batch: batch.clone(),
            payload: ActivationPayload::Simulated {
                tokens: 3,
                bytes: 1000,
            },
            tree: None,
        };
        assert_eq!(msg.wire_bytes(), 16 + batch.wire_bytes() + 1000);
    }

    #[test]
    fn tree_topology_is_charged_on_the_wire() {
        let batch = Batch::prompt(&[1, 2, 3], 0, 0);
        let topology = TreeTopology {
            parents: vec![None, Some(0), Some(0)],
        };
        assert_eq!(topology.wire_bytes(), 4 + 4 * 3);
        assert_eq!(topology.parent_indices(), vec![None, Some(0usize), Some(0)]);
        let linear = PipeMsg::Decode {
            run_id: 1,
            kind: RunKind::Speculative,
            batch: batch.clone(),
            payload: ActivationPayload::Empty,
            tree: None,
        };
        let treed = PipeMsg::Decode {
            run_id: 1,
            kind: RunKind::Speculative,
            batch,
            payload: ActivationPayload::Empty,
            tree: Some(topology),
        };
        assert_eq!(treed.wire_bytes(), linear.wire_bytes() + 16);
    }

    #[test]
    fn branch_cache_ops_have_fixed_wire_sizes() {
        let commit = PipeMsg::Cache(CacheOp::BranchCommit {
            dst: 0,
            path: 2,
            first: 1,
            n_seqs: 3,
            p0: 10,
            p1: 14,
        });
        assert_eq!(commit.wire_bytes(), 28);
        let rollback = PipeMsg::Cache(CacheOp::BranchRollback {
            first: 1,
            n_seqs: 3,
        });
        assert_eq!(rollback.wire_bytes(), 16);
        assert!(!commit.priority() && !rollback.priority());
    }

    #[test]
    fn cancelled_run_payload_is_cheap() {
        let msg = PipeMsg::RunResult {
            run_id: 9,
            payload: ActivationPayload::Empty,
        };
        assert!(msg.wire_bytes() < 20);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(PipeMsg::Cancel { run_id: 3 }.wire_bytes() < 16);
        assert!(PipeMsg::Shutdown.wire_bytes() < 8);
        assert!(PipeMsg::Cache(CacheOp::SeqKeep { seq: 0 }).wire_bytes() < 32);
    }

    #[test]
    fn only_cancellation_signals_are_out_of_band() {
        assert!(PipeMsg::Cancel { run_id: 3 }.priority());
        assert!(PipeMsg::DraftCancel { up_to: 3 }.priority());
        assert!(!PipeMsg::Shutdown.priority());
        assert!(!PipeMsg::Cache(CacheOp::SeqKeep { seq: 0 }).priority());
        assert!(!PipeMsg::RunResult {
            run_id: 1,
            payload: ActivationPayload::Empty
        }
        .priority());
    }

    #[test]
    fn draft_messages_scale_with_token_count_and_topology() {
        let req = PipeMsg::DraftRequest {
            request_id: 7,
            context: vec![1, 2, 3, 4, 5],
            width: 2,
            max_tokens: 4,
            confidence_cutoff: 0.4,
        };
        assert_eq!(req.wire_bytes(), 24 + 4 * 5);
        let resp = PipeMsg::DraftResponse {
            request_id: 7,
            nodes: vec![(1, 0.9), (2, 0.8)],
            topology: TreeTopology {
                parents: vec![None, Some(0)],
            },
            context_len: 10,
        };
        assert_eq!(resp.wire_bytes(), 16 + 16 + (4 + 4 * 2));
        assert!(PipeMsg::DraftCancel { up_to: 7 }.wire_bytes() < 16);
    }

    #[test]
    fn draft_protocol_traffic_is_classified() {
        assert!(PipeMsg::DraftRequest {
            request_id: 0,
            context: vec![],
            width: 1,
            max_tokens: 1,
            confidence_cutoff: 0.0,
        }
        .is_draft());
        assert!(PipeMsg::DraftResponse {
            request_id: 0,
            nodes: vec![],
            topology: TreeTopology { parents: vec![] },
            context_len: 0,
        }
        .is_draft());
        assert!(PipeMsg::DraftCancel { up_to: 0 }.is_draft());
        assert!(!PipeMsg::Shutdown.is_draft());
        assert!(!PipeMsg::Cancel { run_id: 1 }.is_draft());
    }

    #[test]
    fn run_kind_equality() {
        assert_ne!(RunKind::Speculative, RunKind::NonSpeculative);
    }
}
