//! The generic pipeline worker rank.
//!
//! Every non-head rank of the target pipeline — under the iterative
//! baseline, the speculative baseline *and* PipeInfer — runs this state
//! machine.  It evaluates its layer range for every decode transaction,
//! applies pipelined KV-cache operations in arrival order, honours
//! back-propagated cancellation signals (skipping speculative runs it has
//! not started yet, while still forwarding an empty payload to preserve
//! ordering, paper §IV-D2), and shuts down on request.

use crate::engine::StageEngine;
use crate::message::{tags, ActivationPayload, PipeMsg, RunId, RunKind, TreeTopology};
use crate::route::PipelineRoute;
use pi_cluster::{trace_if, EventKind, NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::KvCacheEvents;
use std::collections::HashSet;

/// Drains paged-KV counters accumulated by an engine's cache into the
/// driver's per-rank statistics and the structured trace.  No-op (and no
/// trace records) for engines on flat caches, whose counters stay zero.
pub fn record_kv_events(ev: KvCacheEvents, ctx: &mut dyn NodeCtx<PipeMsg>) {
    if !ev.any() {
        return;
    }
    ctx.record_kv_pages(
        ev.page_alloc,
        ev.page_share_hit,
        ev.page_cow,
        ev.page_release,
    );
    if ev.page_alloc > 0 {
        trace_if(ctx, || EventKind::PageAlloc {
            n: ev.page_alloc as u32,
        });
    }
    if ev.page_share_hit > 0 {
        trace_if(ctx, || EventKind::PageShareHit {
            n: ev.page_share_hit as u32,
        });
    }
    if ev.page_cow > 0 {
        trace_if(ctx, || EventKind::PageCow {
            n: ev.page_cow as u32,
        });
    }
    if ev.page_release > 0 {
        trace_if(ctx, || EventKind::PageEvict {
            n: ev.page_release as u32,
        });
    }
}

/// A pipeline stage rank.
pub struct PipelineWorker {
    rank: Rank,
    route: PipelineRoute,
    engine: Box<dyn StageEngine>,
    cancelled: HashSet<RunId>,
    /// Runs already evaluated (so that a late-arriving cancel is ignored and
    /// the cancelled set stays small).
    seen: HashSet<RunId>,
    finished: bool,
    /// Number of decode transactions fully evaluated.
    pub evaluated_runs: u64,
    /// Number of decode transactions skipped due to cancellation.
    pub skipped_runs: u64,
}

impl PipelineWorker {
    /// Creates a worker for `rank` using `engine` to evaluate its layers.
    pub fn new(rank: Rank, route: PipelineRoute, engine: Box<dyn StageEngine>) -> Self {
        Self {
            rank,
            route,
            engine,
            cancelled: HashSet::new(),
            seen: HashSet::new(),
            finished: false,
            evaluated_runs: 0,
            skipped_runs: 0,
        }
    }

    fn forward_result(
        &self,
        ctx: &mut dyn NodeCtx<PipeMsg>,
        run_id: RunId,
        kind: RunKind,
        batch: pi_model::Batch,
        payload: ActivationPayload,
        tree: Option<TreeTopology>,
    ) {
        match self.route.next_after(self.rank) {
            Some(next) => ctx.send(
                next,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind,
                    batch,
                    payload,
                    tree,
                },
            ),
            None => ctx.send(
                self.route.head(),
                tags::RESULT,
                PipeMsg::RunResult { run_id, payload },
            ),
        }
    }
}

impl NodeBehavior<PipeMsg> for PipelineWorker {
    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        match msg {
            PipeMsg::Decode {
                run_id,
                kind,
                batch,
                payload,
                tree,
            } => {
                self.seen.insert(run_id);
                let skip = kind == RunKind::Speculative && self.cancelled.remove(&run_id);
                if skip {
                    // Cancelled speculative run: skip the evaluation entirely
                    // but keep the message flowing so ordering and per-node
                    // state stay intact.
                    self.skipped_runs += 1;
                    ctx.record_cancellation_saved(1);
                    trace_if(ctx, || EventKind::RunSkipped { run: run_id });
                    self.forward_result(ctx, run_id, kind, batch, ActivationPayload::Empty, tree);
                } else {
                    let (out, cost) = self.engine.eval(&batch, &payload);
                    ctx.elapse(cost);
                    record_kv_events(self.engine.take_kv_events(), ctx);
                    self.evaluated_runs += 1;
                    let (layer_lo, layer_hi) = self.engine.layer_span();
                    let batch_len = batch.len() as u32;
                    let cohort = batch.lane_count().max(1) as u32;
                    ctx.record_cohort_step(cohort as u64, batch_len as u64);
                    trace_if(ctx, || EventKind::StageForward {
                        run: run_id,
                        layer_lo,
                        layer_hi,
                        batch: batch_len,
                        cohort,
                        dur: cost,
                    });
                    self.forward_result(ctx, run_id, kind, batch, out, tree);
                }
            }
            PipeMsg::RunResult { run_id, payload } => {
                // Only the head consumes results; a worker receiving one is a
                // routing bug — forward it toward the head to stay robust.
                ctx.send(
                    self.route.head(),
                    tags::RESULT,
                    PipeMsg::RunResult { run_id, payload },
                );
            }
            PipeMsg::Cache(op) => {
                let cost = self.engine.apply_cache_op(&op);
                ctx.elapse(cost);
                record_kv_events(self.engine.take_kv_events(), ctx);
                if let Some(next) = self.route.next_after(self.rank) {
                    ctx.send(next, tags::CACHE, PipeMsg::Cache(op));
                }
            }
            PipeMsg::Cancel { run_id } => {
                if !self.seen.contains(&run_id) {
                    self.cancelled.insert(run_id);
                }
                // Back-propagate toward the head; the first stage after the
                // head stops the propagation.
                if let Some(prev) = self.route.prev_before(self.rank) {
                    if prev != self.route.head() {
                        ctx.send(prev, tags::CANCEL, PipeMsg::Cancel { run_id });
                    }
                }
            }
            PipeMsg::Shutdown => {
                if let Some(next) = self.route.next_after(self.rank) {
                    ctx.send(next, tags::SHUTDOWN, PipeMsg::Shutdown);
                }
                self.finished = true;
            }
            // Draft traffic never reaches pipeline workers.
            PipeMsg::DraftRequest { .. }
            | PipeMsg::DraftResponse { .. }
            | PipeMsg::DraftCancel { .. } => {}
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimStageEngine;
    use pi_model::{Batch, ModelConfig};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_tensor::QuantKind;

    struct TestCtx {
        sent: Vec<(Rank, PipeMsg)>,
        elapsed: f64,
    }
    impl TestCtx {
        fn new() -> Self {
            Self {
                sent: Vec::new(),
                elapsed: 0.0,
            }
        }
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            1
        }
        fn world_size(&self) -> usize {
            4
        }
        fn now(&self) -> f64 {
            0.0
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.elapsed += seconds;
        }
    }

    fn sim_engine() -> Box<dyn StageEngine> {
        Box::new(SimStageEngine::new(
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K),
            10,
        ))
    }

    fn decode(run_id: RunId, kind: RunKind) -> PipeMsg {
        PipeMsg::Decode {
            run_id,
            kind,
            batch: Batch::single(5, 10, 0),
            payload: ActivationPayload::Simulated {
                tokens: 1,
                bytes: 100,
            },
            tree: None,
        }
    }

    #[test]
    fn middle_worker_forwards_to_next_stage() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(4), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(
            0,
            tags::DECODE,
            decode(7, RunKind::NonSpeculative),
            &mut ctx,
        );
        assert_eq!(w.evaluated_runs, 1);
        assert!(ctx.elapsed > 0.0);
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 2);
        assert!(matches!(ctx.sent[0].1, PipeMsg::Decode { run_id: 7, .. }));
    }

    #[test]
    fn last_worker_returns_result_to_head() {
        let mut w = PipelineWorker::new(3, PipelineRoute::baseline(4), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(2, tags::DECODE, decode(9, RunKind::Speculative), &mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 0);
        assert!(matches!(
            ctx.sent[0].1,
            PipeMsg::RunResult { run_id: 9, .. }
        ));
    }

    #[test]
    fn tree_topology_is_forwarded_with_the_batch() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        let topology = TreeTopology {
            parents: vec![None, Some(0)],
        };
        w.on_message(
            0,
            tags::DECODE,
            PipeMsg::Decode {
                run_id: 2,
                kind: RunKind::Speculative,
                batch: Batch::prompt(&[5, 6], 10, 0),
                payload: ActivationPayload::Empty,
                tree: Some(topology.clone()),
            },
            &mut ctx,
        );
        match &ctx.sent[0].1 {
            PipeMsg::Decode { tree, .. } => assert_eq!(tree.as_ref(), Some(&topology)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancelled_speculative_run_is_skipped_with_empty_payload() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(2, tags::CANCEL, PipeMsg::Cancel { run_id: 4 }, &mut ctx);
        w.on_message(0, tags::DECODE, decode(4, RunKind::Speculative), &mut ctx);
        assert_eq!(w.skipped_runs, 1);
        assert_eq!(w.evaluated_runs, 0);
        let forwarded = ctx
            .sent
            .iter()
            .find(|(_, m)| matches!(m, PipeMsg::Decode { run_id: 4, .. }))
            .expect("empty decode must still be forwarded");
        match &forwarded.1 {
            PipeMsg::Decode { payload, .. } => assert!(matches!(payload, ActivationPayload::Empty)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cancelled_non_speculative_run_is_still_evaluated() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(2, tags::CANCEL, PipeMsg::Cancel { run_id: 4 }, &mut ctx);
        w.on_message(
            0,
            tags::DECODE,
            decode(4, RunKind::NonSpeculative),
            &mut ctx,
        );
        assert_eq!(w.evaluated_runs, 1);
        assert_eq!(w.skipped_runs, 0);
    }

    #[test]
    fn late_cancel_for_already_seen_run_is_ignored() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(0, tags::DECODE, decode(4, RunKind::Speculative), &mut ctx);
        w.on_message(2, tags::CANCEL, PipeMsg::Cancel { run_id: 4 }, &mut ctx);
        // A later (bogus) replay of the same run id would not be skipped.
        assert!(w.cancelled.is_empty());
    }

    #[test]
    fn cancel_back_propagates_until_first_stage() {
        let route = PipelineRoute::baseline(4);
        // Rank 2: propagates to rank 1.
        let mut w2 = PipelineWorker::new(2, route.clone(), sim_engine());
        let mut ctx = TestCtx::new();
        w2.on_message(3, tags::CANCEL, PipeMsg::Cancel { run_id: 8 }, &mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 1);
        // Rank 1: previous stage is the head → stop propagating.
        let mut w1 = PipelineWorker::new(1, route, sim_engine());
        let mut ctx1 = TestCtx::new();
        w1.on_message(2, tags::CANCEL, PipeMsg::Cancel { run_id: 8 }, &mut ctx1);
        assert!(ctx1.sent.is_empty());
    }

    #[test]
    fn cache_ops_are_applied_and_forwarded() {
        use crate::message::CacheOp;
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        w.on_message(
            0,
            tags::CACHE,
            PipeMsg::Cache(CacheOp::SeqKeep { seq: 0 }),
            &mut ctx,
        );
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 2);
        // Last stage does not forward further.
        let mut last = PipelineWorker::new(2, PipelineRoute::baseline(3), sim_engine());
        let mut ctx2 = TestCtx::new();
        last.on_message(
            1,
            tags::CACHE,
            PipeMsg::Cache(CacheOp::SeqKeep { seq: 0 }),
            &mut ctx2,
        );
        assert!(ctx2.sent.is_empty());
    }

    #[test]
    fn shutdown_propagates_and_finishes() {
        let mut w = PipelineWorker::new(1, PipelineRoute::baseline(3), sim_engine());
        let mut ctx = TestCtx::new();
        assert!(!w.is_finished());
        w.on_message(0, tags::SHUTDOWN, PipeMsg::Shutdown, &mut ctx);
        assert!(w.is_finished());
        assert!(matches!(ctx.sent[0].1, PipeMsg::Shutdown));
    }
}
