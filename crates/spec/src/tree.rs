//! Tree speculation with adaptive width/depth — the strategy that exercises
//! the canonical [`TokenTree`] unit end-to-end.
//!
//! Linear speculation spends its whole verify-batch budget on one chain of
//! draft tokens, so a single top-1 miss wastes every token after it.  Tree
//! speculation hedges: the same budget buys a *tree* whose primary branch is
//! the greedy chain and whose extra root-level branches are the draft
//! model's runner-up candidates, all verified in one batched pass through
//! the pipeline (the batch's sequence-id sets encode the tree attention
//! mask, SpecInfer-style).  Verification walks the deepest accepted
//! root-to-leaf path ([`verify_tree`]); the KV caches of every stage then
//! retain exactly that path via the pipelined
//! [`CacheOp::BranchCommit`]/[`CacheOp::BranchRollback`] operations.
//!
//! ## Adaptive shape
//!
//! How to split the budget between *width* (hedging) and *depth* (reach) is
//! a function of the live acceptance rate: when the draft agrees with the
//! target, deep chains win (every extra branch is a wasted slot); when it
//! struggles, wide shallow trees win (the runner-up rescues rounds the chain
//! would lose outright).  [`AdaptiveShape`] tracks the per-round depth
//! utilization over a sliding window and re-chooses `(width, depth)` every
//! round, so a request adapts *within* its own stream.  Across requests, the
//! strategy feeds each finished request's lifetime acceptance back into a
//! shared prior, so a `pi_serve::Server` stream starts each new request at
//! the shape its predecessors learned (the feedback loop the scheduler's
//! completion order drives).  Shape only affects *performance*: the emitted
//! token stream is always the target's own greedy continuation, whatever the
//! tree looks like.

use crate::drafter::Drafter;
use crate::engine::HeadEngine;
use crate::message::{tags, ActivationPayload, CacheOp, PipeMsg, RunId, RunKind, TreeTopology};
use crate::route::PipelineRoute;
use crate::verify::verify_tree;
use crate::worker::record_kv_events;
use crate::{GenConfig, GenerationRecord, HeadParts, RecordHandle, Strategy};
use pi_cluster::{NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::{Batch, Pos, SeqId, Token, TokenTree};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// First KV sequence id used for tree branches (sequence 0 stays canonical).
pub(crate) const FIRST_TREE_SEQ: SeqId = 1;

/// Starting acceptance estimate when no feedback exists yet: optimistic, so
/// a fresh request begins with a pure chain (`width == 1`) and only widens
/// on evidence — which also makes `max_width == 1` reproduce the linear
/// speculative baseline exactly.
pub(crate) const DEFAULT_PRIOR: f64 = 0.8;

/// Tree-speculation tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum root-level branches per tree (1 = always a chain).
    pub max_width: usize,
    /// Maximum depth of the primary branch.
    pub max_depth: usize,
    /// Sliding-window length (in verification rounds) of the acceptance
    /// estimate driving width/depth adaptation.
    pub window: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_width: 4,
            max_depth: 8,
            // Short window: the synthetic (and real) acceptance landscape
            // shifts over a handful of rounds, so a long memory adapts out
            // of phase with it (measured on the serving gate workload).
            window: 4,
        }
    }
}

/// Recovery probability the shape model assumes per runner-up branch: the
/// chance that, when the primary candidate misses, one extra root branch
/// rescues the round.  Kept deliberately below the oracle drafter's actual
/// second-choice rate so the controller only widens when the expected gain
/// is robust.
const MODEL_RECOVERY: f64 = 0.4;

/// Pseudo-observation weight of the prior in the acceptance estimate, so a
/// couple of unlucky opening rounds cannot whipsaw the shape.
const PRIOR_WEIGHT: f64 = 6.0;

/// Sliding-window acceptance tracker choosing the per-round tree shape.
///
/// The estimate is a smoothed geometric per-token acceptance MLE over the
/// window: accepted tokens over accepted tokens plus observed rejection
/// events (a round whose accepted path stops short of the tree's span
/// observed exactly one rejection; a fully-accepted round observed none —
/// so confidence-cutoff truncation of short drafts does not inflate the
/// estimate), blended with the prior at `PRIOR_WEIGHT` pseudo-counts.
///
/// The shape decision is then a one-step expected-value model: for every
/// feasible width `w` (depth `d = budget + 1 - w`), the expected accepted
/// tokens are the chain term `p + p² + … + p^d` plus the rescue term
/// `(1 - p) · (1 - (1 - r)^(w-1))`, and the controller picks the maximising
/// `(w, d)` — deep chains when acceptance is high, wider hedged trees as it
/// falls, never exceeding the verify-batch budget.
#[derive(Debug, Clone)]
pub struct AdaptiveShape {
    config: TreeConfig,
    /// Maximum tree nodes per round (= the linear strategy's `max_draft`,
    /// keeping verify batches the same size as the baseline's).
    budget: usize,
    /// Per-round `(accepted, observed a rejection)` outcomes.
    history: VecDeque<(usize, bool)>,
    prior: f64,
}

impl AdaptiveShape {
    /// Creates a controller over `budget` speculated nodes per round,
    /// starting from acceptance estimate `prior`.
    pub fn new(config: TreeConfig, budget: usize, prior: f64) -> Self {
        Self {
            config,
            budget: budget.max(1),
            history: VecDeque::new(),
            prior: prior.clamp(0.0, 1.0),
        }
    }

    /// The current smoothed acceptance estimate (the prior until rounds
    /// accumulate).
    pub fn estimate(&self) -> f64 {
        let accepted: usize = self.history.iter().map(|(a, _)| a).sum();
        let rejections: usize = self.history.iter().filter(|(_, r)| *r).count();
        (PRIOR_WEIGHT * self.prior + accepted as f64)
            / (PRIOR_WEIGHT + (accepted + rejections) as f64)
    }

    /// Expected accepted tokens of one `(width, depth)` round at per-token
    /// acceptance `p`.
    fn expected_accepted(p: f64, width: usize, depth: usize) -> f64 {
        let chain: f64 = (1..=depth as i32).map(|k| p.powi(k)).sum();
        let rescue = (1.0 - p) * (1.0 - (1.0 - MODEL_RECOVERY).powi(width as i32 - 1));
        chain + rescue
    }

    fn depth_for(&self, width: usize) -> usize {
        (self.budget + 1 - width).min(self.config.max_depth).max(1)
    }

    /// The `(width, depth)` to draft this round: the expected-value argmax
    /// over feasible widths (ties prefer the narrower tree).
    pub fn shape(&self) -> (usize, usize) {
        let p = self.estimate();
        let widest = self.config.max_width.min(self.budget).max(1);
        let mut best = (1, self.depth_for(1));
        let mut best_value = Self::expected_accepted(p, best.0, best.1);
        for width in 2..=widest {
            let depth = self.depth_for(width);
            let value = Self::expected_accepted(p, width, depth);
            if value > best_value + 1e-12 {
                best_value = value;
                best = (width, depth);
            }
        }
        best
    }

    /// Records one verification round's outcome: `accepted` path length out
    /// of a tree spanning `span` positions.
    pub fn observe(&mut self, accepted: usize, span: usize) {
        if span == 0 {
            return;
        }
        self.history.push_back((accepted, accepted < span));
        while self.history.len() > self.config.window.max(1) {
            self.history.pop_front();
        }
    }
}

/// Cross-request acceptance feedback shared through the strategy: each
/// finished request contributes its lifetime depth utilization, and new
/// requests start their controller from the running mean.
#[derive(Debug, Default)]
struct ShapeFeedback {
    sum: f64,
    n: u64,
}

impl ShapeFeedback {
    fn prior(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }

    fn push(&mut self, estimate: f64) {
        self.sum += estimate;
        self.n += 1;
    }
}

/// Length of the accepted path's prefix that lies on the tree's primary
/// spine (the first root and its first-child chain — the branch the greedy
/// draft proposed).
pub(crate) fn spine_prefix_len(tree: &TokenTree, accepted_path: &[usize]) -> usize {
    let mut expected = tree.roots().first().copied();
    let mut n = 0;
    for &id in accepted_path {
        if Some(id) != expected {
            break;
        }
        n += 1;
        expected = tree.nodes()[id].children.first().copied();
    }
    n
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prompt,
    Verifying,
    Done,
}

/// One in-flight tree-verification run.
struct InFlight {
    run_id: RunId,
    /// The speculated tree (empty when the drafter produced nothing and only
    /// the pending token is being evaluated).
    tree: TokenTree,
    /// The dispatched batch: `[pending] ++ tree` in parent-before-child
    /// order.
    batch: Batch,
    /// Batch-index parent links matching `batch`.
    parents: Vec<Option<usize>>,
    /// Per-node sequence sets from `TokenTree::assign_sequences`.
    node_seqs: Vec<Vec<SeqId>>,
    /// Number of leaf sequences the tree occupies.
    n_leaves: usize,
}

/// Head rank of the tree-speculation strategy.
///
/// Synchronous like [`crate::speculative::SpeculativeHead`] — one
/// draft-verify round at a time — but each round verifies a whole token
/// tree and keeps only the deepest accepted path.
pub struct TreeSpecHead {
    route: PipelineRoute,
    engine: Box<dyn HeadEngine>,
    drafter: Box<dyn Drafter>,
    config: GenConfig,
    shape: AdaptiveShape,
    phase: Phase,
    /// Evaluated, accepted tokens (prompt included).
    context: Vec<Token>,
    /// Leading prompt tokens already resident in every stage's KV cache (via
    /// a shared page pool); prefill covers only the remaining suffix.
    prompt_cached: usize,
    /// Sampled but not yet evaluated token.
    pending: Token,
    in_flight: Option<InFlight>,
    next_run_id: RunId,
    record: GenerationRecord,
    output: RecordHandle,
    feedback: Option<Arc<Mutex<ShapeFeedback>>>,
    /// Lifetime accepted tokens and rejection events feeding the shared
    /// prior (same geometric estimator as [`AdaptiveShape`]).
    total_accepted: usize,
    total_rejections: usize,
    finished: bool,
}

impl TreeSpecHead {
    /// Creates the head rank.  `prior` seeds the adaptive controller (see
    /// [`AdaptiveShape::new`]); the final record is written to `output`.
    pub fn new(
        route: PipelineRoute,
        engine: Box<dyn HeadEngine>,
        drafter: Box<dyn Drafter>,
        config: GenConfig,
        tree_config: TreeConfig,
        prior: f64,
        output: RecordHandle,
    ) -> Self {
        let shape = AdaptiveShape::new(tree_config, config.max_draft, prior);
        Self {
            route,
            engine,
            drafter,
            config,
            shape,
            phase: Phase::Prompt,
            context: Vec::new(),
            prompt_cached: 0,
            pending: 0,
            in_flight: None,
            next_run_id: 0,
            record: GenerationRecord::default(),
            output,
            feedback: None,
            total_accepted: 0,
            total_rejections: 0,
            finished: false,
        }
    }

    fn with_feedback(mut self, feedback: Arc<Mutex<ShapeFeedback>>) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Declares that the leading `n` prompt tokens are already resident in
    /// every stage's KV cache, so prefill starts at position `n`.  Clamped to
    /// leave at least the final prompt token for live evaluation.
    pub fn with_prompt_cached(mut self, n: usize) -> Self {
        self.prompt_cached = n;
        self
    }

    /// The record accumulated so far.
    pub fn record(&self) -> &GenerationRecord {
        &self.record
    }

    /// The adaptive controller (exposed for tests).
    pub fn controller(&self) -> &AdaptiveShape {
        &self.shape
    }

    fn send_downstream(&self, ctx: &mut dyn NodeCtx<PipeMsg>, tag: Tag, msg: PipeMsg) {
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tag, msg);
        }
    }

    fn send_cache_op(&mut self, op: CacheOp, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let cost = self.engine.apply_cache_op(&op);
        ctx.elapse(cost);
        self.send_downstream(ctx, tags::CACHE, PipeMsg::Cache(op));
    }

    fn launch(
        &mut self,
        batch: Batch,
        kind: RunKind,
        in_flight: InFlight,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        self.record.runs_launched += 1;
        let (payload, cost) = self.engine.eval_first_stage(&batch);
        ctx.elapse(cost);
        let run_id = in_flight.run_id;
        let topology = (!in_flight.tree.is_empty()).then(|| TreeTopology {
            parents: in_flight
                .parents
                .iter()
                .map(|p| p.map(|i| i as u32))
                .collect(),
        });
        self.in_flight = Some(in_flight);
        if self.route.n_stages() > 1 {
            self.send_downstream(
                ctx,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind,
                    batch,
                    payload,
                    tree: topology,
                },
            );
        } else {
            self.handle_result(run_id, payload, ctx);
        }
    }

    /// Drafts a tree and launches the verification batch `[pending] ++ tree`.
    fn speculate_and_launch(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let (width, depth) = self.shape.shape();
        self.record.tree_shapes.push((width, depth));
        let (tree, draft_cost) = self.drafter.draft_tree(
            &self.context,
            &[self.pending],
            width,
            depth,
            self.config.confidence_cutoff,
        );
        ctx.elapse(draft_cost);
        self.record.tree_rounds += 1;
        self.record.drafted += tree.len();
        self.record.tree_nodes += tree.len();

        let base = self.context.len() as Pos;
        let node_seqs = tree.assign_sequences(FIRST_TREE_SEQ);
        let n_leaves = tree.n_sequences();

        // Every branch sequence receives the canonical context prefix before
        // any tree cell is allocated, so branch tokens can attend to it.
        for leaf in 0..n_leaves as SeqId {
            self.send_cache_op(
                CacheOp::SeqCp {
                    src: 0,
                    dst: FIRST_TREE_SEQ + leaf,
                    p0: 0,
                    p1: Pos::MAX,
                },
                ctx,
            );
        }

        // The pending token belongs to the canonical sequence *and* to every
        // branch (it is their shared parent); tree nodes carry the sequence
        // sets that encode the tree attention mask.
        let mut batch = Batch::new();
        let mut pending_seqs = vec![0];
        pending_seqs.extend((0..n_leaves as SeqId).map(|l| FIRST_TREE_SEQ + l));
        batch.push(self.pending, base, pending_seqs, true);
        let mut parents: Vec<Option<usize>> = vec![None];
        for (id, node) in tree.nodes().iter().enumerate() {
            batch.push(
                node.token,
                base + 1 + node.depth as Pos,
                node_seqs[id].clone(),
                true,
            );
            parents.push(Some(node.parent.map(|p| p + 1).unwrap_or(0)));
        }

        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let in_flight = InFlight {
            run_id,
            tree,
            batch: batch.clone(),
            parents,
            node_seqs,
            n_leaves,
        };
        self.launch(batch, RunKind::Speculative, in_flight, ctx);
    }

    fn handle_result(
        &mut self,
        run_id: RunId,
        payload: ActivationPayload,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let Some(info) = self.in_flight.take() else {
            return;
        };
        debug_assert_eq!(info.run_id, run_id);
        match self.phase {
            Phase::Prompt => {
                let (greedy, cost) = self.engine.finalize(&info.batch, &payload, &self.context);
                ctx.elapse(cost);
                self.record.prompt_done_at = ctx.now();
                self.pending = *greedy.last().expect("prompt batch is non-empty");
                self.context.extend(info.batch.tokens());
                self.phase = Phase::Verifying;
                self.speculate_and_launch(ctx);
            }
            Phase::Verifying => {
                let (greedy, cost) =
                    self.engine
                        .finalize_tree(&info.batch, &payload, &self.context, &info.parents);
                ctx.elapse(cost);
                let outcome = verify_tree(&info.tree, &greedy);
                let n_accepted = outcome.n_accepted();
                self.record.accepted_drafts += n_accepted;
                self.record.tree_accepted_path += n_accepted;
                // The acceptance estimate tracks the *primary* branch: a
                // round rescued by a runner-up still rejected the primary
                // candidate, and must count as such or the estimator drifts
                // optimistic and the shape oscillates back to a pure chain.
                let spine_accepted = spine_prefix_len(&info.tree, &outcome.accepted_path);
                self.total_accepted += spine_accepted;
                if spine_accepted < info.tree.span() {
                    self.total_rejections += 1;
                }
                self.shape.observe(spine_accepted, info.tree.span());

                // The pending token and the accepted path become evaluated
                // context; path + the new pending token are the generated
                // tokens of this round.
                let base = self.context.len() as Pos;
                self.context.push(self.pending);
                for tok in &outcome.accepted {
                    self.context.push(*tok);
                    self.record.tokens.push(*tok);
                    self.record.accept_times.push(ctx.now());
                }
                self.record.tokens.push(outcome.pending);
                self.record.accept_times.push(ctx.now());

                // Retain only the accepted path in every stage's KV cache.
                if info.n_leaves > 0 {
                    let op = if n_accepted > 0 {
                        let deepest = *outcome.accepted_path.last().unwrap();
                        CacheOp::BranchCommit {
                            dst: 0,
                            path: info.node_seqs[deepest][0],
                            first: FIRST_TREE_SEQ,
                            n_seqs: info.n_leaves as u32,
                            p0: base + 1,
                            p1: base + 1 + n_accepted as Pos,
                        }
                    } else {
                        CacheOp::BranchRollback {
                            first: FIRST_TREE_SEQ,
                            n_seqs: info.n_leaves as u32,
                        }
                    };
                    self.send_cache_op(op, ctx);
                }

                self.pending = outcome.pending;
                if self.record.tokens.len() >= self.config.n_generate {
                    self.finish(ctx);
                } else {
                    self.speculate_and_launch(ctx);
                }
            }
            Phase::Done => {}
        }
    }

    fn finish(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.phase = Phase::Done;
        self.record.finished_at = ctx.now();
        record_kv_events(self.engine.take_kv_events(), ctx);
        self.send_downstream(ctx, tags::SHUTDOWN, PipeMsg::Shutdown);
        let observations = self.total_accepted + self.total_rejections;
        if let (Some(feedback), true) = (&self.feedback, observations > 0) {
            feedback
                .lock()
                .unwrap()
                .push(self.total_accepted as f64 / observations as f64);
        }
        *self.output.lock().unwrap() = Some(self.record.clone());
        self.finished = true;
    }
}

impl NodeBehavior<PipeMsg> for TreeSpecHead {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let prompt = self.config.prompt.clone();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let cached = self.prompt_cached.min(prompt.len() - 1);
        self.context.extend_from_slice(&prompt[..cached]);
        let batch = Batch::prompt(&prompt[cached..], cached as Pos, 0);
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let in_flight = InFlight {
            run_id,
            tree: TokenTree::new(),
            batch: batch.clone(),
            parents: Vec::new(),
            node_seqs: Vec::new(),
            n_leaves: 0,
        };
        self.launch(batch, RunKind::NonSpeculative, in_flight, ctx);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let PipeMsg::RunResult { run_id, payload } = msg {
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Tree speculation through the `Deployment` seam: SpecInfer-style
/// synchronous rounds whose unit is a [`TokenTree`] with adaptive
/// width/depth, verified in one batched pipeline pass at the same
/// verify-batch budget as [`crate::SpeculativeStrategy`]
/// (`GenConfig::max_draft` nodes per round).
///
/// The strategy keeps a shared acceptance prior across every head it builds:
/// requests served over one `PreparedDeployment` feed their lifetime
/// acceptance back, so later requests start at the learned shape.  Token
/// streams stay deterministic regardless (verification always reproduces the
/// target's greedy continuation); only shape and therefore speed metrics
/// respond to the feedback, and under concurrent serving the feedback order
/// follows the scheduler's completion order.
#[derive(Debug, Clone, Default)]
pub struct TreeSpeculationStrategy {
    config: TreeConfig,
    feedback: Arc<Mutex<ShapeFeedback>>,
}

impl TreeSpeculationStrategy {
    /// Creates the strategy with explicit tree knobs.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            feedback: Arc::default(),
        }
    }

    /// The configured tree knobs.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// The cross-request acceptance prior learned so far, if any request has
    /// completed (exposed for tests and serving diagnostics).
    pub fn learned_prior(&self) -> Option<f64> {
        self.feedback.lock().unwrap().prior()
    }
}

impl Strategy for TreeSpeculationStrategy {
    fn name(&self) -> &'static str {
        "TreeSpeculation"
    }

    fn needs_drafter(&self) -> bool {
        true
    }

    fn step_profile(&self) -> crate::deploy::StepProfile {
        crate::deploy::StepProfile::Tree(self.config)
    }

    fn build_head(&self, mut parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
        let drafter = parts.take_drafter();
        let prior = self.learned_prior().unwrap_or(DEFAULT_PRIOR);
        Box::new(
            TreeSpecHead::new(
                parts.route,
                parts.engine,
                drafter,
                parts.gen_config,
                self.config,
                prior,
                parts.record,
            )
            .with_feedback(Arc::clone(&self.feedback))
            .with_prompt_cached(parts.prompt_cached),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{Deployment, ExecutionMode, SpeculativeStrategy};
    use pi_model::{Model, ModelConfig, OracleTarget};
    use pi_perf::{ClusterSpec, ModelPair};

    fn sim_mode(n_nodes: usize, pair: ModelPair) -> ExecutionMode {
        ExecutionMode::Sim {
            pair,
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    fn config(n_generate: usize) -> GenConfig {
        GenConfig {
            prompt: vec![9; 12],
            n_generate,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        }
    }

    #[test]
    fn adaptive_shape_trades_width_for_depth_within_budget() {
        let cfg = TreeConfig::default();
        let mut shape = AdaptiveShape::new(cfg, 4, 0.9);
        // High acceptance: pure chain at full depth.
        assert_eq!(shape.shape(), (1, 4));
        // Sustained rejection widens, shallower.
        for _ in 0..8 {
            shape.observe(0, 4);
        }
        let (w, d) = shape.shape();
        assert!(w > 1, "width must grow under rejection, got {w}");
        assert_eq!(d + w - 1, 4, "budget must be preserved");
        // Recovery narrows again.
        for _ in 0..8 {
            shape.observe(4, 4);
        }
        assert_eq!(shape.shape(), (1, 4));
    }

    #[test]
    fn adaptive_shape_respects_caps() {
        let cfg = TreeConfig {
            max_width: 2,
            max_depth: 3,
            window: 4,
        };
        let mut shape = AdaptiveShape::new(cfg, 8, 0.0);
        for _ in 0..4 {
            shape.observe(0, 4);
        }
        let (w, d) = shape.shape();
        assert_eq!(w, 2, "width capped");
        assert_eq!(d, 3, "depth capped");
        // Window really slides: old rejections age out and the estimate
        // recovers toward the observed acceptances.
        let before = shape.estimate();
        for _ in 0..4 {
            shape.observe(4, 4);
        }
        assert!(shape.estimate() > before + 0.3);
    }

    #[test]
    fn tree_output_matches_oracle_continuation_in_sim_mode() {
        // Whatever shape the controller picks, the token stream must be the
        // target's greedy continuation — for every alignment.
        for pair in [ModelPair::dolphin_tinyllama(), ModelPair::goliath_xwin7b()] {
            let cfg = config(24);
            let out = Deployment::new(TreeSpeculationStrategy::default()).run(
                &sim_mode(4, pair.clone()),
                4,
                &cfg,
            );
            assert!(out.completed, "{}", pair.name);
            let oracle = OracleTarget::new(42, pair.target.cfg.vocab_size as u32);
            let truth = oracle.generate(&cfg.prompt, 30);
            assert_eq!(
                out.record.tokens[..24].to_vec(),
                truth[1..25].to_vec(),
                "{}: tree speculation must preserve greedy output",
                pair.name
            );
            assert!(out.record.tree_rounds > 0);
            assert_eq!(out.record.tree_shapes.len(), out.record.tree_rounds);
        }
    }

    #[test]
    fn tree_matches_linear_speculation_token_stream() {
        let cfg = config(32);
        let mode = sim_mode(4, ModelPair::goliath_xwin7b());
        let tree = Deployment::new(TreeSpeculationStrategy::default()).run(&mode, 4, &cfg);
        let linear = Deployment::new(SpeculativeStrategy).run(&mode, 4, &cfg);
        assert_eq!(
            tree.record.tokens[..32],
            linear.record.tokens[..32],
            "same oracle seed ⇒ same greedy stream"
        );
    }

    #[test]
    fn degenerate_width_one_reproduces_linear_round_structure() {
        // max_width 1 forces chains; the tree head must then verify exactly
        // the chains the linear baseline verifies: same tokens, same number
        // of pipeline runs, same per-round acceptance.
        let cfg = config(24);
        let mode = sim_mode(4, ModelPair::dolphin_tinyllama());
        let narrow = TreeSpeculationStrategy::new(TreeConfig {
            max_width: 1,
            max_depth: 8,
            window: 8,
        });
        let tree = Deployment::new(narrow).run(&mode, 4, &cfg);
        let linear = Deployment::new(SpeculativeStrategy).run(&mode, 4, &cfg);
        assert_eq!(tree.record.tokens, linear.record.tokens);
        assert_eq!(tree.record.runs_launched, linear.record.runs_launched);
        assert_eq!(tree.record.drafted, linear.record.drafted);
        assert_eq!(tree.record.accepted_drafts, linear.record.accepted_drafts);
    }

    #[test]
    fn low_alignment_beats_linear_accepted_per_verify_at_equal_budget() {
        // Goliath + XWin-7B (52 % acceptance): the top-1 chain misses often
        // enough that hedging with runner-up branches wins.
        let cfg = config(48);
        let mode = sim_mode(4, ModelPair::goliath_xwin7b());
        let tree = Deployment::new(TreeSpeculationStrategy::default()).run(&mode, 4, &cfg);
        let linear = Deployment::new(SpeculativeStrategy).run(&mode, 4, &cfg);
        assert!(
            tree.record.tokens_per_run() > linear.record.tokens_per_run(),
            "tree {} <= linear {}",
            tree.record.tokens_per_run(),
            linear.record.tokens_per_run()
        );
        // And it genuinely used wider-than-chain trees to get there.
        assert!(tree.record.tree_shapes.iter().any(|&(w, _)| w > 1));
        assert!(tree.record.tree_utilization() > 0.0);
    }

    #[test]
    fn feedback_prior_is_learned_across_requests() {
        let strategy = TreeSpeculationStrategy::default();
        assert_eq!(strategy.learned_prior(), None);
        let deployment = Deployment::new(strategy.clone());
        let _ = deployment.run(&sim_mode(4, ModelPair::goliath_xwin7b()), 4, &config(16));
        let learned = strategy
            .learned_prior()
            .expect("a finished request must feed the prior");
        assert!((0.0..=1.0).contains(&learned));
        // The 52 %-acceptance pair must teach a prior below the optimistic
        // default, so later requests start from the evidence, not the guess.
        assert!(learned < DEFAULT_PRIOR, "learned prior {learned}");
        // A second request folds into the running mean.
        let _ = deployment.run(&sim_mode(4, ModelPair::goliath_xwin7b()), 4, &config(16));
        let second = strategy.learned_prior().unwrap();
        assert!((0.0..=1.0).contains(&second));
    }

    #[test]
    fn tree_runs_end_to_end_on_the_threaded_driver() {
        let model_cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(model_cfg.clone(), 17));
        let draft = Arc::new(Model::new(model_cfg, target.weights().perturbed(0.02, 18)));
        let mode = ExecutionMode::Real { target, draft };
        let cfg = GenConfig::small_test(vec![3, 1, 4, 1, 5], 12);
        let tree = Deployment::new(TreeSpeculationStrategy::default()).run(&mode, 2, &cfg);
        let linear = Deployment::new(SpeculativeStrategy).run(&mode, 2, &cfg);
        assert!(tree.completed && linear.completed);
        assert_eq!(
            tree.record.tokens, linear.record.tokens,
            "real-mode tree and linear speculation must agree token-for-token"
        );
    }
}
