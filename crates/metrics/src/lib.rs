//! # pi-metrics
//!
//! Measurement summaries and report rendering for the PipeInfer evaluation
//! harness: repeated-run statistics (the paper averages each experiment over
//! ten runs), metric series keyed by (strategy, node count), and plain-text
//! table rendering used by the figure benches.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics over repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`; returns a zeroed summary for
    /// an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// A single measured data point of a figure: one strategy/variant evaluated
/// at one x-axis position (node count, model pair, prompt, …).
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Series label (e.g. `"PipeInfer (TinyLlama)"`).
    pub series: String,
    /// X-axis label (e.g. `"8 Node"`).
    pub x: String,
    /// Measured value (e.g. tokens/second).
    pub value: f64,
}

/// A figure or table being reproduced: a set of series sampled at common
/// x-axis positions.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    /// Figure identifier, e.g. `"Fig. 4a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Unit of the measured values, e.g. `"tokens/s"`.
    pub unit: String,
    points: Vec<DataPoint>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            points: Vec::new(),
        }
    }

    /// Adds one data point.
    pub fn push(&mut self, series: &str, x: &str, value: f64) {
        self.points.push(DataPoint {
            series: series.to_string(),
            x: x.to_string(),
            value,
        });
    }

    /// All data points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// The value of `series` at `x`, if present.
    pub fn value(&self, series: &str, x: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.series == series && p.x == x)
            .map(|p| p.value)
    }

    /// Distinct x-axis labels, in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.x) {
                out.push(p.x.clone());
            }
        }
        out
    }

    /// Distinct series labels, in first-appearance order.
    pub fn series_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.series) {
                out.push(p.series.clone());
            }
        }
        out
    }

    /// Ratio between two series at the same x position, if both exist.
    pub fn ratio(&self, numerator: &str, denominator: &str, x: &str) -> Option<f64> {
        let a = self.value(numerator, x)?;
        let b = self.value(denominator, x)?;
        if b == 0.0 {
            None
        } else {
            Some(a / b)
        }
    }

    /// Renders the figure as a plain-text table: one row per series, one
    /// column per x label — the same layout the paper's bar charts encode.
    pub fn render(&self) -> String {
        let xs = self.x_labels();
        let series = self.series_labels();
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ({}) ===", self.id, self.title, self.unit);
        let name_w = series
            .iter()
            .map(|s| s.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let _ = write!(out, "{:name_w$}", "");
        for x in &xs {
            let _ = write!(out, " | {x:>12}");
        }
        let _ = writeln!(out);
        for s in &series {
            let _ = write!(out, "{s:name_w$}");
            for x in &xs {
                match self.value(s, x) {
                    Some(v) => {
                        let _ = write!(out, " | {v:>12.3}");
                    }
                    None => {
                        let _ = write!(out, " | {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV (`series,x,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,value\n");
        for p in &self.points {
            let _ = writeln!(out, "{},{},{}", p.series, p.x, p.value);
        }
        out
    }
}

/// A collection of figures, keyed by figure id, rendered together by the
/// bench harness and EXPERIMENTS.md generator.
#[derive(Debug, Clone, Default)]
pub struct Report {
    figures: BTreeMap<String, Figure>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a figure.
    pub fn insert(&mut self, figure: Figure) {
        self.figures.insert(figure.id.clone(), figure);
    }

    /// Gets a figure by id.
    pub fn figure(&self, id: &str) -> Option<&Figure> {
        self.figures.get(id)
    }

    /// Number of figures.
    pub fn len(&self) -> usize {
        self.figures.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.figures.is_empty()
    }

    /// Renders every figure in id order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fig in self.figures.values() {
            out.push_str(&fig.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.29099).abs() < 1e-4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_edge_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.mean, 7.0);
    }

    fn sample_figure() -> Figure {
        let mut f = Figure::new("Fig. 4a", "Dolphin-70B generation speed", "tokens/s");
        f.push("Iterative", "4 Node", 1.5);
        f.push("Speculative", "4 Node", 3.0);
        f.push("PipeInfer", "4 Node", 4.0);
        f.push("Iterative", "8 Node", 1.5);
        f.push("PipeInfer", "8 Node", 4.5);
        f
    }

    #[test]
    fn figure_lookup_and_labels() {
        let f = sample_figure();
        assert_eq!(f.value("PipeInfer", "4 Node"), Some(4.0));
        assert_eq!(f.value("PipeInfer", "64 Node"), None);
        assert_eq!(f.x_labels(), vec!["4 Node", "8 Node"]);
        assert_eq!(
            f.series_labels(),
            vec!["Iterative", "Speculative", "PipeInfer"]
        );
    }

    #[test]
    fn figure_ratio() {
        let f = sample_figure();
        let r = f.ratio("PipeInfer", "Iterative", "4 Node").unwrap();
        assert!((r - 4.0 / 1.5).abs() < 1e-12);
        assert_eq!(f.ratio("PipeInfer", "Missing", "4 Node"), None);
    }

    #[test]
    fn figure_render_contains_all_series_and_columns() {
        let f = sample_figure();
        let text = f.render();
        assert!(text.contains("Fig. 4a"));
        assert!(text.contains("tokens/s"));
        assert!(text.contains("PipeInfer"));
        assert!(text.contains("8 Node"));
        // Missing combination rendered as "-".
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_roundtrips_points() {
        let f = sample_figure();
        let csv = f.to_csv();
        assert!(csv.starts_with("series,x,value"));
        assert_eq!(csv.lines().count(), 1 + f.points().len());
        assert!(csv.contains("PipeInfer,8 Node,4.5"));
    }

    #[test]
    fn report_collects_figures_in_order() {
        let mut r = Report::new();
        assert!(r.is_empty());
        r.insert(sample_figure());
        let mut f2 = Figure::new("Fig. 5a", "TTFT", "s");
        f2.push("Iterative", "4 Node", 0.8);
        r.insert(f2);
        assert_eq!(r.len(), 2);
        assert!(r.figure("Fig. 4a").is_some());
        let rendered = r.render();
        let pos4 = rendered.find("Fig. 4a").unwrap();
        let pos5 = rendered.find("Fig. 5a").unwrap();
        assert!(pos4 < pos5);
    }
}
