//! # pi-metrics
//!
//! Measurement summaries and report rendering for the PipeInfer evaluation
//! harness: repeated-run statistics (the paper averages each experiment over
//! ten runs), metric series keyed by (strategy, node count), and plain-text
//! table rendering used by the figure benches.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact percentile of a sample set with linear interpolation between order
/// statistics (the "linear" / type-7 estimator most tools default to).
///
/// `q` is the quantile in `[0, 1]` (`0.5` = median).  Returns `0.0` for an
/// empty slice so degenerate series render as zeros rather than panicking.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, q)
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics over repeated measurements.
///
/// Besides the classic moments this carries the latency percentiles the
/// serving harness reports per request stream (`p50`/`p95`/`p99`); for fewer
/// samples than a percentile can resolve the estimator degrades gracefully
/// toward the maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`; returns a zeroed summary for
    /// an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }
}

/// A fixed-bucket histogram over a closed value range.
///
/// The serving harness records one sample per request (TTFT, inter-token
/// latency, end-to-end latency), so a small fixed-bucket histogram is enough.
/// Out-of-range samples are **not** silently folded into the edge buckets:
/// they are tallied as explicit [`Histogram::underflow`]/[`Histogram::overflow`]
/// counts, excluded from bucket interpolation (an underflow pins the low
/// percentiles at `lo`, an overflow pins the high ones at `hi`, instead of
/// inventing in-range mass), and flagged by [`Histogram::render`].  For
/// exact percentiles over retained samples use [`percentile`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `n_buckets` equal-width buckets over
    /// `[lo, hi]`.  Panics if the range is empty or `n_buckets` is zero.
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(lo < hi, "histogram range [{lo}, {hi}] is empty");
        assert!(n_buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            counts: vec![0; n_buckets],
            total: 0,
            sum: 0.0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.  Values outside `[lo, hi]` are counted as
    /// underflow/overflow rather than entering a bucket.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value > self.hi {
            self.overflow += 1;
            return;
        }
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let idx = (((value - self.lo) / width).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Records every sample of a slice.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (exact, not bucketed), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bucket counts, lowest bucket first.  Excludes clipped samples.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of recorded samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of recorded samples above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of recorded samples outside `[lo, hi]` (underflow + overflow).
    pub fn clipped(&self) -> u64 {
        self.underflow + self.overflow
    }

    /// The value range `[start, end)` covered by bucket `idx` (the last
    /// bucket is closed at `hi`).
    pub fn bucket_range(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + idx as f64 * width,
            self.lo + (idx + 1) as f64 * width,
        )
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by walking the cumulative
    /// bucket counts and interpolating linearly inside the winning bucket.
    /// Clipped samples participate in the cumulative rank but never in the
    /// interpolation: a quantile falling among the underflow reports `lo`,
    /// one falling among the overflow reports `hi`.  Returns 0 when the
    /// histogram is empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        if target <= self.underflow as f64 && self.underflow > 0 {
            return self.lo;
        }
        let mut cumulative = self.underflow;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if next as f64 >= target {
                let (start, end) = self.bucket_range(idx);
                let within = ((target - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                return start + within * (end - start);
            }
            cumulative = next;
        }
        self.hi
    }

    /// Renders the histogram as an ASCII bar chart, one line per non-empty
    /// bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (start, end) = self.bucket_range(idx);
            let bar = "#".repeat((c * 40).div_ceil(max) as usize);
            let _ = writeln!(out, "[{start:>9.4}, {end:>9.4}) {c:>6} {bar}");
        }
        if self.clipped() > 0 {
            let _ = writeln!(
                out,
                "warning: {} sample(s) outside [{:.4}, {:.4}] excluded from buckets \
                 ({} below, {} above)",
                self.clipped(),
                self.lo,
                self.hi,
                self.underflow,
                self.overflow,
            );
        }
        out
    }
}

/// A single measured data point of a figure: one strategy/variant evaluated
/// at one x-axis position (node count, model pair, prompt, …).
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Series label (e.g. `"PipeInfer (TinyLlama)"`).
    pub series: String,
    /// X-axis label (e.g. `"8 Node"`).
    pub x: String,
    /// Measured value (e.g. tokens/second).
    pub value: f64,
}

/// A figure or table being reproduced: a set of series sampled at common
/// x-axis positions.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    /// Figure identifier, e.g. `"Fig. 4a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Unit of the measured values, e.g. `"tokens/s"`.
    pub unit: String,
    points: Vec<DataPoint>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            points: Vec::new(),
        }
    }

    /// Adds one data point.
    pub fn push(&mut self, series: &str, x: &str, value: f64) {
        self.points.push(DataPoint {
            series: series.to_string(),
            x: x.to_string(),
            value,
        });
    }

    /// All data points.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// The value of `series` at `x`, if present.
    pub fn value(&self, series: &str, x: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.series == series && p.x == x)
            .map(|p| p.value)
    }

    /// Distinct x-axis labels, in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.x) {
                out.push(p.x.clone());
            }
        }
        out
    }

    /// Distinct series labels, in first-appearance order.
    pub fn series_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.series) {
                out.push(p.series.clone());
            }
        }
        out
    }

    /// Ratio between two series at the same x position, if both exist.
    pub fn ratio(&self, numerator: &str, denominator: &str, x: &str) -> Option<f64> {
        let a = self.value(numerator, x)?;
        let b = self.value(denominator, x)?;
        if b == 0.0 {
            None
        } else {
            Some(a / b)
        }
    }

    /// Renders the figure as a plain-text table: one row per series, one
    /// column per x label — the same layout the paper's bar charts encode.
    pub fn render(&self) -> String {
        let xs = self.x_labels();
        let series = self.series_labels();
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ({}) ===", self.id, self.title, self.unit);
        let name_w = series
            .iter()
            .map(|s| s.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let _ = write!(out, "{:name_w$}", "");
        for x in &xs {
            let _ = write!(out, " | {x:>12}");
        }
        let _ = writeln!(out);
        for s in &series {
            let _ = write!(out, "{s:name_w$}");
            for x in &xs {
                match self.value(s, x) {
                    Some(v) => {
                        let _ = write!(out, " | {v:>12.3}");
                    }
                    None => {
                        let _ = write!(out, " | {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV (`series,x,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,value\n");
        for p in &self.points {
            let _ = writeln!(out, "{},{},{}", p.series, p.x, p.value);
        }
        out
    }
}

/// A collection of figures, keyed by figure id, rendered together by the
/// bench harness and EXPERIMENTS.md generator.
#[derive(Debug, Clone, Default)]
pub struct Report {
    figures: BTreeMap<String, Figure>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a figure.
    pub fn insert(&mut self, figure: Figure) {
        self.figures.insert(figure.id.clone(), figure);
    }

    /// Gets a figure by id.
    pub fn figure(&self, id: &str) -> Option<&Figure> {
        self.figures.get(id)
    }

    /// Number of figures.
    pub fn len(&self) -> usize {
        self.figures.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.figures.is_empty()
    }

    /// Renders every figure in id order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fig in self.figures.values() {
            out.push_str(&fig.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.29099).abs() < 1e-4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_edge_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.p99, 0.0);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p99, 7.0);
    }

    #[test]
    fn percentiles_interpolate_linearly() {
        // 1..=100: p50 sits between the 50th and 51st order statistics.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&samples, 0.50) - 50.5).abs() < 1e-12);
        assert!((percentile(&samples, 0.95) - 95.05).abs() < 1e-9);
        assert!((percentile(&samples, 0.99) - 99.01).abs() < 1e-9);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        // Order must not matter.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(percentile(&reversed, 0.95), percentile(&samples, 0.95));
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_percentiles_match_free_function() {
        let samples: Vec<f64> = (0..37).map(|i| (i as f64 * 1.7).sin() * 10.0).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.p50, percentile(&samples, 0.50));
        assert_eq!(s.p95, percentile(&samples, 0.95));
        assert_eq!(s.p99, percentile(&samples, 0.99));
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn histogram_counts_and_tracks_clipped_samples() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all(&[0.5, 1.5, 1.6, 9.99]);
        h.record(-3.0); // below range: counted as underflow, not bucket 0
        h.record(42.0); // above range: counted as overflow, not bucket 9
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 2);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.clipped(), 2);
        assert_eq!(h.bucket_range(1), (1.0, 2.0));
    }

    #[test]
    fn histogram_percentile_excludes_clipped_mass_from_interpolation() {
        // 5 underflow, 5 in-range (bucket [4,5)), 5 overflow.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..5 {
            h.record(-1.0);
        }
        for _ in 0..5 {
            h.record(4.5);
        }
        for _ in 0..5 {
            h.record(99.0);
        }
        // Low quantiles fall among the underflow: pinned at lo, not
        // interpolated inside bucket 0 (the old clamping behavior).
        assert_eq!(h.percentile(0.1), 0.0);
        // Mid quantiles interpolate inside the real bucket.
        let p50 = h.percentile(0.5);
        assert!((4.0..5.0).contains(&p50), "p50 = {p50}");
        // High quantiles fall among the overflow: pinned at hi.
        assert_eq!(h.percentile(0.99), 10.0);
    }

    #[test]
    fn histogram_render_warns_about_clipped_samples() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record_all(&[0.1, 0.6]);
        assert!(!h.render().contains("warning"), "no clipping, no warning");
        h.record(7.0);
        let text = h.render();
        assert!(text.contains("warning: 1 sample(s) outside [0.0000, 1.0000]"));
        assert!(text.contains("(0 below, 1 above)"));
    }

    #[test]
    fn histogram_percentile_tracks_exact_percentile() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 / 10.0).collect();
        let mut h = Histogram::new(0.0, 10.0, 200);
        h.record_all(&samples);
        for q in [0.5, 0.95, 0.99] {
            let exact = percentile(&samples, q);
            let approx = h.percentile(q);
            assert!(
                (exact - approx).abs() < 0.1,
                "q={q}: exact {exact} vs histogram {approx}"
            );
        }
        assert_eq!(Histogram::new(0.0, 1.0, 4).percentile(0.5), 0.0);
    }

    #[test]
    fn histogram_mean_is_exact_and_render_shows_buckets() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_all(&[0.5, 1.5, 2.5, 3.5]);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        let text = h.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
        assert_eq!(Histogram::new(0.0, 1.0, 2).mean(), 0.0);
    }

    fn sample_figure() -> Figure {
        let mut f = Figure::new("Fig. 4a", "Dolphin-70B generation speed", "tokens/s");
        f.push("Iterative", "4 Node", 1.5);
        f.push("Speculative", "4 Node", 3.0);
        f.push("PipeInfer", "4 Node", 4.0);
        f.push("Iterative", "8 Node", 1.5);
        f.push("PipeInfer", "8 Node", 4.5);
        f
    }

    #[test]
    fn figure_lookup_and_labels() {
        let f = sample_figure();
        assert_eq!(f.value("PipeInfer", "4 Node"), Some(4.0));
        assert_eq!(f.value("PipeInfer", "64 Node"), None);
        assert_eq!(f.x_labels(), vec!["4 Node", "8 Node"]);
        assert_eq!(
            f.series_labels(),
            vec!["Iterative", "Speculative", "PipeInfer"]
        );
    }

    #[test]
    fn figure_ratio() {
        let f = sample_figure();
        let r = f.ratio("PipeInfer", "Iterative", "4 Node").unwrap();
        assert!((r - 4.0 / 1.5).abs() < 1e-12);
        assert_eq!(f.ratio("PipeInfer", "Missing", "4 Node"), None);
    }

    #[test]
    fn figure_render_contains_all_series_and_columns() {
        let f = sample_figure();
        let text = f.render();
        assert!(text.contains("Fig. 4a"));
        assert!(text.contains("tokens/s"));
        assert!(text.contains("PipeInfer"));
        assert!(text.contains("8 Node"));
        // Missing combination rendered as "-".
        assert!(text.contains('-'));
    }

    #[test]
    fn csv_roundtrips_points() {
        let f = sample_figure();
        let csv = f.to_csv();
        assert!(csv.starts_with("series,x,value"));
        assert_eq!(csv.lines().count(), 1 + f.points().len());
        assert!(csv.contains("PipeInfer,8 Node,4.5"));
    }

    #[test]
    fn report_collects_figures_in_order() {
        let mut r = Report::new();
        assert!(r.is_empty());
        r.insert(sample_figure());
        let mut f2 = Figure::new("Fig. 5a", "TTFT", "s");
        f2.push("Iterative", "4 Node", 0.8);
        r.insert(f2);
        assert_eq!(r.len(), 2);
        assert!(r.figure("Fig. 4a").is_some());
        let rendered = r.render();
        let pos4 = rendered.find("Fig. 4a").unwrap();
        let pos5 = rendered.find("Fig. 5a").unwrap();
        assert!(pos4 < pos5);
    }
}
