//! Decoder-only transformer forward pass with layer-range evaluation.
//!
//! Pipeline parallelism splits the model's decoder layers across stages; each
//! stage calls [`Model::forward_layer_range`] with its assigned global layer
//! range and its own [`KvCache`] covering just those layers.  The first stage
//! additionally embeds the batch tokens ([`Model::embed`]) and the last stage
//! (or the head node, after receiving the final hidden states) applies the
//! output head ([`Model::logits`]).
//!
//! Attention uses the KV-cache cell metadata for masking, so causal masking
//! and speculation-tree masking (mutually exclusive branches) come "for
//! free" from sequence-id bookkeeping — the same design as llama.cpp, which
//! the paper relies on for its KV-cache multibuffering.

use crate::batch::Batch;
use crate::config::{Activation, ModelConfig};
use crate::kv_cache::KvCache;
use crate::weights::ModelWeights;
use pi_tensor::{ops, Tensor};
use std::ops::Range;

/// Errors produced while evaluating a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The KV cache ran out of free cells.
    CacheFull,
    /// The hidden-state tensor does not match the batch.
    BadHidden(String),
    /// A layer range outside the model was requested.
    BadLayerRange(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::CacheFull => write!(f, "KV cache is full"),
            ModelError::BadHidden(m) => write!(f, "bad hidden state: {m}"),
            ModelError::BadLayerRange(m) => write!(f, "bad layer range: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Reusable per-forward scratch buffers.
///
/// One decoder layer needs normed activations, q/k/v projections, attention
/// accumulators, MLP intermediates and an attention-score/visible-cell pair
/// per token.  Allocating those fresh for every token of every layer
/// dominated small-model forward cost; an arena is created once (or held
/// long-term by an engine) and every token of every layer reuses it.
///
/// An arena is sized for one model configuration; [`Model::forward_layer_range_with`]
/// checks compatibility and errors rather than silently resizing, so engines
/// cannot accidentally share an arena across differently-shaped models.
#[derive(Debug, Clone)]
pub struct ScratchArena {
    /// `d_model` — normed activations entering attention / MLP.
    h: Vec<f32>,
    /// `d_model` — query projection.
    q: Vec<f32>,
    /// `kv_dim` — key projection.
    k: Vec<f32>,
    /// `kv_dim` — value projection.
    v: Vec<f32>,
    /// `d_model` — per-head attention output accumulator.
    attn: Vec<f32>,
    /// `d_model` — attention output / MLP down projection.
    proj: Vec<f32>,
    /// `d_ff` — gate projection (SwiGLU) .
    gate: Vec<f32>,
    /// `d_ff` — up projection.
    up: Vec<f32>,
    /// Attention scores over visible cells (grows to context length).
    scores: Vec<f32>,
    /// Visible-cell indices for the current token.
    visible: Vec<usize>,
    /// `[g, d_model]` — normed activations of a whole level group.
    bh: Vec<f32>,
    /// `[g, d_model]` — batched query projections.
    bq: Vec<f32>,
    /// `[g, kv_dim]` — batched key projections.
    bk: Vec<f32>,
    /// `[g, kv_dim]` — batched value projections.
    bv: Vec<f32>,
    /// `[g, d_model]` — per-row attention outputs awaiting the batched
    /// output projection.
    battn: Vec<f32>,
    /// `[g, d_model]` — batched attention-output / MLP down projection.
    bproj: Vec<f32>,
    /// `[g, d_ff]` — batched gate projection (SwiGLU).
    bgate: Vec<f32>,
    /// `[g, d_ff]` — batched up projection.
    bup: Vec<f32>,
}

impl ScratchArena {
    /// Builds an arena sized for `cfg`.
    pub fn for_config(cfg: &ModelConfig) -> Self {
        Self {
            h: vec![0.0; cfg.d_model],
            q: vec![0.0; cfg.d_model],
            k: vec![0.0; cfg.kv_dim()],
            v: vec![0.0; cfg.kv_dim()],
            attn: vec![0.0; cfg.d_model],
            proj: vec![0.0; cfg.d_model],
            gate: vec![0.0; cfg.d_ff],
            up: vec![0.0; cfg.d_ff],
            scores: Vec::new(),
            visible: Vec::new(),
            bh: Vec::new(),
            bq: Vec::new(),
            bk: Vec::new(),
            bv: Vec::new(),
            battn: Vec::new(),
            bproj: Vec::new(),
            bgate: Vec::new(),
            bup: Vec::new(),
        }
    }

    fn fits(&self, cfg: &ModelConfig) -> bool {
        self.h.len() == cfg.d_model && self.k.len() == cfg.kv_dim() && self.gate.len() == cfg.d_ff
    }

    /// Grows the level-group buffers to hold `g` rows (they persist at the
    /// largest size seen, like every other arena slot).
    fn ensure_group(&mut self, g: usize, cfg: &ModelConfig) {
        let (d, kv, ff) = (cfg.d_model, cfg.kv_dim(), cfg.d_ff);
        if self.bh.len() < g * d {
            self.bh.resize(g * d, 0.0);
            self.bq.resize(g * d, 0.0);
            self.battn.resize(g * d, 0.0);
            self.bproj.resize(g * d, 0.0);
        }
        if self.bk.len() < g * kv {
            self.bk.resize(g * kv, 0.0);
            self.bv.resize(g * kv, 0.0);
        }
        if self.bgate.len() < g * ff {
            self.bgate.resize(g * ff, 0.0);
            self.bup.resize(g * ff, 0.0);
        }
    }
}

/// A runnable decoder-only transformer: configuration plus weights.
#[derive(Debug, Clone)]
pub struct Model {
    cfg: ModelConfig,
    weights: ModelWeights,
}

impl Model {
    /// Wraps a config and matching weights into a runnable model.
    pub fn new(cfg: ModelConfig, weights: ModelWeights) -> Self {
        Self { cfg, weights }
    }

    /// Builds a randomly initialised model (deterministic in `seed`).
    pub fn random(cfg: ModelConfig, seed: u64) -> Self {
        let weights = ModelWeights::random(&cfg, seed);
        Self { cfg, weights }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The model weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Creates a KV cache sized for `capacity` cells covering the layer range
    /// `layers` of this model.
    pub fn new_cache_for_layers(&self, layers: &Range<usize>, capacity: usize) -> KvCache {
        KvCache::new(layers.len(), self.cfg.kv_dim(), capacity)
    }

    /// Paged-backing variant of [`Model::new_cache_for_layers`]: same cell
    /// metadata and numerics, but K/V storage lives in demand-allocated
    /// copy-on-write pages of `tokens_per_page` cells so committed prompt
    /// prefixes can be shared across requests via a
    /// [`crate::kv_pool::KvPagePool`].
    pub fn new_paged_cache_for_layers(
        &self,
        layers: &Range<usize>,
        capacity: usize,
        tokens_per_page: usize,
    ) -> KvCache {
        KvCache::new_paged(layers.len(), self.cfg.kv_dim(), capacity, tokens_per_page)
    }

    /// Allocates one KV-cache cell per batch entry.  Every pipeline stage
    /// performs the same allocations in the same order, so cell indices agree
    /// across stages.
    pub fn alloc_cells(batch: &Batch, cache: &mut KvCache) -> Result<Vec<usize>, ModelError> {
        Self::alloc_cells_multi(batch, &mut [cache])
    }

    /// [`Model::alloc_cells`] for a forest batch: entry `i` allocates its
    /// cell from `caches[entry.lane]`, so each fused request's tokens land
    /// in that request's own cache.  Allocation order is batch order, which
    /// keeps cell indices deterministic per lane.
    pub fn alloc_cells_multi(
        batch: &Batch,
        caches: &mut [&mut KvCache],
    ) -> Result<Vec<usize>, ModelError> {
        if batch.lane_count() > caches.len() {
            return Err(ModelError::BadHidden(format!(
                "batch uses {} lanes but only {} caches were provided",
                batch.lane_count(),
                caches.len()
            )));
        }
        let mut cells = Vec::with_capacity(batch.len());
        for e in batch.iter() {
            let cell = caches[e.lane]
                .alloc(e.pos, &e.seq_ids)
                .ok_or(ModelError::CacheFull)?;
            cells.push(cell);
        }
        Ok(cells)
    }

    /// Embeds the batch tokens into hidden states `[n_tokens, d_model]`.
    pub fn embed(&self, batch: &Batch) -> Tensor {
        let d = self.cfg.d_model;
        let mut out = Tensor::zeros(&[batch.len(), d]);
        for (i, e) in batch.iter().enumerate() {
            let row = self
                .weights
                .tok_embed
                .row(e.token as usize % self.cfg.vocab_size)
                .expect("vocab bounds");
            out.row_mut(i).unwrap().copy_from_slice(row);
        }
        out
    }

    /// Evaluates global decoder layers `layers` over the batch.
    ///
    /// * `hidden` — the activations entering the first layer of the range
    ///   (`[n_tokens, d_model]`), typically the output of the previous stage
    ///   or of [`Model::embed`].
    /// * `cache` — this stage's KV cache; it must cover exactly `layers.len()`
    ///   layers.
    /// * `cells` — the cache cell allocated for each batch entry (from
    ///   [`Model::alloc_cells`]).
    ///
    /// Returns the activations leaving the last layer of the range.
    pub fn forward_layer_range(
        &self,
        batch: &Batch,
        hidden: &Tensor,
        layers: Range<usize>,
        cache: &mut KvCache,
        cells: &[usize],
    ) -> Result<Tensor, ModelError> {
        let mut scratch = ScratchArena::for_config(&self.cfg);
        self.forward_layer_range_with(batch, hidden, layers, cache, cells, &mut scratch)
    }

    /// [`Self::forward_layer_range`] with a caller-held [`ScratchArena`], so
    /// long-lived engines reuse the per-layer temporaries across *calls*
    /// (every decoded token), not just across the tokens of one batch.
    pub fn forward_layer_range_with(
        &self,
        batch: &Batch,
        hidden: &Tensor,
        layers: Range<usize>,
        cache: &mut KvCache,
        cells: &[usize],
        scratch: &mut ScratchArena,
    ) -> Result<Tensor, ModelError> {
        self.forward_layer_range_multi(batch, hidden, layers, &mut [cache], cells, scratch)
    }

    /// [`Self::forward_layer_range_with`] over a *forest* batch: entry `i`
    /// stores into and attends over `caches[entry.lane]`, so a cohort of
    /// fused requests shares every projection/FFN GEMM (`m = Σ cohort
    /// widths`, weights streamed once per step) while attention stays
    /// per-sequence against each request's own — possibly pooled/paged —
    /// cache.  With one cache and a lane-0 batch this is exactly
    /// [`Self::forward_layer_range_with`]; each output row depends only on
    /// its own input row and its own lane's cache, so fused rows are
    /// bitwise identical to solo evaluation.
    pub fn forward_layer_range_multi(
        &self,
        batch: &Batch,
        hidden: &Tensor,
        layers: Range<usize>,
        caches: &mut [&mut KvCache],
        cells: &[usize],
        scratch: &mut ScratchArena,
    ) -> Result<Tensor, ModelError> {
        if batch.lane_count() > caches.len() {
            return Err(ModelError::BadHidden(format!(
                "batch uses {} lanes but only {} caches were provided",
                batch.lane_count(),
                caches.len()
            )));
        }
        if !scratch.fits(&self.cfg) {
            return Err(ModelError::BadHidden(format!(
                "scratch arena sized for another model (d_model {} expected)",
                self.cfg.d_model
            )));
        }
        if layers.end > self.cfg.n_layers {
            return Err(ModelError::BadLayerRange(format!(
                "range {layers:?} exceeds {} layers",
                self.cfg.n_layers
            )));
        }
        if hidden.rows() != batch.len() || hidden.cols() != self.cfg.d_model {
            return Err(ModelError::BadHidden(format!(
                "hidden is [{}, {}], batch has {} tokens, d_model {}",
                hidden.rows(),
                hidden.cols(),
                batch.len(),
                self.cfg.d_model
            )));
        }
        if cells.len() != batch.len() {
            return Err(ModelError::BadHidden(format!(
                "{} cells for {} batch entries",
                cells.len(),
                batch.len()
            )));
        }
        // Level groups are a property of the batch alone, so compute them
        // once and reuse across layers.  Prompts and tree batches collapse
        // into a single group (see [`Batch::level_groups`]), turning every
        // per-layer projection into one m = n_tokens GEMM.
        let groups = batch.level_groups();
        let max_group = groups.iter().map(|g| g.len()).max().unwrap_or(0);
        if max_group > 1 {
            scratch.ensure_group(max_group, &self.cfg);
        }
        let mut x = hidden.clone();
        for (local, global) in layers.clone().enumerate() {
            self.forward_one_layer(
                batch, &groups, &mut x, global, local, caches, cells, scratch,
            );
        }
        Ok(x)
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_one_layer(
        &self,
        batch: &Batch,
        groups: &[Range<usize>],
        x: &mut Tensor,
        global_layer: usize,
        local_layer: usize,
        caches: &mut [&mut KvCache],
        cells: &[usize],
        scratch: &mut ScratchArena,
    ) {
        let cfg = &self.cfg;
        let lw = &self.weights.layers[global_layer];
        let hd = cfg.head_dim();
        let n_heads = cfg.n_heads;
        let n_kv = cfg.n_kv_heads;
        let group_heads = n_heads / n_kv;
        let scale = 1.0 / (hd as f32).sqrt();
        let (d, kvd, ff) = (cfg.d_model, cfg.kv_dim(), cfg.d_ff);
        let ScratchArena {
            h,
            q,
            k,
            v,
            attn,
            proj,
            gate,
            up,
            scores,
            visible,
            bh,
            bq,
            bk,
            bv,
            battn,
            bproj,
            bgate,
            bup,
        } = scratch;
        let entries = batch.entries();

        // Groups are processed in batch order so that tokens of a later
        // group can attend to the KV entries stored by earlier groups.
        // Within a group, every K/V is stored before any attention runs —
        // safe by the level-group invariant (no member's cell is visible to
        // an earlier member), and it lets each projection walk the weight
        // matrix once for the whole group instead of once per token.
        for group in groups {
            let g = group.len();
            if g == 1 {
                // Single-token group: the GEMV path, no batching overhead.
                let i = group.start;
                let entry = &entries[i];
                let cache = &mut *caches[entry.lane];
                // --- Attention block ---
                ops::rmsnorm_into(x.row(i).unwrap(), lw.attn_norm.data(), cfg.norm_eps, h);
                ops::matvec_t_into(h, &lw.wq, q).unwrap();
                ops::matvec_t_into(h, &lw.wk, k).unwrap();
                ops::matvec_t_into(h, &lw.wv, v).unwrap();
                ops::rope_inplace(q, n_heads, hd, entry.pos as usize, cfg.rope_theta);
                ops::rope_inplace(k, n_kv, hd, entry.pos as usize, cfg.rope_theta);
                cache.store(local_layer, cells[i], k, v);

                cache.visible_cells_into(&entry.seq_ids, entry.pos, visible);
                attn.fill(0.0);
                Self::attend_token(
                    cache,
                    local_layer,
                    visible,
                    scores,
                    q,
                    attn,
                    n_heads,
                    group_heads,
                    hd,
                    scale,
                );
                ops::matvec_t_into(attn, &lw.wo, proj).unwrap();
                ops::add_inplace(x.row_mut(i).unwrap(), proj);

                // --- MLP block ---
                ops::rmsnorm_into(x.row(i).unwrap(), lw.mlp_norm.data(), cfg.norm_eps, h);
                match cfg.activation {
                    Activation::SwiGlu => {
                        ops::matvec_t_into(h, lw.w_gate.as_ref().unwrap(), gate).unwrap();
                        ops::matvec_t_into(h, &lw.w_up, up).unwrap();
                        ops::silu_mul_inplace(gate, up);
                        ops::matvec_t_into(gate, &lw.w_down, proj).unwrap();
                    }
                    Activation::Gelu => {
                        ops::matvec_t_into(h, &lw.w_up, up).unwrap();
                        ops::gelu_inplace(up);
                        ops::matvec_t_into(up, &lw.w_down, proj).unwrap();
                    }
                }
                ops::add_inplace(x.row_mut(i).unwrap(), proj);
                continue;
            }

            // Level-batched path: one GEMM per projection for the whole
            // group.  Only attention itself stays per-row, because each row
            // has its own visibility mask.
            let bh = &mut bh[..g * d];
            let bq = &mut bq[..g * d];
            let bk = &mut bk[..g * kvd];
            let bv = &mut bv[..g * kvd];
            let battn = &mut battn[..g * d];
            let bproj = &mut bproj[..g * d];

            // --- Attention block ---
            for (r, i) in group.clone().enumerate() {
                ops::rmsnorm_into(
                    x.row(i).unwrap(),
                    lw.attn_norm.data(),
                    cfg.norm_eps,
                    &mut bh[r * d..(r + 1) * d],
                );
            }
            ops::matmul_t_into(bh, lw.wq.data(), g, d, d, bq);
            ops::matmul_t_into(bh, lw.wk.data(), g, d, kvd, bk);
            ops::matmul_t_into(bh, lw.wv.data(), g, d, kvd, bv);
            for (r, i) in group.clone().enumerate() {
                let pos = entries[i].pos as usize;
                ops::rope_inplace(
                    &mut bq[r * d..(r + 1) * d],
                    n_heads,
                    hd,
                    pos,
                    cfg.rope_theta,
                );
                let krow = &mut bk[r * kvd..(r + 1) * kvd];
                ops::rope_inplace(krow, n_kv, hd, pos, cfg.rope_theta);
                caches[entries[i].lane].store(
                    local_layer,
                    cells[i],
                    krow,
                    &bv[r * kvd..(r + 1) * kvd],
                );
            }
            for (r, i) in group.clone().enumerate() {
                let entry = &entries[i];
                let cache = &*caches[entry.lane];
                cache.visible_cells_into(&entry.seq_ids, entry.pos, visible);
                let arow = &mut battn[r * d..(r + 1) * d];
                arow.fill(0.0);
                Self::attend_token(
                    cache,
                    local_layer,
                    visible,
                    scores,
                    &bq[r * d..(r + 1) * d],
                    arow,
                    n_heads,
                    group_heads,
                    hd,
                    scale,
                );
            }
            ops::matmul_t_into(battn, lw.wo.data(), g, d, d, bproj);
            for (r, i) in group.clone().enumerate() {
                ops::add_inplace(x.row_mut(i).unwrap(), &bproj[r * d..(r + 1) * d]);
            }

            // --- MLP block ---
            for (r, i) in group.clone().enumerate() {
                ops::rmsnorm_into(
                    x.row(i).unwrap(),
                    lw.mlp_norm.data(),
                    cfg.norm_eps,
                    &mut bh[r * d..(r + 1) * d],
                );
            }
            match cfg.activation {
                Activation::SwiGlu => {
                    let bgate = &mut bgate[..g * ff];
                    let bup = &mut bup[..g * ff];
                    ops::matmul_t_into(bh, lw.w_gate.as_ref().unwrap().data(), g, d, ff, bgate);
                    ops::matmul_t_into(bh, lw.w_up.data(), g, d, ff, bup);
                    ops::silu_mul_inplace(bgate, bup);
                    ops::matmul_t_into(bgate, lw.w_down.data(), g, ff, d, bproj);
                }
                Activation::Gelu => {
                    let bup = &mut bup[..g * ff];
                    ops::matmul_t_into(bh, lw.w_up.data(), g, d, ff, bup);
                    ops::gelu_inplace(bup);
                    ops::matmul_t_into(bup, lw.w_down.data(), g, ff, d, bproj);
                }
            }
            for (r, i) in group.clone().enumerate() {
                ops::add_inplace(x.row_mut(i).unwrap(), &bproj[r * d..(r + 1) * d]);
            }
        }
    }

    /// Multi-head attention for one token over its visible cells: scores
    /// each head's query slice against the cached keys, softmaxes, and
    /// gathers the cached values into `out` (which the caller has zeroed).
    /// Shared by the single-token and level-batched paths so both attend
    /// identically.
    #[allow(clippy::too_many_arguments)]
    fn attend_token(
        cache: &KvCache,
        local_layer: usize,
        visible: &[usize],
        scores: &mut Vec<f32>,
        q: &[f32],
        out: &mut [f32],
        n_heads: usize,
        group_heads: usize,
        hd: usize,
        scale: f32,
    ) {
        for head in 0..n_heads {
            let kv_head = head / group_heads;
            let q_h = &q[head * hd..(head + 1) * hd];
            scores.clear();
            for &cell in visible.iter() {
                let k_c = cache.key(local_layer, cell);
                let k_h = &k_c[kv_head * hd..(kv_head + 1) * hd];
                scores.push(ops::dot(q_h, k_h) * scale);
            }
            ops::softmax_inplace(scores);
            let out_h = &mut out[head * hd..(head + 1) * hd];
            for (w, &cell) in scores.iter().zip(visible.iter()) {
                let v_c = cache.value(local_layer, cell);
                let v_h = &v_c[kv_head * hd..(kv_head + 1) * hd];
                ops::axpy(out_h, *w, v_h);
            }
        }
    }

    /// Applies the final norm and output head, returning logits
    /// `[n_tokens, vocab]` for every batch entry (callers select the rows
    /// they requested logits for via [`Batch::logit_indices`]).
    pub fn logits(&self, hidden: &Tensor) -> Tensor {
        let d = self.cfg.d_model;
        let n = hidden.rows();
        let mut normed = Tensor::zeros(&[n, d]);
        for i in 0..n {
            ops::rmsnorm_into(
                hidden.row(i).unwrap(),
                self.weights.final_norm.data(),
                self.cfg.norm_eps,
                normed.row_mut(i).unwrap(),
            );
        }
        ops::matmul_t(&normed, &self.weights.lm_head).unwrap()
    }

    /// Convenience single-process forward: embed, run every layer, and return
    /// logits.  Used by the single-node baseline and by tests that compare
    /// distributed execution against local execution.
    pub fn forward_full(&self, batch: &Batch, cache: &mut KvCache) -> Result<Tensor, ModelError> {
        let cells = Self::alloc_cells(batch, cache)?;
        let hidden = self.embed(batch);
        let out = self.forward_layer_range(batch, &hidden, 0..self.cfg.n_layers, cache, &cells)?;
        Ok(self.logits(&out))
    }

    /// Splits `n_layers` decoder layers over `n_stages` pipeline stages as
    /// evenly as possible (earlier stages get the remainder), returning the
    /// global layer range of each stage.  This mirrors llama.cpp's MPI layer
    /// split used by the paper.
    pub fn split_layers(n_layers: usize, n_stages: usize) -> Vec<Range<usize>> {
        assert!(n_stages > 0, "at least one stage required");
        let base = n_layers / n_stages;
        let rem = n_layers % n_stages;
        let mut ranges = Vec::with_capacity(n_stages);
        let mut start = 0;
        for s in 0..n_stages {
            let len = base + usize::from(s < rem);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Sampler;

    fn tiny_model(seed: u64) -> Model {
        Model::random(ModelConfig::tiny_llama(64, 4), seed)
    }

    fn greedy_next(model: &Model, cache: &mut KvCache, batch: &Batch) -> u32 {
        let logits = model.forward_full(batch, cache).unwrap();
        let idx = *batch.logit_indices().last().unwrap();
        Sampler::Greedy.sample(logits.row(idx).unwrap())
    }

    #[test]
    fn forward_full_shapes() {
        let m = tiny_model(1);
        let mut cache = m.new_cache_for_layers(&(0..4), 64);
        let batch = Batch::prompt(&[1, 2, 3], 0, 0);
        let logits = m.forward_full(&batch, &mut cache).unwrap();
        assert_eq!(logits.shape(), &[3, 64]);
        assert_eq!(cache.used(), 3);
    }

    #[test]
    fn layer_range_split_matches_full_forward() {
        let m = tiny_model(2);
        let batch = Batch::prompt(&[5, 9, 13, 2], 0, 0);

        // Full pass.
        let mut full_cache = m.new_cache_for_layers(&(0..4), 64);
        let full_logits = m.forward_full(&batch, &mut full_cache).unwrap();

        // Two-stage pipeline: layers 0..2 and 2..4 with separate caches.
        let ranges = Model::split_layers(4, 2);
        let mut cache0 = m.new_cache_for_layers(&ranges[0], 64);
        let mut cache1 = m.new_cache_for_layers(&ranges[1], 64);
        let cells0 = Model::alloc_cells(&batch, &mut cache0).unwrap();
        let cells1 = Model::alloc_cells(&batch, &mut cache1).unwrap();
        let hidden = m.embed(&batch);
        let mid = m
            .forward_layer_range(&batch, &hidden, ranges[0].clone(), &mut cache0, &cells0)
            .unwrap();
        let out = m
            .forward_layer_range(&batch, &mid, ranges[1].clone(), &mut cache1, &cells1)
            .unwrap();
        let split_logits = m.logits(&out);

        for (a, b) in full_logits.data().iter().zip(split_logits.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_decode_matches_batched_prompt() {
        // Feeding tokens one at a time (using the KV cache) must produce the
        // same final-token logits as feeding them in a single prompt batch.
        let m = tiny_model(3);
        let tokens = [7u32, 11, 23, 31];

        let mut c1 = m.new_cache_for_layers(&(0..4), 64);
        let batched = m
            .forward_full(&Batch::prompt(&tokens, 0, 0), &mut c1)
            .unwrap();
        let batched_last = batched.row(tokens.len() - 1).unwrap().to_vec();

        let mut c2 = m.new_cache_for_layers(&(0..4), 64);
        let mut last = Vec::new();
        for (i, &t) in tokens.iter().enumerate() {
            let logits = m
                .forward_full(&Batch::single(t, i as i32, 0), &mut c2)
                .unwrap();
            last = logits.row(0).unwrap().to_vec();
        }
        for (a, b) in batched_last.iter().zip(last.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn sequences_are_isolated() {
        // The same tokens fed in two different sequences must not interfere:
        // generating in seq 1 after polluting seq 2 gives the same result as
        // a fresh cache.
        let m = tiny_model(4);
        let mut clean = m.new_cache_for_layers(&(0..4), 64);
        let expected = greedy_next(&m, &mut clean, &Batch::prompt(&[3, 1, 4], 0, 1));

        let mut shared = m.new_cache_for_layers(&(0..4), 64);
        // Pollute sequence 2 with different content first.
        let _ = m
            .forward_full(&Batch::prompt(&[9, 9, 9, 9, 9], 0, 2), &mut shared)
            .unwrap();
        let got = greedy_next(&m, &mut shared, &Batch::prompt(&[3, 1, 4], 0, 1));
        assert_eq!(expected, got);
    }

    #[test]
    fn cache_full_is_reported() {
        let m = tiny_model(5);
        let mut cache = KvCache::new(4, m.config().kv_dim(), 2);
        let batch = Batch::prompt(&[1, 2, 3], 0, 0);
        assert_eq!(
            m.forward_full(&batch, &mut cache).unwrap_err(),
            ModelError::CacheFull
        );
    }

    #[test]
    fn split_layers_even_and_uneven() {
        assert_eq!(Model::split_layers(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        let r = Model::split_layers(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        let total: usize = r.iter().map(|x| x.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(Model::split_layers(3, 5).len(), 5);
    }

    #[test]
    fn reused_scratch_arena_is_equivalent_to_fresh() {
        // Decoding with one long-lived arena must produce exactly the same
        // logits as the per-call arena path, token after token.
        let m = tiny_model(11);
        let mut scratch = ScratchArena::for_config(m.config());
        let mut c1 = m.new_cache_for_layers(&(0..4), 64);
        let mut c2 = m.new_cache_for_layers(&(0..4), 64);
        for (pos, tok) in [7u32, 3, 19, 4, 2].into_iter().enumerate() {
            let batch = Batch::single(tok, pos as i32, 0);

            let cells1 = Model::alloc_cells(&batch, &mut c1).unwrap();
            let hidden1 = m.embed(&batch);
            let out1 = m
                .forward_layer_range_with(&batch, &hidden1, 0..4, &mut c1, &cells1, &mut scratch)
                .unwrap();

            let cells2 = Model::alloc_cells(&batch, &mut c2).unwrap();
            let hidden2 = m.embed(&batch);
            let out2 = m
                .forward_layer_range(&batch, &hidden2, 0..4, &mut c2, &cells2)
                .unwrap();

            assert_eq!(out1.data(), out2.data(), "token at pos {pos} diverged");
        }
    }

    #[test]
    fn mismatched_scratch_arena_rejected() {
        let m = tiny_model(12);
        let other = ModelConfig::tiny_llama(64, 4);
        let mut wrong = ScratchArena::for_config(&ModelConfig {
            d_model: other.d_model * 2,
            ..other
        });
        let batch = Batch::single(1, 0, 0);
        let mut cache = m.new_cache_for_layers(&(0..4), 8);
        let cells = Model::alloc_cells(&batch, &mut cache).unwrap();
        let hidden = m.embed(&batch);
        assert!(m
            .forward_layer_range_with(&batch, &hidden, 0..4, &mut cache, &cells, &mut wrong)
            .is_err());
    }

    #[test]
    fn bad_layer_range_rejected() {
        let m = tiny_model(6);
        let batch = Batch::single(1, 0, 0);
        let mut cache = m.new_cache_for_layers(&(0..4), 8);
        let cells = Model::alloc_cells(&batch, &mut cache).unwrap();
        let hidden = m.embed(&batch);
        assert!(m
            .forward_layer_range(&batch, &hidden, 0..9, &mut cache, &cells)
            .is_err());
    }

    #[test]
    fn gelu_model_runs() {
        let m = Model::random(ModelConfig::tiny_falcon(64, 2), 7);
        let mut cache = m.new_cache_for_layers(&(0..2), 16);
        let logits = m
            .forward_full(&Batch::prompt(&[1, 2, 3], 0, 0), &mut cache)
            .unwrap();
        assert_eq!(logits.shape(), &[3, 64]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tree_batch_matches_per_node_evaluation() {
        // A speculation tree evaluated as one level-batched batch must match
        // evaluating its nodes one at a time — level batching stores a whole
        // group's K/V before attending, and that must not change what any
        // node sees.  The tree: a shared root at pos 3, two mutually
        // exclusive branches at pos 4, two grandchildren at pos 5.
        let m = tiny_model(13);
        let tree_entries: Vec<(u32, i32, Vec<u32>)> = vec![
            (5, 3, vec![1, 2, 3]),
            (6, 4, vec![1]),
            (7, 4, vec![2, 3]),
            (8, 5, vec![2]),
            (9, 5, vec![3]),
        ];
        let prompt = {
            let mut b = Batch::new();
            for (i, &t) in [1u32, 2, 3].iter().enumerate() {
                b.push(t, i as i32, vec![1, 2, 3], false);
            }
            b
        };
        let tree_batch: Batch = {
            let mut b = Batch::new();
            for (t, p, s) in &tree_entries {
                b.push(*t, *p, s.clone(), true);
            }
            b
        };
        assert_eq!(tree_batch.level_groups(), vec![0..5], "tree must batch");

        let mut c1 = m.new_cache_for_layers(&(0..4), 64);
        m.forward_full(&prompt, &mut c1).unwrap();
        let batched = m.forward_full(&tree_batch, &mut c1).unwrap();

        let mut c2 = m.new_cache_for_layers(&(0..4), 64);
        m.forward_full(&prompt, &mut c2).unwrap();
        for (row, (t, p, s)) in tree_entries.iter().enumerate() {
            let mut b = Batch::new();
            b.push(*t, *p, s.clone(), true);
            let one = m.forward_full(&b, &mut c2).unwrap();
            for (a, e) in batched.row(row).unwrap().iter().zip(one.row(0).unwrap()) {
                assert!(
                    (a - e).abs() <= 1e-4 * a.abs().max(1.0),
                    "node {row}: {a} vs {e}"
                );
            }
        }
    }

    #[test]
    fn forest_batch_matches_solo_evaluation() {
        // Two requests fused into one forest batch — each in its own lane
        // with its own cache — must produce the same hidden states and
        // logits as evaluating each request alone: every fused row depends
        // only on its own input row and its own lane's cache.
        let m = tiny_model(14);
        let pa = [1u32, 2, 3];
        let pb = [9u32, 8, 7, 6];

        let solo = |prompt: &[u32]| {
            let mut cache = m.new_cache_for_layers(&(0..4), 64);
            let batch = Batch::prompt(prompt, 0, 0);
            let cells = Model::alloc_cells(&batch, &mut cache).unwrap();
            let hidden = m.embed(&batch);
            let out = m
                .forward_layer_range(&batch, &hidden, 0..4, &mut cache, &cells)
                .unwrap();
            m.logits(&out)
        };
        let la = solo(&pa);
        let lb = solo(&pb);

        let mut fa = m.new_cache_for_layers(&(0..4), 64);
        let mut fb = m.new_cache_for_layers(&(0..4), 64);
        let mut forest = Batch::new();
        forest.append_lane(&Batch::prompt(&pa, 0, 0), 0);
        forest.append_lane(&Batch::prompt(&pb, 0, 0), 1);
        assert_eq!(forest.level_groups(), vec![0..7], "forest must fuse");
        let mut caches: [&mut KvCache; 2] = [&mut fa, &mut fb];
        let cells = Model::alloc_cells_multi(&forest, &mut caches).unwrap();
        let hidden = m.embed(&forest);
        let mut scratch = ScratchArena::for_config(m.config());
        let out = m
            .forward_layer_range_multi(&forest, &hidden, 0..4, &mut caches, &cells, &mut scratch)
            .unwrap();
        let fused = m.logits(&out);

        for (row, expect) in (0..3).map(|r| (r, la.row(r).unwrap())) {
            assert_eq!(fused.row(row).unwrap(), expect, "lane 0 row {row}");
        }
        for (row, expect) in (0..4).map(|r| (3 + r, lb.row(r).unwrap())) {
            assert_eq!(fused.row(row).unwrap(), expect, "lane 1 row {row}");
        }
        // Each lane's cells landed in its own cache only.
        assert_eq!(fa.used(), 3);
        assert_eq!(fb.used(), 4);
    }

    #[test]
    fn forest_batch_with_missing_cache_is_rejected() {
        let m = tiny_model(15);
        let mut forest = Batch::new();
        forest.append_lane(&Batch::single(1, 0, 0), 0);
        forest.append_lane(&Batch::single(2, 0, 0), 1);
        let mut only = m.new_cache_for_layers(&(0..4), 8);
        assert!(Model::alloc_cells_multi(&forest, &mut [&mut only]).is_err());
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let m = tiny_model(8);
        let gen = |m: &Model| {
            let mut cache = m.new_cache_for_layers(&(0..4), 128);
            let mut out = Vec::new();
            let prompt = [1u32, 2, 3, 4];
            let mut tok = greedy_next(m, &mut cache, &Batch::prompt(&prompt, 0, 0));
            let first_pos = prompt.len() as i32;
            for pos in first_pos..first_pos + 16 {
                out.push(tok);
                tok = greedy_next(m, &mut cache, &Batch::single(tok, pos, 0));
            }
            out
        };
        assert_eq!(gen(&m), gen(&m));
    }
}
