//! KV cache with llama.cpp-style per-cell sequence metadata.
//!
//! The paper's Pipelined KV Cache Multibuffering (§IV-C) is built entirely on
//! the metadata operations this cache exposes: every cache cell records the
//! token *position* it holds and the *set of sequences* it belongs to, and
//! "copying" entries from one sequence to another only edits that metadata —
//! the attention vectors themselves are shared.  That is what makes the
//! paper's "buffer swap" (copying accepted entries to the canonical sequence
//! and to all free partitions) nearly free.
//!
//! The operations match their llama.cpp namesakes:
//!
//! * [`KvCache::seq_cp`]  — `llama_kv_cache_seq_cp`
//! * [`KvCache::seq_rm`]  — `llama_kv_cache_seq_rm`
//! * [`KvCache::seq_keep`] — `llama_kv_cache_seq_keep`
//!
//! Each pipeline stage owns one `KvCache` covering only its layer range; the
//! metadata commands are forwarded down the pipeline as transactions so every
//! stage applies them in the same order (paper §IV-C3).

use crate::{Pos, SeqId};
use std::collections::BTreeSet;

/// Metadata of one cache cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCell {
    /// Position of the cached token, or -1 if the cell is free.
    pub pos: Pos,
    /// Sequences this cell belongs to; empty means free.
    pub seq_ids: BTreeSet<SeqId>,
}

impl KvCell {
    fn free() -> Self {
        Self {
            pos: -1,
            seq_ids: BTreeSet::new(),
        }
    }

    /// Whether the cell currently holds no entry.
    pub fn is_free(&self) -> bool {
        self.seq_ids.is_empty()
    }

    /// Whether the cell belongs to sequence `seq`.
    pub fn has_seq(&self, seq: SeqId) -> bool {
        self.seq_ids.contains(&seq)
    }
}

/// A KV cache for a contiguous range of decoder layers.
///
/// Layer indices passed to [`KvCache::store`] / [`KvCache::key`] /
/// [`KvCache::value`] are *local* to this cache (0-based within the owning
/// pipeline stage's layer range).
#[derive(Debug, Clone)]
pub struct KvCache {
    n_layers: usize,
    kv_dim: usize,
    capacity: usize,
    cells: Vec<KvCell>,
    /// Per-layer keys: `capacity * kv_dim` contiguous f32s.
    k: Vec<Vec<f32>>,
    /// Per-layer values, same layout.
    v: Vec<Vec<f32>>,
}

impl KvCache {
    /// Creates an empty cache with room for `capacity` cells covering
    /// `n_layers` layers of key/value dimension `kv_dim`.
    pub fn new(n_layers: usize, kv_dim: usize, capacity: usize) -> Self {
        Self {
            n_layers,
            kv_dim,
            capacity,
            cells: vec![KvCell::free(); capacity],
            k: vec![vec![0.0; capacity * kv_dim]; n_layers],
            v: vec![vec![0.0; capacity * kv_dim]; n_layers],
        }
    }

    /// Cache capacity in cells.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of layers this cache covers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Key/value vector dimension.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// The cell metadata (read-only).
    pub fn cells(&self) -> &[KvCell] {
        &self.cells
    }

    /// Number of occupied cells.
    pub fn used(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_free()).count()
    }

    /// Number of free cells.
    pub fn free(&self) -> usize {
        self.capacity - self.used()
    }

    /// Allocates one cell for a token at `pos` belonging to `seq_ids`.
    ///
    /// Returns the cell index, or `None` if the cache is full.  First-fit
    /// allocation keeps the behaviour deterministic across pipeline stages:
    /// every stage performs the same allocation calls in the same
    /// (transaction-ordered) sequence and therefore picks the same cells.
    pub fn alloc(&mut self, pos: Pos, seq_ids: &[SeqId]) -> Option<usize> {
        let idx = self.cells.iter().position(|c| c.is_free())?;
        self.cells[idx].pos = pos;
        self.cells[idx].seq_ids = seq_ids.iter().copied().collect();
        Some(idx)
    }

    /// Stores the key/value vectors of `cell` for local layer `layer`.
    pub fn store(&mut self, layer: usize, cell: usize, key: &[f32], value: &[f32]) {
        debug_assert_eq!(key.len(), self.kv_dim);
        debug_assert_eq!(value.len(), self.kv_dim);
        let off = cell * self.kv_dim;
        self.k[layer][off..off + self.kv_dim].copy_from_slice(key);
        self.v[layer][off..off + self.kv_dim].copy_from_slice(value);
    }

    /// Key vector of `cell` at local layer `layer`.
    pub fn key(&self, layer: usize, cell: usize) -> &[f32] {
        let off = cell * self.kv_dim;
        &self.k[layer][off..off + self.kv_dim]
    }

    /// Value vector of `cell` at local layer `layer`.
    pub fn value(&self, layer: usize, cell: usize) -> &[f32] {
        let off = cell * self.kv_dim;
        &self.v[layer][off..off + self.kv_dim]
    }

    /// Indices of cells visible to a query token belonging to `seq_ids` at
    /// position `pos`: the cell must share at least one sequence with the
    /// query and must not be in the query's future.  This implements the
    /// causal + tree attention mask of speculative verification.
    pub fn visible_cells(&self, seq_ids: &[SeqId], pos: Pos) -> Vec<usize> {
        let mut out = Vec::new();
        self.visible_cells_into(seq_ids, pos, &mut out);
        out
    }

    /// [`Self::visible_cells`] writing into a caller-provided buffer, so the
    /// per-token attention loop can reuse one allocation across the whole
    /// forward pass (the scratch arena holds the buffer).
    pub fn visible_cells_into(&self, seq_ids: &[SeqId], pos: Pos, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    !c.is_free() && c.pos <= pos && seq_ids.iter().any(|s| c.has_seq(*s))
                })
                .map(|(i, _)| i),
        );
    }

    /// Copies sequence `src`'s entries in position range `[p0, p1)` into
    /// sequence `dst` (metadata only; the vectors are shared).
    ///
    /// Passing `p1 = Pos::MAX` copies everything from `p0` onwards.
    pub fn seq_cp(&mut self, src: SeqId, dst: SeqId, p0: Pos, p1: Pos) {
        if src == dst {
            return;
        }
        for cell in &mut self.cells {
            if !cell.is_free() && cell.has_seq(src) && cell.pos >= p0 && cell.pos < p1 {
                cell.seq_ids.insert(dst);
            }
        }
    }

    /// Removes sequence `seq` from cells in position range `[p0, p1)`.
    /// Cells left with no sequence become free.
    pub fn seq_rm(&mut self, seq: SeqId, p0: Pos, p1: Pos) {
        for cell in &mut self.cells {
            if !cell.is_free() && cell.has_seq(seq) && cell.pos >= p0 && cell.pos < p1 {
                cell.seq_ids.remove(&seq);
                if cell.seq_ids.is_empty() {
                    *cell = KvCell::free();
                }
            }
        }
    }

    /// Keeps only sequence `seq`: every other sequence id is dropped and any
    /// cell not belonging to `seq` is freed.
    pub fn seq_keep(&mut self, seq: SeqId) {
        for cell in &mut self.cells {
            if cell.is_free() {
                continue;
            }
            if cell.has_seq(seq) {
                cell.seq_ids.retain(|s| *s == seq);
            } else {
                *cell = KvCell::free();
            }
        }
    }

    /// Commits one accepted branch of a speculation tree written under the
    /// dense sequence range `first_seq .. first_seq + n_seqs`: the entries of
    /// `path_seq` (the leaf sequence whose root-to-leaf path contains every
    /// accepted node) in `[p0, p1)` are copied into `dst` (normally the
    /// canonical sequence), then the whole tree is rolled back — every tree
    /// sequence is dropped, freeing the cells of the rejected branches while
    /// the accepted path survives as members of `dst`.
    ///
    /// All of this is metadata-only, which is what makes tree verification's
    /// "keep only the deepest accepted path" nearly free (the same property
    /// the paper's buffer swap relies on).
    pub fn branch_commit(
        &mut self,
        dst: SeqId,
        path_seq: SeqId,
        first_seq: SeqId,
        n_seqs: usize,
        p0: Pos,
        p1: Pos,
    ) {
        self.seq_cp(path_seq, dst, p0, p1);
        self.branch_rollback(first_seq, n_seqs);
    }

    /// Rolls a speculation tree back entirely: every sequence in
    /// `first_seq .. first_seq + n_seqs` is removed from every cell.  Cells
    /// owned only by tree sequences (the speculated tokens) are freed; cells
    /// shared with other sequences (the context prefix each branch was given
    /// via [`KvCache::seq_cp`]) merely lose their tree memberships.
    pub fn branch_rollback(&mut self, first_seq: SeqId, n_seqs: usize) {
        for seq in first_seq..first_seq + n_seqs as SeqId {
            self.seq_rm(seq, 0, Pos::MAX);
        }
    }

    /// Highest position stored for sequence `seq`, or `None` if the sequence
    /// has no entries.
    pub fn seq_max_pos(&self, seq: SeqId) -> Option<Pos> {
        self.cells
            .iter()
            .filter(|c| !c.is_free() && c.has_seq(seq))
            .map(|c| c.pos)
            .max()
    }

    /// Number of cells belonging to sequence `seq`.
    pub fn seq_len(&self, seq: SeqId) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.is_free() && c.has_seq(seq))
            .count()
    }

    /// Frees every cell.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            *cell = KvCell::free();
        }
    }

    /// Verifies internal invariants; used by tests and by the ablation that
    /// disables multibuffering (the paper reports that ablation produces
    /// incoherent output — here it produces a detectable invariant failure).
    ///
    /// Invariant checked: for every sequence, positions are unique — a
    /// sequence must never contain two cells with the same position, which is
    /// exactly the corruption that unsynchronised cache sharing causes.
    pub fn check_consistency(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut seen: HashMap<(SeqId, Pos), usize> = HashMap::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.is_free() {
                continue;
            }
            for &s in &cell.seq_ids {
                if let Some(prev) = seen.insert((s, cell.pos), i) {
                    return Err(format!(
                        "sequence {s} has duplicate position {} in cells {prev} and {i}",
                        cell.pos
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> KvCache {
        KvCache::new(2, 4, 16)
    }

    #[test]
    fn alloc_first_fit_and_capacity() {
        let mut c = KvCache::new(1, 2, 3);
        assert_eq!(c.alloc(0, &[0]), Some(0));
        assert_eq!(c.alloc(1, &[0]), Some(1));
        assert_eq!(c.alloc(2, &[0]), Some(2));
        assert_eq!(c.alloc(3, &[0]), None);
        assert_eq!(c.used(), 3);
        assert_eq!(c.free(), 0);
    }

    #[test]
    fn store_and_read_back() {
        let mut c = cache();
        let cell = c.alloc(0, &[0]).unwrap();
        c.store(1, cell, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(c.key(1, cell), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.value(1, cell), &[5.0, 6.0, 7.0, 8.0]);
        // Layer 0 untouched.
        assert_eq!(c.key(0, cell), &[0.0; 4]);
    }

    #[test]
    fn visibility_is_causal() {
        let mut c = cache();
        let a = c.alloc(0, &[0]).unwrap();
        let b = c.alloc(1, &[0]).unwrap();
        let vis = c.visible_cells(&[0], 0);
        assert!(vis.contains(&a) && !vis.contains(&b));
        let vis1 = c.visible_cells(&[0], 1);
        assert!(vis1.contains(&a) && vis1.contains(&b));
    }

    #[test]
    fn visibility_respects_sequences() {
        let mut c = cache();
        let shared = c.alloc(0, &[1, 2]).unwrap();
        let only1 = c.alloc(1, &[1]).unwrap();
        let only2 = c.alloc(1, &[2]).unwrap();
        let vis_seq1 = c.visible_cells(&[1], 5);
        assert!(vis_seq1.contains(&shared));
        assert!(vis_seq1.contains(&only1));
        assert!(!vis_seq1.contains(&only2));
        // A query in a different sequence entirely sees nothing.
        assert!(c.visible_cells(&[7], 5).is_empty());
    }

    #[test]
    fn seq_cp_shares_cells_without_duplicating() {
        let mut c = cache();
        for p in 0..4 {
            c.alloc(p, &[0]).unwrap();
        }
        c.seq_cp(0, 3, 0, 2);
        assert_eq!(c.seq_len(3), 2);
        assert_eq!(c.used(), 4, "copy must not allocate new cells");
        assert_eq!(c.seq_max_pos(3), Some(1));
    }

    #[test]
    fn seq_cp_to_same_sequence_is_noop() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        c.seq_cp(0, 0, 0, Pos::MAX);
        assert_eq!(c.seq_len(0), 1);
    }

    #[test]
    fn seq_rm_frees_orphan_cells() {
        let mut c = cache();
        c.alloc(0, &[1]).unwrap();
        c.alloc(1, &[1, 2]).unwrap();
        c.seq_rm(1, 0, Pos::MAX);
        assert_eq!(c.seq_len(1), 0);
        // Cell shared with seq 2 survives; the seq-1-only cell is freed.
        assert_eq!(c.used(), 1);
        assert_eq!(c.seq_len(2), 1);
    }

    #[test]
    fn seq_rm_respects_position_range() {
        let mut c = cache();
        for p in 0..5 {
            c.alloc(p, &[0]).unwrap();
        }
        c.seq_rm(0, 2, 4);
        assert_eq!(c.seq_len(0), 3);
        assert_eq!(c.seq_max_pos(0), Some(4));
    }

    #[test]
    fn seq_keep_drops_everything_else() {
        let mut c = cache();
        c.alloc(0, &[0, 5]).unwrap();
        c.alloc(1, &[5]).unwrap();
        c.alloc(2, &[7]).unwrap();
        c.seq_keep(5);
        assert_eq!(c.seq_len(5), 2);
        assert_eq!(c.seq_len(0), 0);
        assert_eq!(c.seq_len(7), 0);
        assert_eq!(c.used(), 2);
    }

    #[test]
    fn max_pos_and_clear() {
        let mut c = cache();
        assert_eq!(c.seq_max_pos(0), None);
        c.alloc(3, &[0]).unwrap();
        c.alloc(9, &[0]).unwrap();
        assert_eq!(c.seq_max_pos(0), Some(9));
        c.clear();
        assert_eq!(c.used(), 0);
        assert_eq!(c.seq_max_pos(0), None);
    }

    #[test]
    fn branch_commit_keeps_accepted_path_and_frees_rest() {
        let mut c = cache();
        // Canonical context at positions 0..2.
        c.alloc(0, &[0]).unwrap();
        c.alloc(1, &[0]).unwrap();
        // Each branch gets the context prefix (metadata copy)…
        c.seq_cp(0, 1, 0, Pos::MAX);
        c.seq_cp(0, 2, 0, Pos::MAX);
        // …then the tree: shared root (both branches), two leaves.
        c.alloc(2, &[1, 2]).unwrap();
        c.alloc(3, &[1]).unwrap();
        c.alloc(3, &[2]).unwrap();
        assert_eq!(c.used(), 5);
        // Accept the path down branch 1 (root + its leaf).
        c.branch_commit(0, 1, 1, 2, 2, 4);
        assert_eq!(c.seq_len(0), 4, "canonical gains the accepted path");
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(c.seq_len(2), 0);
        assert_eq!(c.used(), 4, "the rejected leaf is freed");
        assert!(c.check_consistency().is_ok());
    }

    #[test]
    fn branch_rollback_frees_all_tree_cells() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        c.seq_cp(0, 1, 0, Pos::MAX);
        c.seq_cp(0, 2, 0, Pos::MAX);
        c.alloc(1, &[1, 2]).unwrap();
        c.alloc(2, &[2]).unwrap();
        c.branch_rollback(1, 2);
        assert_eq!(c.used(), 1, "only the canonical context survives");
        assert_eq!(c.seq_len(0), 1);
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(c.seq_len(2), 0);
    }

    #[test]
    fn consistency_detects_duplicate_positions() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        assert!(c.check_consistency().is_ok());
        c.alloc(0, &[0]).unwrap();
        assert!(c.check_consistency().is_err());
    }

    #[test]
    fn freed_cells_are_reused() {
        let mut c = KvCache::new(1, 2, 2);
        let a = c.alloc(0, &[1]).unwrap();
        c.alloc(1, &[1]).unwrap();
        c.seq_rm(1, 0, 1);
        let again = c.alloc(5, &[2]).unwrap();
        assert_eq!(a, again, "first-fit must reuse the freed cell");
    }
}
