//! KV cache with llama.cpp-style per-cell sequence metadata.
//!
//! The paper's Pipelined KV Cache Multibuffering (§IV-C) is built entirely on
//! the metadata operations this cache exposes: every cache cell records the
//! token *position* it holds and the *set of sequences* it belongs to, and
//! "copying" entries from one sequence to another only edits that metadata —
//! the attention vectors themselves are shared.  That is what makes the
//! paper's "buffer swap" (copying accepted entries to the canonical sequence
//! and to all free partitions) nearly free.
//!
//! The operations match their llama.cpp namesakes:
//!
//! * [`KvCache::seq_cp`]  — `llama_kv_cache_seq_cp`
//! * [`KvCache::seq_rm`]  — `llama_kv_cache_seq_rm`
//! * [`KvCache::seq_keep`] — `llama_kv_cache_seq_keep`
//!
//! Each pipeline stage owns one `KvCache` covering only its layer range; the
//! metadata commands are forwarded down the pipeline as transactions so every
//! stage applies them in the same order (paper §IV-C3).

use crate::{Pos, SeqId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One pool page worth of K/V storage for one stage's layer range.
///
/// A page holds `tokens_per_page` consecutive cells for every local layer of
/// the owning cache.  Pages are the unit of sharing between requests: a
/// committed prompt prefix is a chain of `Arc<KvPage>`s that any number of
/// caches attach read-only, and the unit of copy-on-write — the first
/// [`KvCache::store`] into a shared page clones it into a private one.
#[derive(Debug, Clone, PartialEq)]
pub struct KvPage {
    /// Per-layer keys: `tokens_per_page * kv_dim` contiguous f32s.
    k: Vec<Vec<f32>>,
    /// Per-layer values, same layout.
    v: Vec<Vec<f32>>,
}

impl KvPage {
    /// A zero-filled page covering `n_layers` layers of `tokens` cells.
    pub fn zeroed(n_layers: usize, kv_dim: usize, tokens: usize) -> Self {
        Self {
            k: vec![vec![0.0; tokens * kv_dim]; n_layers],
            v: vec![vec![0.0; tokens * kv_dim]; n_layers],
        }
    }
}

/// One page slot of a paged cache: absent until first written or attached.
#[derive(Debug, Clone)]
enum PageSlot {
    /// A pool-committed page, possibly attached by several caches.  Reads go
    /// straight through; the first write clones it (copy-on-write).
    Shared(Arc<KvPage>),
    /// A page owned exclusively by this cache; written in place.
    Private(Box<KvPage>),
}

impl PageSlot {
    fn plane(&self) -> &KvPage {
        match self {
            PageSlot::Shared(p) => p,
            PageSlot::Private(p) => p,
        }
    }
}

/// Page-event counters accumulated by a paged cache, drained with
/// [`KvCache::take_events`] so the owning engine can surface them as trace
/// events and `NodeStats` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvCacheEvents {
    /// Private pages materialised on first write.
    pub page_alloc: u64,
    /// Shared pool pages attached instead of recomputed (prefix reuse).
    pub page_share_hit: u64,
    /// Copy-on-write clones of shared pages at divergence points.
    pub page_cow: u64,
    /// Fully-free pages released back at page granularity.
    pub page_release: u64,
}

impl KvCacheEvents {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: KvCacheEvents) {
        self.page_alloc += other.page_alloc;
        self.page_share_hit += other.page_share_hit;
        self.page_cow += other.page_cow;
        self.page_release += other.page_release;
    }

    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != KvCacheEvents::default()
    }
}

/// K/V vector storage behind the cell metadata: one contiguous plane per
/// layer (flat, the default) or demand-allocated refcounted pages (paged).
#[derive(Debug, Clone)]
enum Backing {
    Flat {
        /// Per-layer keys: `capacity * kv_dim` contiguous f32s.
        k: Vec<Vec<f32>>,
        /// Per-layer values, same layout.
        v: Vec<Vec<f32>>,
    },
    Paged {
        tokens_per_page: usize,
        pages: Vec<Option<PageSlot>>,
        /// Returned for reads of never-written cells, mirroring the flat
        /// backing's zero initialisation.
        zero: Vec<f32>,
        events: KvCacheEvents,
    },
}

/// Metadata of one cache cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCell {
    /// Position of the cached token, or -1 if the cell is free.
    pub pos: Pos,
    /// Sequences this cell belongs to; empty means free.
    pub seq_ids: BTreeSet<SeqId>,
}

impl KvCell {
    fn free() -> Self {
        Self {
            pos: -1,
            seq_ids: BTreeSet::new(),
        }
    }

    /// Whether the cell currently holds no entry.
    pub fn is_free(&self) -> bool {
        self.seq_ids.is_empty()
    }

    /// Whether the cell belongs to sequence `seq`.
    pub fn has_seq(&self, seq: SeqId) -> bool {
        self.seq_ids.contains(&seq)
    }
}

/// A KV cache for a contiguous range of decoder layers.
///
/// Layer indices passed to [`KvCache::store`] / [`KvCache::key`] /
/// [`KvCache::value`] are *local* to this cache (0-based within the owning
/// pipeline stage's layer range).
#[derive(Debug, Clone)]
pub struct KvCache {
    n_layers: usize,
    kv_dim: usize,
    capacity: usize,
    cells: Vec<KvCell>,
    backing: Backing,
}

impl KvCache {
    /// Creates an empty cache with room for `capacity` cells covering
    /// `n_layers` layers of key/value dimension `kv_dim`.
    pub fn new(n_layers: usize, kv_dim: usize, capacity: usize) -> Self {
        Self {
            n_layers,
            kv_dim,
            capacity,
            cells: vec![KvCell::free(); capacity],
            backing: Backing::Flat {
                k: vec![vec![0.0; capacity * kv_dim]; n_layers],
                v: vec![vec![0.0; capacity * kv_dim]; n_layers],
            },
        }
    }

    /// Creates an empty cache with demand-allocated paged backing:
    /// `tokens_per_page` consecutive cells share one [`KvPage`].  The cell
    /// metadata, allocation order and `store`/`key`/`value` semantics are
    /// identical to the flat backing — forward passes are unchanged
    /// numerically — but pages can be attached read-only from a
    /// [`crate::kv_pool::KvPagePool`] (prefix sharing) and are cloned on
    /// first write (copy-on-write).
    pub fn new_paged(
        n_layers: usize,
        kv_dim: usize,
        capacity: usize,
        tokens_per_page: usize,
    ) -> Self {
        assert!(tokens_per_page > 0, "tokens_per_page must be positive");
        let n_pages = capacity.div_ceil(tokens_per_page);
        Self {
            n_layers,
            kv_dim,
            capacity,
            cells: vec![KvCell::free(); capacity],
            backing: Backing::Paged {
                tokens_per_page,
                pages: vec![None; n_pages],
                zero: vec![0.0; kv_dim],
                events: KvCacheEvents::default(),
            },
        }
    }

    /// Whether this cache uses paged backing.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged { .. })
    }

    /// Cells per page in paged mode, `None` for the flat backing.
    pub fn tokens_per_page(&self) -> Option<usize> {
        match &self.backing {
            Backing::Paged {
                tokens_per_page, ..
            } => Some(*tokens_per_page),
            Backing::Flat { .. } => None,
        }
    }

    /// Cache capacity in cells.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of layers this cache covers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Key/value vector dimension.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// The cell metadata (read-only).
    pub fn cells(&self) -> &[KvCell] {
        &self.cells
    }

    /// Number of occupied cells.
    pub fn used(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_free()).count()
    }

    /// Number of free cells.
    pub fn free(&self) -> usize {
        self.capacity - self.used()
    }

    /// Allocates one cell for a token at `pos` belonging to `seq_ids`.
    ///
    /// Returns the cell index, or `None` if the cache is full.  First-fit
    /// allocation keeps the behaviour deterministic across pipeline stages:
    /// every stage performs the same allocation calls in the same
    /// (transaction-ordered) sequence and therefore picks the same cells.
    pub fn alloc(&mut self, pos: Pos, seq_ids: &[SeqId]) -> Option<usize> {
        let idx = self.cells.iter().position(|c| c.is_free())?;
        self.cells[idx].pos = pos;
        self.cells[idx].seq_ids = seq_ids.iter().copied().collect();
        Some(idx)
    }

    /// Stores the key/value vectors of `cell` for local layer `layer`.
    ///
    /// In paged mode this materialises the cell's page on first write and
    /// clones a shared (pool-attached) page into a private one before
    /// mutating it — the copy-on-write divergence point.
    pub fn store(&mut self, layer: usize, cell: usize, key: &[f32], value: &[f32]) {
        debug_assert_eq!(key.len(), self.kv_dim);
        debug_assert_eq!(value.len(), self.kv_dim);
        let kv_dim = self.kv_dim;
        let n_layers = self.n_layers;
        match &mut self.backing {
            Backing::Flat { k, v } => {
                let off = cell * kv_dim;
                k[layer][off..off + kv_dim].copy_from_slice(key);
                v[layer][off..off + kv_dim].copy_from_slice(value);
            }
            Backing::Paged {
                tokens_per_page,
                pages,
                events,
                ..
            } => {
                let tpp = *tokens_per_page;
                let slot = &mut pages[cell / tpp];
                match slot {
                    None => {
                        events.page_alloc += 1;
                        *slot = Some(PageSlot::Private(Box::new(KvPage::zeroed(
                            n_layers, kv_dim, tpp,
                        ))));
                    }
                    Some(PageSlot::Shared(arc)) => {
                        events.page_cow += 1;
                        *slot = Some(PageSlot::Private(Box::new((**arc).clone())));
                    }
                    Some(PageSlot::Private(_)) => {}
                }
                let Some(PageSlot::Private(page)) = slot else {
                    unreachable!("slot was just made private");
                };
                let off = (cell % tpp) * kv_dim;
                page.k[layer][off..off + kv_dim].copy_from_slice(key);
                page.v[layer][off..off + kv_dim].copy_from_slice(value);
            }
        }
    }

    /// Key vector of `cell` at local layer `layer`.
    pub fn key(&self, layer: usize, cell: usize) -> &[f32] {
        match &self.backing {
            Backing::Flat { k, .. } => {
                let off = cell * self.kv_dim;
                &k[layer][off..off + self.kv_dim]
            }
            Backing::Paged {
                tokens_per_page,
                pages,
                zero,
                ..
            } => match &pages[cell / tokens_per_page] {
                Some(slot) => {
                    let off = (cell % tokens_per_page) * self.kv_dim;
                    &slot.plane().k[layer][off..off + self.kv_dim]
                }
                None => zero,
            },
        }
    }

    /// Value vector of `cell` at local layer `layer`.
    pub fn value(&self, layer: usize, cell: usize) -> &[f32] {
        match &self.backing {
            Backing::Flat { v, .. } => {
                let off = cell * self.kv_dim;
                &v[layer][off..off + self.kv_dim]
            }
            Backing::Paged {
                tokens_per_page,
                pages,
                zero,
                ..
            } => match &pages[cell / tokens_per_page] {
                Some(slot) => {
                    let off = (cell % tokens_per_page) * self.kv_dim;
                    &slot.plane().v[layer][off..off + self.kv_dim]
                }
                None => zero,
            },
        }
    }

    /// Attaches a committed prefix chain from a page pool: cells `0..span`
    /// are marked occupied at consecutive positions in sequence `seq` and
    /// their pages installed shared (read-only until copy-on-write).  The
    /// cache must be empty and paged.  Prefill for the attached span is
    /// skipped entirely — attention reads the pooled K/V directly.
    pub fn attach_prefix(&mut self, seq: SeqId, shared: &[Arc<KvPage>], span: usize) {
        assert!(span <= self.capacity, "prefix span exceeds cache capacity");
        assert!(
            self.cells.iter().all(|c| c.is_free()),
            "attach_prefix requires an empty cache"
        );
        for (i, cell) in self.cells.iter_mut().enumerate().take(span) {
            cell.pos = i as Pos;
            cell.seq_ids = std::iter::once(seq).collect();
        }
        let Backing::Paged {
            tokens_per_page,
            pages,
            events,
            ..
        } = &mut self.backing
        else {
            panic!("attach_prefix requires paged backing");
        };
        let tpp = *tokens_per_page;
        let n_pages = span.div_ceil(tpp);
        assert!(
            n_pages <= shared.len(),
            "prefix chain too short for span {span}"
        );
        for (slot, page) in pages.iter_mut().zip(shared.iter()).take(n_pages) {
            *slot = Some(PageSlot::Shared(page.clone()));
            events.page_share_hit += 1;
        }
    }

    /// Freezes the first `n_tokens / tokens_per_page` **full** pages into
    /// shared pages and returns the chain, so the owning engine can commit a
    /// freshly-computed prompt prefix into the pool.  Private pages are
    /// promoted in place (subsequent writes to them copy-on-write); pages
    /// never written (possible only for zero-layer caches) are frozen as
    /// zero pages.
    pub fn freeze_prefix(&mut self, n_tokens: usize) -> Vec<Arc<KvPage>> {
        let n_layers = self.n_layers;
        let kv_dim = self.kv_dim;
        let Backing::Paged {
            tokens_per_page,
            pages,
            ..
        } = &mut self.backing
        else {
            panic!("freeze_prefix requires paged backing");
        };
        let tpp = *tokens_per_page;
        let n = (n_tokens / tpp).min(pages.len());
        (0..n)
            .map(|p| {
                let arc = match pages[p].take() {
                    Some(PageSlot::Shared(a)) => a,
                    Some(PageSlot::Private(b)) => Arc::from(b),
                    None => Arc::new(KvPage::zeroed(n_layers, kv_dim, tpp)),
                };
                pages[p] = Some(PageSlot::Shared(arc.clone()));
                arc
            })
            .collect()
    }

    /// Releases pages whose cells are all free (paged mode; no-op for the
    /// flat backing).  Returns the number of pages released.  Called after
    /// `branch_commit`/`branch_rollback`/`seq_keep` so rejected speculation
    /// branches give their tail pages back at page granularity.
    pub fn release_free_pages(&mut self) -> usize {
        let capacity = self.capacity;
        let occupied: Vec<bool> = self.cells.iter().map(|c| !c.is_free()).collect();
        let Backing::Paged {
            tokens_per_page,
            pages,
            events,
            ..
        } = &mut self.backing
        else {
            return 0;
        };
        let tpp = *tokens_per_page;
        let mut released = 0;
        for (p, slot) in pages.iter_mut().enumerate() {
            if slot.is_none() {
                continue;
            }
            let range = p * tpp..((p + 1) * tpp).min(capacity);
            if occupied[range].iter().all(|&o| !o) {
                *slot = None;
                released += 1;
            }
        }
        events.page_release += released as u64;
        released
    }

    /// Drains the page-event counters accumulated since the last call
    /// (always zero for the flat backing).
    pub fn take_events(&mut self) -> KvCacheEvents {
        match &mut self.backing {
            Backing::Paged { events, .. } => std::mem::take(events),
            Backing::Flat { .. } => KvCacheEvents::default(),
        }
    }

    /// Indices of cells visible to a query token belonging to `seq_ids` at
    /// position `pos`: the cell must share at least one sequence with the
    /// query and must not be in the query's future.  This implements the
    /// causal + tree attention mask of speculative verification.
    ///
    /// Allocating convenience for tests and one-off queries only — every
    /// decode-loop call site (the per-token attention loops in
    /// `transformer.rs`) must use [`Self::visible_cells_into`] with the
    /// scratch-arena buffer instead, so attention performs zero visibility
    /// allocations per token.  Audited: no non-test caller of this method
    /// remains in the workspace.
    pub fn visible_cells(&self, seq_ids: &[SeqId], pos: Pos) -> Vec<usize> {
        let mut out = Vec::new();
        self.visible_cells_into(seq_ids, pos, &mut out);
        out
    }

    /// [`Self::visible_cells`] writing into a caller-provided buffer, so the
    /// per-token attention loop can reuse one allocation across the whole
    /// forward pass (the scratch arena holds the buffer).
    pub fn visible_cells_into(&self, seq_ids: &[SeqId], pos: Pos, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    !c.is_free() && c.pos <= pos && seq_ids.iter().any(|s| c.has_seq(*s))
                })
                .map(|(i, _)| i),
        );
    }

    /// Copies sequence `src`'s entries in position range `[p0, p1)` into
    /// sequence `dst` (metadata only; the vectors are shared).
    ///
    /// Passing `p1 = Pos::MAX` copies everything from `p0` onwards.
    pub fn seq_cp(&mut self, src: SeqId, dst: SeqId, p0: Pos, p1: Pos) {
        if src == dst {
            return;
        }
        for cell in &mut self.cells {
            if !cell.is_free() && cell.has_seq(src) && cell.pos >= p0 && cell.pos < p1 {
                cell.seq_ids.insert(dst);
            }
        }
    }

    /// Removes sequence `seq` from cells in position range `[p0, p1)`.
    /// Cells left with no sequence become free.
    pub fn seq_rm(&mut self, seq: SeqId, p0: Pos, p1: Pos) {
        for cell in &mut self.cells {
            if !cell.is_free() && cell.has_seq(seq) && cell.pos >= p0 && cell.pos < p1 {
                cell.seq_ids.remove(&seq);
                if cell.seq_ids.is_empty() {
                    *cell = KvCell::free();
                }
            }
        }
    }

    /// Keeps only sequence `seq`: every other sequence id is dropped and any
    /// cell not belonging to `seq` is freed.
    pub fn seq_keep(&mut self, seq: SeqId) {
        for cell in &mut self.cells {
            if cell.is_free() {
                continue;
            }
            if cell.has_seq(seq) {
                cell.seq_ids.retain(|s| *s == seq);
            } else {
                *cell = KvCell::free();
            }
        }
        self.release_free_pages();
    }

    /// Commits one accepted branch of a speculation tree written under the
    /// dense sequence range `first_seq .. first_seq + n_seqs`: the entries of
    /// `path_seq` (the leaf sequence whose root-to-leaf path contains every
    /// accepted node) in `[p0, p1)` are copied into `dst` (normally the
    /// canonical sequence), then the whole tree is rolled back — every tree
    /// sequence is dropped, freeing the cells of the rejected branches while
    /// the accepted path survives as members of `dst`.
    ///
    /// All of this is metadata-only, which is what makes tree verification's
    /// "keep only the deepest accepted path" nearly free (the same property
    /// the paper's buffer swap relies on).
    pub fn branch_commit(
        &mut self,
        dst: SeqId,
        path_seq: SeqId,
        first_seq: SeqId,
        n_seqs: usize,
        p0: Pos,
        p1: Pos,
    ) {
        self.seq_cp(path_seq, dst, p0, p1);
        self.branch_rollback(first_seq, n_seqs);
        self.debug_check("branch_commit");
    }

    /// Rolls a speculation tree back entirely: every sequence in
    /// `first_seq .. first_seq + n_seqs` is removed from every cell.  Cells
    /// owned only by tree sequences (the speculated tokens) are freed; cells
    /// shared with other sequences (the context prefix each branch was given
    /// via [`KvCache::seq_cp`]) merely lose their tree memberships.
    pub fn branch_rollback(&mut self, first_seq: SeqId, n_seqs: usize) {
        for seq in first_seq..first_seq + n_seqs as SeqId {
            self.seq_rm(seq, 0, Pos::MAX);
        }
        self.release_free_pages();
        self.debug_check("branch_rollback");
    }

    /// Panics (debug builds only) if [`KvCache::check_consistency`] fails —
    /// wired into the branch commit/rollback and page promote/release paths
    /// so refcount bugs fail loudly in CI instead of corrupting streams.
    fn debug_check(&self, _after: &str) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_consistency() {
            panic!("KV cache inconsistent after {_after}: {e}");
        }
    }

    /// Highest position stored for sequence `seq`, or `None` if the sequence
    /// has no entries.
    pub fn seq_max_pos(&self, seq: SeqId) -> Option<Pos> {
        self.cells
            .iter()
            .filter(|c| !c.is_free() && c.has_seq(seq))
            .map(|c| c.pos)
            .max()
    }

    /// Number of cells belonging to sequence `seq`.
    pub fn seq_len(&self, seq: SeqId) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.is_free() && c.has_seq(seq))
            .count()
    }

    /// Frees every cell (and, in paged mode, every page).
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            *cell = KvCell::free();
        }
        self.release_free_pages();
    }

    /// Verifies internal invariants; used by tests and by the ablation that
    /// disables multibuffering (the paper reports that ablation produces
    /// incoherent output — here it produces a detectable invariant failure).
    ///
    /// Invariant checked: for every sequence, positions are unique — a
    /// sequence must never contain two cells with the same position, which is
    /// exactly the corruption that unsynchronised cache sharing causes.
    pub fn check_consistency(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut seen: HashMap<(SeqId, Pos), usize> = HashMap::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.is_free() {
                continue;
            }
            for &s in &cell.seq_ids {
                if let Some(prev) = seen.insert((s, cell.pos), i) {
                    return Err(format!(
                        "sequence {s} has duplicate position {} in cells {prev} and {i}",
                        cell.pos
                    ));
                }
            }
        }
        if let Backing::Paged {
            tokens_per_page,
            pages,
            ..
        } = &self.backing
        {
            if pages.len() != self.capacity.div_ceil(*tokens_per_page) {
                return Err(format!(
                    "paged backing holds {} page slots for capacity {} at {} tokens/page",
                    pages.len(),
                    self.capacity,
                    tokens_per_page
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> KvCache {
        KvCache::new(2, 4, 16)
    }

    #[test]
    fn alloc_first_fit_and_capacity() {
        let mut c = KvCache::new(1, 2, 3);
        assert_eq!(c.alloc(0, &[0]), Some(0));
        assert_eq!(c.alloc(1, &[0]), Some(1));
        assert_eq!(c.alloc(2, &[0]), Some(2));
        assert_eq!(c.alloc(3, &[0]), None);
        assert_eq!(c.used(), 3);
        assert_eq!(c.free(), 0);
    }

    #[test]
    fn store_and_read_back() {
        let mut c = cache();
        let cell = c.alloc(0, &[0]).unwrap();
        c.store(1, cell, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(c.key(1, cell), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.value(1, cell), &[5.0, 6.0, 7.0, 8.0]);
        // Layer 0 untouched.
        assert_eq!(c.key(0, cell), &[0.0; 4]);
    }

    #[test]
    fn visibility_is_causal() {
        let mut c = cache();
        let a = c.alloc(0, &[0]).unwrap();
        let b = c.alloc(1, &[0]).unwrap();
        let vis = c.visible_cells(&[0], 0);
        assert!(vis.contains(&a) && !vis.contains(&b));
        let vis1 = c.visible_cells(&[0], 1);
        assert!(vis1.contains(&a) && vis1.contains(&b));
    }

    #[test]
    fn visibility_respects_sequences() {
        let mut c = cache();
        let shared = c.alloc(0, &[1, 2]).unwrap();
        let only1 = c.alloc(1, &[1]).unwrap();
        let only2 = c.alloc(1, &[2]).unwrap();
        let vis_seq1 = c.visible_cells(&[1], 5);
        assert!(vis_seq1.contains(&shared));
        assert!(vis_seq1.contains(&only1));
        assert!(!vis_seq1.contains(&only2));
        // A query in a different sequence entirely sees nothing.
        assert!(c.visible_cells(&[7], 5).is_empty());
    }

    #[test]
    fn seq_cp_shares_cells_without_duplicating() {
        let mut c = cache();
        for p in 0..4 {
            c.alloc(p, &[0]).unwrap();
        }
        c.seq_cp(0, 3, 0, 2);
        assert_eq!(c.seq_len(3), 2);
        assert_eq!(c.used(), 4, "copy must not allocate new cells");
        assert_eq!(c.seq_max_pos(3), Some(1));
    }

    #[test]
    fn seq_cp_to_same_sequence_is_noop() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        c.seq_cp(0, 0, 0, Pos::MAX);
        assert_eq!(c.seq_len(0), 1);
    }

    #[test]
    fn seq_rm_frees_orphan_cells() {
        let mut c = cache();
        c.alloc(0, &[1]).unwrap();
        c.alloc(1, &[1, 2]).unwrap();
        c.seq_rm(1, 0, Pos::MAX);
        assert_eq!(c.seq_len(1), 0);
        // Cell shared with seq 2 survives; the seq-1-only cell is freed.
        assert_eq!(c.used(), 1);
        assert_eq!(c.seq_len(2), 1);
    }

    #[test]
    fn seq_rm_respects_position_range() {
        let mut c = cache();
        for p in 0..5 {
            c.alloc(p, &[0]).unwrap();
        }
        c.seq_rm(0, 2, 4);
        assert_eq!(c.seq_len(0), 3);
        assert_eq!(c.seq_max_pos(0), Some(4));
    }

    #[test]
    fn seq_keep_drops_everything_else() {
        let mut c = cache();
        c.alloc(0, &[0, 5]).unwrap();
        c.alloc(1, &[5]).unwrap();
        c.alloc(2, &[7]).unwrap();
        c.seq_keep(5);
        assert_eq!(c.seq_len(5), 2);
        assert_eq!(c.seq_len(0), 0);
        assert_eq!(c.seq_len(7), 0);
        assert_eq!(c.used(), 2);
    }

    #[test]
    fn max_pos_and_clear() {
        let mut c = cache();
        assert_eq!(c.seq_max_pos(0), None);
        c.alloc(3, &[0]).unwrap();
        c.alloc(9, &[0]).unwrap();
        assert_eq!(c.seq_max_pos(0), Some(9));
        c.clear();
        assert_eq!(c.used(), 0);
        assert_eq!(c.seq_max_pos(0), None);
    }

    #[test]
    fn branch_commit_keeps_accepted_path_and_frees_rest() {
        let mut c = cache();
        // Canonical context at positions 0..2.
        c.alloc(0, &[0]).unwrap();
        c.alloc(1, &[0]).unwrap();
        // Each branch gets the context prefix (metadata copy)…
        c.seq_cp(0, 1, 0, Pos::MAX);
        c.seq_cp(0, 2, 0, Pos::MAX);
        // …then the tree: shared root (both branches), two leaves.
        c.alloc(2, &[1, 2]).unwrap();
        c.alloc(3, &[1]).unwrap();
        c.alloc(3, &[2]).unwrap();
        assert_eq!(c.used(), 5);
        // Accept the path down branch 1 (root + its leaf).
        c.branch_commit(0, 1, 1, 2, 2, 4);
        assert_eq!(c.seq_len(0), 4, "canonical gains the accepted path");
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(c.seq_len(2), 0);
        assert_eq!(c.used(), 4, "the rejected leaf is freed");
        assert!(c.check_consistency().is_ok());
    }

    #[test]
    fn branch_rollback_frees_all_tree_cells() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        c.seq_cp(0, 1, 0, Pos::MAX);
        c.seq_cp(0, 2, 0, Pos::MAX);
        c.alloc(1, &[1, 2]).unwrap();
        c.alloc(2, &[2]).unwrap();
        c.branch_rollback(1, 2);
        assert_eq!(c.used(), 1, "only the canonical context survives");
        assert_eq!(c.seq_len(0), 1);
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(c.seq_len(2), 0);
    }

    #[test]
    fn consistency_detects_duplicate_positions() {
        let mut c = cache();
        c.alloc(0, &[0]).unwrap();
        assert!(c.check_consistency().is_ok());
        c.alloc(0, &[0]).unwrap();
        assert!(c.check_consistency().is_err());
    }

    #[test]
    fn freed_cells_are_reused() {
        let mut c = KvCache::new(1, 2, 2);
        let a = c.alloc(0, &[1]).unwrap();
        c.alloc(1, &[1]).unwrap();
        c.seq_rm(1, 0, 1);
        let again = c.alloc(5, &[2]).unwrap();
        assert_eq!(a, again, "first-fit must reuse the freed cell");
    }

    // --- paged backing ---

    fn paged() -> KvCache {
        KvCache::new_paged(2, 4, 16, 4)
    }

    #[test]
    fn paged_store_and_read_back_matches_flat() {
        let mut flat = cache();
        let mut pgd = paged();
        for (p, kv) in [(0i32, 1.0f32), (1, 2.0), (2, 3.0)] {
            let cf = flat.alloc(p, &[0]).unwrap();
            let cp = pgd.alloc(p, &[0]).unwrap();
            assert_eq!(cf, cp, "allocation order must be identical");
            let row = [kv; 4];
            flat.store(0, cf, &row, &row);
            pgd.store(0, cp, &row, &row);
        }
        for cell in 0..3 {
            assert_eq!(flat.key(0, cell), pgd.key(0, cell));
            assert_eq!(flat.value(0, cell), pgd.value(0, cell));
        }
        // Unwritten cells read zeros in both backings.
        assert_eq!(pgd.key(1, 0), &[0.0; 4]);
        assert_eq!(pgd.key(0, 9), &[0.0; 4]);
    }

    #[test]
    fn paged_events_count_alloc_and_release() {
        let mut c = paged();
        for p in 0..5 {
            let cell = c.alloc(p, &[1]).unwrap();
            c.store(0, cell, &[1.0; 4], &[1.0; 4]);
        }
        let ev = c.take_events();
        assert_eq!(ev.page_alloc, 2, "5 tokens at 4/page touch 2 pages");
        c.seq_rm(1, 4, Pos::MAX);
        assert_eq!(c.release_free_pages(), 1, "the tail page is now empty");
        assert_eq!(c.take_events().page_release, 1);
    }

    #[test]
    fn attach_freeze_and_cow_roundtrip() {
        // Writer computes a 8-token prefix and freezes it.
        let mut writer = paged();
        for p in 0..8 {
            let cell = writer.alloc(p, &[0]).unwrap();
            writer.store(0, cell, &[p as f32; 4], &[p as f32 + 0.5; 4]);
            writer.store(1, cell, &[-(p as f32); 4], &[0.0; 4]);
        }
        let chain = writer.freeze_prefix(8);
        assert_eq!(chain.len(), 2);

        // Reader attaches the chain: no store calls, identical reads.
        let mut reader = paged();
        reader.attach_prefix(0, &chain, 8);
        assert_eq!(reader.used(), 8);
        assert_eq!(reader.seq_max_pos(0), Some(7));
        for cell in 0..8 {
            assert_eq!(reader.key(0, cell), writer.key(0, cell));
            assert_eq!(reader.value(0, cell), writer.value(0, cell));
            assert_eq!(reader.key(1, cell), writer.key(1, cell));
        }
        let ev = reader.take_events();
        assert_eq!(ev.page_share_hit, 2);
        assert_eq!(ev.page_alloc, 0, "attached prefix allocates nothing");

        // Divergence: the reader's first write into a shared page clones it
        // and must not disturb the writer's (pooled) copy.
        let cell = reader.alloc(8, &[0]).unwrap();
        assert_eq!(cell, 8, "first free cell follows the prefix");
        reader.seq_rm(0, 7, 8); // free cell 7 inside the shared tail page…
        let c7 = reader.alloc(7, &[0]).unwrap(); // …and rewrite it
        reader.store(0, c7, &[99.0; 4], &[99.0; 4]);
        assert_eq!(reader.take_events().page_cow, 1);
        assert_eq!(reader.key(0, 7), &[99.0; 4]);
        assert_eq!(writer.key(0, 7), &[7.0; 4], "shared page is untouched");
    }

    #[test]
    fn paged_branch_rollback_releases_tree_pages() {
        let mut c = paged();
        // Canonical prefix fills page 0 exactly.
        for p in 0..4 {
            let cell = c.alloc(p, &[0]).unwrap();
            c.store(0, cell, &[1.0; 4], &[1.0; 4]);
        }
        c.seq_cp(0, 1, 0, Pos::MAX);
        // The branch writes into a fresh page.
        for p in 4..8 {
            let cell = c.alloc(p, &[1]).unwrap();
            c.store(0, cell, &[2.0; 4], &[2.0; 4]);
        }
        let _ = c.take_events();
        c.branch_rollback(1, 1);
        let ev = c.take_events();
        assert_eq!(ev.page_release, 1, "the branch-only page is released");
        assert_eq!(c.used(), 4);
        assert!(c.check_consistency().is_ok());
    }

    #[test]
    fn partial_attach_span_leaves_tail_cells_free() {
        let mut writer = paged();
        for p in 0..8 {
            let cell = writer.alloc(p, &[0]).unwrap();
            writer.store(0, cell, &[p as f32; 4], &[p as f32; 4]);
        }
        let chain = writer.freeze_prefix(8);
        let mut reader = paged();
        // Attach only 6 of the 8 cached tokens (span capped below a page
        // boundary, as the heads do to keep at least one prompt token live).
        reader.attach_prefix(0, &chain, 6);
        assert_eq!(reader.used(), 6);
        let next = reader.alloc(6, &[0]).unwrap();
        assert_eq!(next, 6, "cell 6 is free inside the attached page");
        reader.store(0, next, &[50.0; 4], &[50.0; 4]);
        assert_eq!(reader.take_events().page_cow, 1);
        assert_eq!(
            reader.key(0, 5),
            &[5.0; 4],
            "attached cells keep pooled data"
        );
        assert_eq!(reader.key(0, 6), &[50.0; 4]);
    }
}

#[cfg(test)]
mod paged_props {
    use super::*;
    use proptest::prelude::*;

    /// The deterministic row a writer stores for layer `l`, position `p`.
    fn row(l: usize, p: usize, salt: f32) -> [f32; 4] {
        [p as f32 + 100.0 * l as f32 + salt; 4]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Copy-on-write isolation: a reader attached to a frozen prefix
        /// chain sees the writer's data bit-for-bit over any attach span,
        /// and however the reader then mutates cells inside the shared
        /// pages, the writer's (pooled) copies never change — the refcount
        /// on a shared page forces divergent writes onto private clones.
        #[test]
        fn prop_cow_isolates_shared_pages_for_any_span(
            writer_len in 4usize..16,
            span_pick in 0usize..64,
            rewrites in proptest::collection::vec(0u32..12, 1..8),
        ) {
            let paged = || KvCache::new_paged(2, 4, 16, 4);
            let mut writer = paged();
            for p in 0..writer_len {
                let cell = writer.alloc(p as Pos, &[0]).unwrap();
                writer.store(0, cell, &row(0, p, 0.0), &row(0, p, 0.5));
                writer.store(1, cell, &row(1, p, 0.0), &row(1, p, 0.5));
            }
            let chain = writer.freeze_prefix(writer_len);
            let full_span = chain.len() * 4;
            prop_assert_eq!(full_span, writer_len / 4 * 4);
            prop_assert!(full_span >= 4, "writer_len >= 4 freezes at least one page");
            let span = span_pick % full_span + 1;

            let mut reader = paged();
            reader.attach_prefix(0, &chain, span);
            for cell in 0..span {
                prop_assert_eq!(reader.key(0, cell), writer.key(0, cell));
                prop_assert_eq!(reader.value(0, cell), writer.value(0, cell));
                prop_assert_eq!(reader.key(1, cell), writer.key(1, cell));
            }

            // The reader mutates cells at and behind the attach boundary —
            // every store into a shared page must copy it first.
            let mut next_pos = span;
            for r in rewrites {
                let target = r as usize % (span + 2);
                if target < span {
                    // Rewrite an attached cell in place.
                    reader.seq_rm(0, target as Pos, target as Pos + 1);
                    let cell = reader.alloc(target as Pos, &[0]).unwrap();
                    reader.store(0, cell, &[777.0; 4], &[777.0; 4]);
                } else if next_pos < 16 {
                    // Extend past the prefix (may land in the shared tail
                    // page when the span is not page-aligned).
                    let cell = reader.alloc(next_pos as Pos, &[0]).unwrap();
                    reader.store(0, cell, &[888.0; 4], &[888.0; 4]);
                    next_pos += 1;
                }
            }
            prop_assert!(reader.check_consistency().is_ok());
            prop_assert!(writer.check_consistency().is_ok());

            // However the reader diverged, the writer's frozen pages are
            // bit-identical to what it stored.
            for p in 0..writer_len {
                prop_assert_eq!(writer.key(0, p), &row(0, p, 0.0)[..]);
                prop_assert_eq!(writer.value(0, p), &row(0, p, 0.5)[..]);
                prop_assert_eq!(writer.key(1, p), &row(1, p, 0.0)[..]);
                prop_assert_eq!(writer.value(1, p), &row(1, p, 0.5)[..]);
            }
        }
    }
}
