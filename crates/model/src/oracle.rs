//! Synthetic "alignment oracle" models.
//!
//! The figure benchmarks reproduce the paper's evaluation at 70B–180B scale,
//! where real weights cannot be materialised.  What the scheduling algorithms
//! need from a model at that scale is only *token dynamics*: which token the
//! target would emit next, which token the draft proposes, and how confident
//! the draft is.  The oracles provide exactly that:
//!
//! * [`OracleTarget`] — a deterministic hash-based next-token function.  Its
//!   output depends on the recent context, so different prompts genuinely
//!   diverge, but it costs nanoseconds per call.
//! * [`OracleDraft`] — proposes the target's true next token with a
//!   configurable probability (the *alignment* / acceptance rate from the
//!   paper: 79 %, 66 %, 52 %, …) and a plausible confidence value, again
//!   deterministically from the context hash.
//!
//! Because the draws are pure functions of (seed, context), every inference
//! strategy sees exactly the same agreement pattern for the same generated
//! prefix — which is the property that lets the benches compare strategies
//! fairly, and the property greedy sampling gives the paper's authors.

use crate::Token;

fn fnv1a(seed: u64, data: &[u32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for &d in data {
        for b in d.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Deterministic synthetic target model operating purely on token ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleTarget {
    seed: u64,
    vocab: u32,
    /// How many trailing context tokens influence the next token.
    context_window: usize,
}

impl OracleTarget {
    /// Creates a target oracle.
    pub fn new(seed: u64, vocab: u32) -> Self {
        Self {
            seed,
            vocab,
            context_window: 8,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// The target model's (deterministic) next token given the full context.
    pub fn next_token(&self, context: &[Token]) -> Token {
        let start = context.len().saturating_sub(self.context_window);
        let h = fnv1a(self.seed, &context[start..]);
        (h % self.vocab as u64) as Token
    }

    /// Generates `n` tokens autoregressively from `prompt` (greedy, i.e. the
    /// deterministic oracle next-token at every step).
    pub fn generate(&self, prompt: &[Token], n: usize) -> Vec<Token> {
        let mut ctx = prompt.to_vec();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.next_token(&ctx);
            ctx.push(t);
            out.push(t);
        }
        out
    }
}

/// Deterministic synthetic draft model with a configurable alignment to a
/// target oracle.
///
/// Two properties of real draft models are reproduced because the paper's
/// mechanisms depend on them:
///
/// * **Bursty agreement** — real drafts agree with the target in long easy
///   spans and fail in clusters around hard spots.  Agreement here is
///   modulated by a per-position-block "difficulty" value, keeping the
///   long-run average at the configured alignment while producing runs of
///   hits and misses.
/// * **Informative confidence** — the draft's max-softmax confidence is
///   higher when it agrees with the target, so confidence-cutoff gating
///   (paper §II-A1, §IV-B2) meaningfully filters speculation quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleDraft {
    seed: u64,
    vocab: u32,
    /// Long-run probability that a drafted token matches the target's next
    /// token.
    alignment: f64,
    /// Half-width of the per-block difficulty modulation.
    burstiness: f64,
    /// Probability that, when the draft's top-1 proposal misses the target,
    /// the next-ranked candidate recovers the true token (decaying
    /// geometrically with rank).  Mirrors the top-k behaviour of real draft
    /// models, whose second choice is often right when the first is wrong —
    /// the property tree speculation exploits.
    recovery: f64,
    context_window: usize,
}

impl OracleDraft {
    /// Creates a draft oracle with the given per-token alignment probability.
    pub fn new(seed: u64, vocab: u32, alignment: f64) -> Self {
        Self {
            seed,
            vocab,
            alignment: alignment.clamp(0.0, 1.0),
            burstiness: 0.35,
            recovery: 0.5,
            context_window: 8,
        }
    }

    /// Overrides the burstiness (0.0 makes agreement draws independent and
    /// identically distributed).
    pub fn with_burstiness(mut self, burstiness: f64) -> Self {
        self.burstiness = burstiness.clamp(0.0, 0.5);
        self
    }

    /// Overrides the top-k recovery probability (0.0 makes every non-top-1
    /// candidate a guaranteed miss, so trees gain nothing over chains).
    pub fn with_recovery(mut self, recovery: f64) -> Self {
        self.recovery = recovery.clamp(0.0, 1.0);
        self
    }

    /// The local acceptance probability at a given position, modulated by the
    /// position-block difficulty.  Exact 0.0 / 1.0 alignments stay exact.
    fn local_alignment(&self, position: usize) -> f64 {
        if self.alignment <= 0.0 || self.alignment >= 1.0 || self.burstiness == 0.0 {
            return self.alignment;
        }
        let block = (position / 8) as u32;
        let h = fnv1a(self.seed ^ 0xb10c, &[block]);
        let r = (h >> 11) as f64 / (1u64 << 53) as f64;
        (self.alignment + self.burstiness * (2.0 * r - 1.0)).clamp(0.02, 0.98)
    }

    /// The configured alignment (per-token acceptance probability).
    pub fn alignment(&self) -> f64 {
        self.alignment
    }

    /// A uniform value in `[0, 1)` derived from the context; used both for
    /// the agreement draw and to synthesise a confidence value.
    fn unit_draw(&self, context: &[Token], salt: u64) -> f64 {
        let start = context.len().saturating_sub(self.context_window);
        let h = fnv1a(self.seed ^ salt, &context[start..]);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The token the draft model proposes given the context and the target's
    /// true next token: the true token with probability `alignment`
    /// (modulated by the local difficulty), and a deterministic *different*
    /// token otherwise.
    pub fn draft_token(&self, context: &[Token], true_next: Token) -> Token {
        if self.unit_draw(context, 0x5eed) < self.local_alignment(context.len()) {
            true_next
        } else {
            let h = fnv1a(self.seed ^ 0xd1ff, context);
            let offset = 1 + (h % (self.vocab as u64 - 1).max(1)) as Token;
            (true_next + offset) % self.vocab
        }
    }

    /// The draft model's confidence in its proposal (max softmax probability
    /// analogue).  Confidence is higher on average when the draft agrees with
    /// the target, which is what makes the confidence-cutoff mechanisms in
    /// speculation behave realistically.
    pub fn confidence(&self, context: &[Token], agrees: bool) -> f32 {
        let u = self.unit_draw(context, 0xc0fd) as f32;
        if agrees {
            0.45 + 0.55 * u
        } else {
            0.15 + 0.60 * u
        }
    }

    /// The draft model's top-`k` candidates for the token following
    /// `context`, best first, each with a confidence value.
    ///
    /// Candidate 0 is exactly [`OracleDraft::draft_token`].  When it misses
    /// the target's true token, each following candidate recovers the truth
    /// with probability `recovery` (conditioned on every better-ranked
    /// candidate having missed), so wider speculation trees hedge against
    /// top-1 misses the way real top-k drafting does.  All candidates are
    /// distinct, and confidences decay with rank.
    pub fn draft_topk(&self, context: &[Token], true_next: Token, k: usize) -> Vec<(Token, f32)> {
        let mut out: Vec<(Token, f32)> = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        let first = self.draft_token(context, true_next);
        let mut truth_placed = first == true_next;
        out.push((first, self.confidence(context, truth_placed)));
        for rank in 1..k {
            let hit = !truth_placed
                && self.unit_draw(context, 0x70b1 ^ (rank as u64) << 8) < self.recovery;
            let tok = if hit {
                truth_placed = true;
                true_next
            } else {
                // Deterministic filler, kept distinct from the truth and from
                // every better-ranked candidate.  A tiny vocabulary can run
                // out of distinct non-truth tokens; stop early rather than
                // spin (the tree is simply narrower than requested).
                if out.len() + 1 >= self.vocab as usize {
                    break;
                }
                let h = fnv1a(self.seed ^ 0xa172 ^ ((rank as u64) << 16), context);
                let mut t = (h % self.vocab as u64) as Token;
                while t == true_next || out.iter().any(|(p, _)| *p == t) {
                    t = (t + 1) % self.vocab;
                }
                t
            };
            let conf = self.confidence(context, hit) * 0.8f32.powi(rank as i32);
            out.push((tok, conf));
        }
        out
    }

    /// Convenience: drafts a chain of `n` tokens following `context`,
    /// returning `(token, confidence)` pairs, alongside the target's true
    /// continuation (needed by the caller to keep drafting coherent).
    pub fn draft_chain(
        &self,
        target: &OracleTarget,
        context: &[Token],
        n: usize,
    ) -> Vec<(Token, f32)> {
        let mut ctx = context.to_vec();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let true_next = target.next_token(&ctx);
            let tok = self.draft_token(&ctx, true_next);
            let conf = self.confidence(&ctx, tok == true_next);
            out.push((tok, conf));
            // The draft continues from *its own* proposal (it does not know
            // the target's choice), exactly like a real speculative model.
            ctx.push(tok);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_is_deterministic_and_context_sensitive() {
        let t = OracleTarget::new(1, 32000);
        assert_eq!(t.next_token(&[1, 2, 3]), t.next_token(&[1, 2, 3]));
        assert_ne!(t.next_token(&[1, 2, 3]), t.next_token(&[1, 2, 4]));
    }

    #[test]
    fn target_generate_extends_context() {
        let t = OracleTarget::new(2, 1000);
        let g = t.generate(&[5, 6], 10);
        assert_eq!(g.len(), 10);
        assert!(g.iter().all(|&x| x < 1000));
        // Re-generating gives the same sequence.
        assert_eq!(g, t.generate(&[5, 6], 10));
    }

    #[test]
    fn draft_alignment_one_always_agrees() {
        let t = OracleTarget::new(3, 32000);
        let d = OracleDraft::new(4, 32000, 1.0);
        let mut ctx = vec![1, 2, 3];
        for _ in 0..50 {
            let truth = t.next_token(&ctx);
            assert_eq!(d.draft_token(&ctx, truth), truth);
            ctx.push(truth);
        }
    }

    #[test]
    fn draft_alignment_zero_never_agrees() {
        let t = OracleTarget::new(3, 32000);
        let d = OracleDraft::new(4, 32000, 0.0);
        let mut ctx = vec![1, 2, 3];
        for _ in 0..50 {
            let truth = t.next_token(&ctx);
            assert_ne!(d.draft_token(&ctx, truth), truth);
            ctx.push(truth);
        }
    }

    #[test]
    fn empirical_alignment_tracks_configuration() {
        let t = OracleTarget::new(10, 32000);
        let d = OracleDraft::new(11, 32000, 0.7).with_burstiness(0.0);
        let mut ctx = vec![42];
        let mut agree = 0;
        let n = 2000;
        for i in 0..n {
            let truth = t.next_token(&ctx);
            if d.draft_token(&ctx, truth) == truth {
                agree += 1;
            }
            ctx.push(truth);
            if ctx.len() > 64 {
                ctx.drain(..32);
            }
            // Perturb context so draws are not all identical.
            ctx.push((i % 97) as Token);
        }
        let rate = agree as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.09, "empirical alignment {rate}");
    }

    #[test]
    fn confidence_ranges() {
        let d = OracleDraft::new(5, 1000, 0.5);
        let c_agree = d.confidence(&[1, 2], true);
        let c_disagree = d.confidence(&[1, 2], false);
        assert!((0.45..=1.0).contains(&c_agree));
        assert!((0.15..=0.75).contains(&c_disagree));
    }

    #[test]
    fn agreement_is_bursty_but_calibrated() {
        // With burstiness, the per-block local alignment varies but the
        // long-run mean stays close to the configured value.
        let d = OracleDraft::new(12, 1000, 0.6);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        let mut sum = 0.0;
        let blocks = 400;
        for b in 0..blocks {
            let a = d.local_alignment(b * 8);
            lo = lo.min(a);
            hi = hi.max(a);
            sum += a;
        }
        assert!(hi - lo > 0.2, "difficulty must vary across blocks");
        let mean = sum / blocks as f64;
        assert!((mean - 0.6).abs() < 0.05, "mean local alignment {mean}");
        // Burstiness can be disabled.
        let flat = OracleDraft::new(12, 1000, 0.6).with_burstiness(0.0);
        assert_eq!(flat.local_alignment(0), 0.6);
        assert_eq!(flat.local_alignment(800), 0.6);
    }

    #[test]
    fn draft_chain_length_and_determinism() {
        let t = OracleTarget::new(6, 500);
        let d = OracleDraft::new(7, 500, 0.8);
        let a = d.draft_chain(&t, &[9, 8, 7], 6);
        let b = d.draft_chain(&t, &[9, 8, 7], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a
            .iter()
            .all(|(tok, conf)| *tok < 500 && *conf > 0.0 && *conf <= 1.0));
    }

    #[test]
    fn alignment_is_clamped() {
        assert_eq!(OracleDraft::new(0, 10, 1.7).alignment(), 1.0);
        assert_eq!(OracleDraft::new(0, 10, -0.3).alignment(), 0.0);
    }

    #[test]
    fn topk_candidates_are_distinct_and_start_with_top1() {
        let t = OracleTarget::new(8, 500);
        let d = OracleDraft::new(9, 500, 0.5);
        let mut ctx = vec![1, 2, 3];
        for _ in 0..40 {
            let truth = t.next_token(&ctx);
            let topk = d.draft_topk(&ctx, truth, 4);
            assert_eq!(topk.len(), 4);
            assert_eq!(topk[0].0, d.draft_token(&ctx, truth));
            let tokens: Vec<_> = topk.iter().map(|(tok, _)| *tok).collect();
            for (i, a) in tokens.iter().enumerate() {
                assert!(!tokens[i + 1..].contains(a), "duplicate candidate {a}");
            }
            // The truth appears at most once across the candidates.
            assert!(tokens.iter().filter(|&&x| x == truth).count() <= 1);
            ctx.push(truth);
        }
    }

    #[test]
    fn topk_terminates_on_tiny_vocabularies() {
        // With vocab 2 there may be no distinct filler left once the top-1
        // candidate missed; the list must come back short, not hang.
        for vocab in [1u32, 2, 3] {
            let t = OracleTarget::new(3, vocab);
            let d = OracleDraft::new(4, vocab, 0.3).with_recovery(0.0);
            let mut ctx = vec![0];
            for _ in 0..30 {
                let truth = t.next_token(&ctx);
                let topk = d.draft_topk(&ctx, truth, 4);
                assert!(!topk.is_empty() && topk.len() <= 4);
                let tokens: Vec<_> = topk.iter().map(|(tok, _)| *tok).collect();
                for (i, a) in tokens.iter().enumerate() {
                    assert!(!tokens[i + 1..].contains(a));
                }
                ctx.push(truth);
            }
        }
    }

    #[test]
    fn topk_recovery_rescues_misses_at_the_configured_rate() {
        let t = OracleTarget::new(11, 32000);
        let d = OracleDraft::new(12, 32000, 0.4).with_burstiness(0.0);
        let mut ctx = vec![5];
        let (mut misses, mut rescued) = (0usize, 0usize);
        for i in 0..3000u32 {
            let truth = t.next_token(&ctx);
            let topk = d.draft_topk(&ctx, truth, 2);
            if topk[0].0 != truth {
                misses += 1;
                if topk[1].0 == truth {
                    rescued += 1;
                }
            }
            ctx.push(truth);
            ctx.push(i % 89);
            if ctx.len() > 64 {
                ctx.drain(..32);
            }
        }
        let rate = rescued as f64 / misses as f64;
        assert!((rate - 0.5).abs() < 0.08, "second-choice recovery {rate}");
        // With recovery disabled, the second candidate never hits.
        let none = OracleDraft::new(12, 32000, 0.4).with_recovery(0.0);
        let mut ctx = vec![5, 6, 7];
        for _ in 0..200 {
            let truth = t.next_token(&ctx);
            let topk = none.draft_topk(&ctx, truth, 3);
            for (tok, _) in &topk[1..] {
                assert_ne!(*tok, truth);
            }
            ctx.push(truth);
        }
    }
}
