//! Inference batches.
//!
//! A [`Batch`] is the unit of work submitted to a pipeline: a set of tokens,
//! each with a position, a set of sequence identifiers it belongs to, and a
//! flag saying whether logits must be produced for it.  This mirrors
//! llama.cpp's `llama_batch`, which is what both the speculative-inference
//! baseline and PipeInfer drive their pipelines with.

use crate::{Pos, SeqId, Token};

/// One token's worth of batch metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// The token id.
    pub token: Token,
    /// Position of the token within its sequence(s).
    pub pos: Pos,
    /// Sequences this token belongs to.  A token shared by several branches
    /// of a speculation tree lists every branch's sequence id.
    pub seq_ids: Vec<SeqId>,
    /// Whether the model must return logits for this token.
    pub logits: bool,
    /// KV-cache lane this entry is stored into and attends over.  Single
    /// requests use lane 0 (the default everywhere); a *forest* batch built
    /// by [`Batch::append_lane`] gives each fused request its own lane, so
    /// positions and sequence ids are interpreted per lane and identical
    /// (pos, seq) pairs in different lanes never alias.  Lanes are
    /// process-local scheduling metadata: they are not serialized by
    /// [`Batch::wire_bytes`] because forest batches never cross the wire.
    pub lane: usize,
}

/// A batch of tokens submitted to the model as one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    entries: Vec<BatchEntry>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch holding a single token in a single sequence, with
    /// logits requested — the shape of every non-speculative decode step.
    pub fn single(token: Token, pos: Pos, seq: SeqId) -> Self {
        let mut b = Self::new();
        b.push(token, pos, vec![seq], true);
        b
    }

    /// Creates a prompt-processing batch: all tokens in sequence `seq` at
    /// consecutive positions starting from `start_pos`, logits only for the
    /// last token.
    pub fn prompt(tokens: &[Token], start_pos: Pos, seq: SeqId) -> Self {
        let mut b = Self::new();
        for (i, &t) in tokens.iter().enumerate() {
            let last = i + 1 == tokens.len();
            b.push(t, start_pos + i as Pos, vec![seq], last);
        }
        b
    }

    /// Appends a token to the batch in lane 0.
    pub fn push(&mut self, token: Token, pos: Pos, seq_ids: Vec<SeqId>, logits: bool) {
        self.entries.push(BatchEntry {
            token,
            pos,
            seq_ids,
            logits,
            lane: 0,
        });
    }

    /// Appends every entry of `sub` re-homed into `lane`, preserving order.
    ///
    /// This is how a cohort scheduler fuses per-request sub-batches into one
    /// forest batch: each request keeps its own positions and sequence ids
    /// (both are lane-local), and [`Batch::level_groups`] keeps same-lane
    /// ordering constraints while treating cross-lane entries as
    /// independent.
    pub fn append_lane(&mut self, sub: &Batch, lane: usize) {
        self.entries
            .extend(sub.entries.iter().map(|e| BatchEntry { lane, ..e.clone() }));
    }

    /// One past the largest lane index in the batch (0 for an empty batch):
    /// the minimum length of the per-lane cache slice a fused forward needs.
    /// Cohort schedulers assign dense lanes, so this doubles as the cohort
    /// width of a forest batch.
    pub fn lane_count(&self) -> usize {
        self.entries.iter().map(|e| e.lane + 1).max().unwrap_or(0)
    }

    /// Number of tokens in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over the batch entries.
    pub fn iter(&self) -> impl Iterator<Item = &BatchEntry> {
        self.entries.iter()
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// Indices of entries for which logits were requested.
    pub fn logit_indices(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| if e.logits { Some(i) } else { None })
            .collect()
    }

    /// Largest token position in the batch, if any.
    pub fn max_pos(&self) -> Option<Pos> {
        self.entries.iter().map(|e| e.pos).max()
    }

    /// Smallest token position in the batch, if any.
    pub fn min_pos(&self) -> Option<Pos> {
        self.entries.iter().map(|e| e.pos).min()
    }

    /// All tokens in batch order.
    pub fn tokens(&self) -> Vec<Token> {
        self.entries.iter().map(|e| e.token).collect()
    }

    /// Splits the batch into maximal contiguous runs of entries that can be
    /// evaluated **together** — all of a run's K/V cells stored before any of
    /// its attention — without changing what any entry attends over.
    ///
    /// Sequentially, entry `i` never sees the cell of a later entry `j`
    /// because it is not stored yet.  With the whole run stored up front,
    /// `i` would see `j`'s cell exactly when the cache's visibility filter
    /// admits it: `pos_j <= pos_i` and the two entries share a sequence.  A
    /// run is therefore safe iff no earlier member satisfies that predicate
    /// against a later one — which holds for the two shapes the engines
    /// actually submit: prompts (strictly increasing positions in one
    /// sequence) and speculation trees laid out parents-before-children
    /// (children have strictly larger positions than ancestors; same-level
    /// siblings share a position but belong to mutually exclusive branch
    /// sequences).  Both collapse into a single run, so every projection in
    /// the forward pass becomes one `m = len` GEMM that streams the weights
    /// once for the whole batch.  Pathological orderings fall back to more,
    /// smaller runs and stay correct.
    ///
    /// Entries in different **lanes** never conflict: each lane stores into
    /// and attends over its own KV cache, so positions and sequence ids are
    /// lane-local and a *forest* of per-request trees collapses into one run
    /// exactly the way a single tree does — the cross-request fused GEMM of
    /// iteration-level batching.
    pub fn level_groups(&self) -> Vec<std::ops::Range<usize>> {
        let mut groups = Vec::new();
        let mut start = 0;
        for j in 1..self.entries.len() {
            let e = &self.entries[j];
            let conflict = self.entries[start..j].iter().any(|p| {
                e.lane == p.lane
                    && e.pos <= p.pos
                    && e.seq_ids.iter().any(|s| p.seq_ids.contains(s))
            });
            if conflict {
                groups.push(start..j);
                start = j;
            }
        }
        if start < self.entries.len() {
            groups.push(start..self.entries.len());
        }
        groups
    }

    /// Serialized payload size in bytes, used by the interconnect model to
    /// charge for shipping batch metadata down the pipeline.
    pub fn wire_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| 4 + 4 + 4 * e.seq_ids.len() as u64 + 1)
            .sum()
    }
}

impl FromIterator<BatchEntry> for Batch {
    fn from_iter<T: IntoIterator<Item = BatchEntry>>(iter: T) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_batch_shape() {
        let b = Batch::single(42, 7, 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.entries()[0].token, 42);
        assert_eq!(b.entries()[0].pos, 7);
        assert_eq!(b.entries()[0].seq_ids, vec![3]);
        assert!(b.entries()[0].logits);
    }

    #[test]
    fn prompt_batch_only_last_token_has_logits() {
        let b = Batch::prompt(&[1, 2, 3, 4], 0, 0);
        assert_eq!(b.len(), 4);
        assert_eq!(b.logit_indices(), vec![3]);
        assert_eq!(b.entries()[2].pos, 2);
    }

    #[test]
    fn prompt_with_offset_positions() {
        let b = Batch::prompt(&[9, 8], 10, 1);
        assert_eq!(b.entries()[0].pos, 10);
        assert_eq!(b.entries()[1].pos, 11);
        assert_eq!(b.min_pos(), Some(10));
        assert_eq!(b.max_pos(), Some(11));
    }

    #[test]
    fn empty_batch() {
        let b = Batch::new();
        assert!(b.is_empty());
        assert_eq!(b.max_pos(), None);
        assert_eq!(b.wire_bytes(), 0);
    }

    #[test]
    fn wire_bytes_counts_seq_ids() {
        let mut b = Batch::new();
        b.push(1, 0, vec![0], true);
        b.push(2, 1, vec![0, 1, 2], false);
        assert_eq!(b.wire_bytes(), (4 + 4 + 4 + 1) + (4 + 4 + 12 + 1));
    }

    #[test]
    fn tokens_in_order() {
        let b = Batch::prompt(&[5, 6, 7], 0, 0);
        assert_eq!(b.tokens(), vec![5, 6, 7]);
    }

    #[test]
    fn prompt_is_one_level_group() {
        let b = Batch::prompt(&[5, 6, 7, 8], 3, 0);
        assert_eq!(b.level_groups(), vec![0..4]);
        assert_eq!(
            Batch::new().level_groups(),
            Vec::<std::ops::Range<usize>>::new()
        );
        assert_eq!(Batch::single(1, 0, 0).level_groups(), vec![0..1]);
    }

    #[test]
    fn tree_batch_is_one_level_group() {
        // A 2-level speculation tree rooted at pos 10: the root spans every
        // branch sequence, level-1 siblings share pos 11 in disjoint branch
        // sequences, level-2 children sit at pos 12.
        let mut b = Batch::new();
        b.push(1, 10, vec![1, 2, 3], false);
        b.push(2, 11, vec![1, 2], true);
        b.push(3, 11, vec![3], true);
        b.push(4, 12, vec![1], true);
        b.push(5, 12, vec![2], true);
        assert_eq!(b.level_groups(), vec![0..5]);
    }

    #[test]
    fn conflicting_entries_split_groups() {
        // Same sequence, non-increasing positions: entry 1 would be visible
        // to entry 0 if stored together, so each must close a group.
        let mut b = Batch::new();
        b.push(1, 5, vec![0], true);
        b.push(2, 5, vec![0], true);
        b.push(3, 6, vec![0], true);
        assert_eq!(b.level_groups(), vec![0..1, 1..3]);

        // Disjoint sequences never conflict, whatever the positions.
        let mut d = Batch::new();
        d.push(1, 9, vec![0], true);
        d.push(2, 3, vec![1], true);
        assert_eq!(d.level_groups(), vec![0..2]);
    }

    #[test]
    fn forest_batch_collapses_across_lanes() {
        // Two requests decoding the same (pos, seq) pair: fused into one
        // forest batch they sit in different lanes, so the identical
        // coordinates do not alias and the whole batch is one GEMM.
        let mut f = Batch::new();
        f.append_lane(&Batch::single(1, 5, 0), 0);
        f.append_lane(&Batch::single(2, 5, 0), 1);
        f.append_lane(&Batch::single(3, 5, 0), 2);
        assert_eq!(f.level_groups(), vec![0..3]);
        assert_eq!(f.lane_count(), 3);

        // Same coordinates in the *same* lane still conflict.
        let mut g = Batch::new();
        g.append_lane(&Batch::single(1, 5, 0), 0);
        g.append_lane(&Batch::single(2, 5, 0), 0);
        assert_eq!(g.level_groups(), vec![0..1, 1..2]);
    }

    #[test]
    fn append_lane_preserves_order_and_metadata() {
        let mut tree = Batch::new();
        tree.push(1, 10, vec![1, 2], false);
        tree.push(2, 11, vec![1], true);
        tree.push(3, 11, vec![2], true);
        let mut forest = Batch::new();
        forest.append_lane(&Batch::prompt(&[7, 8], 0, 0), 0);
        forest.append_lane(&tree, 1);
        assert_eq!(forest.len(), 5);
        assert_eq!(forest.tokens(), vec![7, 8, 1, 2, 3]);
        assert_eq!(forest.entries()[2].lane, 1);
        assert_eq!(forest.entries()[2].seq_ids, vec![1, 2]);
        // Prompt + whole tree fuse into a single run.
        assert_eq!(forest.level_groups(), vec![0..5]);
        // Lanes are process-local: wire size is unchanged by lane indices.
        let mut flat = Batch::prompt(&[7, 8], 0, 0);
        flat.push(1, 10, vec![1, 2], false);
        flat.push(2, 11, vec![1], true);
        flat.push(3, 11, vec![2], true);
        assert_eq!(forest.wire_bytes(), flat.wire_bytes());
        assert_eq!(flat.lane_count(), 1);
        assert_eq!(Batch::new().lane_count(), 0);
    }
}
