//! Token samplers.
//!
//! The paper's evaluation uses greedy sampling throughout so that all four
//! inference strategies produce bit-identical output (which is how the
//! authors verify correctness).  [`Sampler::Greedy`] therefore gets the most
//! use here; temperature/top-k sampling is provided for completeness and for
//! the confidence values the draft loop uses as its speculation cutoff.

use crate::Token;
use pi_tensor::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampling strategy over a logits vector.
#[derive(Debug, Clone)]
pub enum Sampler {
    /// Deterministic argmax sampling (ties resolve to the lowest token id).
    Greedy,
    /// Temperature + top-k sampling with an owned, seeded RNG.
    TopK {
        /// Number of candidates kept.
        k: usize,
        /// Softmax temperature (1.0 = untempered).
        temperature: f32,
        /// Seed for the internal RNG (the RNG is re-derived per call index to
        /// keep the sampler `Clone` and deterministic).
        seed: u64,
    },
}

impl Sampler {
    /// Samples a token from a row of logits.
    pub fn sample(&self, logits: &[f32]) -> Token {
        match self {
            Sampler::Greedy => argmax(logits) as Token,
            Sampler::TopK {
                k,
                temperature,
                seed,
            } => {
                let probs = Self::top_k_probs(logits, *k, *temperature);
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(hash_logits(logits)));
                let r: f32 = rng.gen();
                let mut acc = 0.0;
                for (tok, p) in &probs {
                    acc += p;
                    if r <= acc {
                        return *tok;
                    }
                }
                probs.last().map(|(t, _)| *t).unwrap_or(0)
            }
        }
    }

    /// Probability of each token under this sampler's induced distribution.
    /// Greedy puts mass 1 on the argmax; top-k returns the truncated softmax.
    pub fn probabilities(&self, logits: &[f32]) -> Vec<(Token, f32)> {
        match self {
            Sampler::Greedy => vec![(argmax(logits) as Token, 1.0)],
            Sampler::TopK { k, temperature, .. } => Self::top_k_probs(logits, *k, *temperature),
        }
    }

    /// The sampler's confidence in its most likely token: the max probability
    /// of the full softmax distribution.  Draft models compare this value
    /// against the speculation confidence cutoff (paper §II-A1, §IV-B2).
    pub fn confidence(logits: &[f32]) -> f32 {
        let probs = ops::softmax(logits);
        probs.iter().copied().fold(0.0, f32::max)
    }

    fn top_k_probs(logits: &[f32], k: usize, temperature: f32) -> Vec<(Token, f32)> {
        let temp = temperature.max(1e-4);
        let scaled: Vec<f32> = logits.iter().map(|l| l / temp).collect();
        let mut idx: Vec<usize> = (0..scaled.len()).collect();
        idx.sort_by(|&a, &b| {
            scaled[b]
                .partial_cmp(&scaled[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k.max(1));
        let top: Vec<f32> = idx.iter().map(|&i| scaled[i]).collect();
        let probs = ops::softmax(&top);
        idx.into_iter().map(|i| i as Token).zip(probs).collect()
    }
}

fn argmax(x: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

fn hash_logits(x: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in x {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_argmax() {
        let s = Sampler::Greedy;
        assert_eq!(s.sample(&[0.1, 5.0, 2.0]), 1);
    }

    #[test]
    fn greedy_tie_breaks_to_lowest() {
        let s = Sampler::Greedy;
        assert_eq!(s.sample(&[3.0, 3.0, 1.0]), 0);
    }

    #[test]
    fn greedy_probabilities_are_one_hot() {
        let p = Sampler::Greedy.probabilities(&[0.0, 9.0, 1.0]);
        assert_eq!(p, vec![(1, 1.0)]);
    }

    #[test]
    fn confidence_in_unit_interval_and_monotone() {
        let low = Sampler::confidence(&[1.0, 1.0, 1.0, 1.0]);
        let high = Sampler::confidence(&[10.0, 0.0, 0.0, 0.0]);
        assert!(low > 0.2 && low < 0.3);
        assert!(high > 0.99);
    }

    #[test]
    fn top_k_is_deterministic_per_seed_and_input() {
        let s = Sampler::TopK {
            k: 3,
            temperature: 1.0,
            seed: 5,
        };
        let logits = [0.5, 2.0, 1.5, -1.0];
        assert_eq!(s.sample(&logits), s.sample(&logits));
    }

    #[test]
    fn top_k_only_samples_top_candidates() {
        let s = Sampler::TopK {
            k: 2,
            temperature: 1.0,
            seed: 0,
        };
        let logits = [10.0, 9.0, -50.0, -50.0];
        for trial in 0..20 {
            let s2 = Sampler::TopK {
                k: 2,
                temperature: 1.0,
                seed: trial,
            };
            let t = s2.sample(&logits);
            assert!(t == 0 || t == 1, "sampled excluded token {t}");
        }
        let _ = s;
    }

    #[test]
    fn top_k_probabilities_sum_to_one() {
        let s = Sampler::TopK {
            k: 3,
            temperature: 0.7,
            seed: 1,
        };
        let p = s.probabilities(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.len(), 3);
        let sum: f32 = p.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(p[0].0, 4, "highest-logit token first");
    }
}
