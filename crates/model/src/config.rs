//! Model geometry configuration.
//!
//! A [`ModelConfig`] describes the architecture of a decoder-only
//! transformer: it is enough to (a) build a real, runnable tiny model via
//! [`crate::weights::ModelWeights::random`], and (b) compute parameter
//! counts, per-layer weight bytes and FLOP costs for the large models of the
//! paper's evaluation (used by `pi-perf`'s roofline model without ever
//! materialising the weights).

/// MLP activation used by the model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// SwiGLU (gate ⊙ SiLU) as used by the Llama family.
    SwiGlu,
    /// GELU as used by the Falcon family.
    Gelu,
}

/// Architecture description of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"Dolphin 2.1 70B"`).
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension.
    pub d_model: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of attention (query) heads.
    pub n_heads: usize,
    /// Number of key/value heads (grouped-query attention when smaller than
    /// `n_heads`).
    pub n_kv_heads: usize,
    /// MLP intermediate dimension.
    pub d_ff: usize,
    /// Maximum sequence length the KV cache must hold.
    pub max_seq_len: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
    /// MLP activation.
    pub activation: Activation,
}

impl ModelConfig {
    /// Dimension of a single attention head.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Total key/value dimension per token (`n_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim()
    }

    /// Parameter count of one decoder layer.
    ///
    /// Attention: `wq [d, d]`, `wk [kv, d]`, `wv [kv, d]`, `wo [d, d]`;
    /// MLP (SwiGLU): `w_gate [ff, d]`, `w_up [ff, d]`, `w_down [d, ff]`
    /// (GELU models have no gate); plus two norm vectors.
    pub fn layer_params(&self) -> u64 {
        let d = self.d_model as u64;
        let kv = self.kv_dim() as u64;
        let ff = self.d_ff as u64;
        let attn = d * d + 2 * kv * d + d * d;
        let mlp = match self.activation {
            Activation::SwiGlu => 3 * d * ff,
            Activation::Gelu => 2 * d * ff,
        };
        attn + mlp + 2 * d
    }

    /// Parameter count of the embedding table plus output head and final
    /// norm.  Embedding and head are counted separately (not tied), matching
    /// the models in the paper's tables.
    pub fn io_params(&self) -> u64 {
        let d = self.d_model as u64;
        let v = self.vocab_size as u64;
        2 * v * d + d
    }

    /// Total parameter count of the model.
    pub fn total_params(&self) -> u64 {
        self.io_params() + self.layer_params() * self.n_layers as u64
    }

    /// Approximate FLOPs to run one token through one decoder layer
    /// (2 × parameters touched, the standard estimate for matmul-dominated
    /// transformer inference).
    pub fn layer_flops_per_token(&self) -> u64 {
        2 * self.layer_params()
    }

    /// Approximate FLOPs to run one token through the embedding/output head.
    pub fn io_flops_per_token(&self) -> u64 {
        2 * (self.vocab_size as u64) * (self.d_model as u64)
    }

    /// Bytes of one activation vector (f32 hidden state) — the payload of an
    /// inter-stage pipeline message per token.
    pub fn activation_bytes_per_token(&self) -> u64 {
        (self.d_model * std::mem::size_of::<f32>()) as u64
    }

    /// A tiny, fast, runnable Llama-style configuration used by tests and
    /// examples.  Roughly 200k parameters; a forward pass takes microseconds.
    pub fn tiny_llama(vocab_size: usize, n_layers: usize) -> Self {
        Self {
            name: format!("tiny-llama-{n_layers}l"),
            vocab_size,
            d_model: 64,
            n_layers,
            n_heads: 4,
            n_kv_heads: 4,
            d_ff: 128,
            max_seq_len: 512,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// A tiny Falcon-style (GELU, GQA) configuration.
    pub fn tiny_falcon(vocab_size: usize, n_layers: usize) -> Self {
        Self {
            name: format!("tiny-falcon-{n_layers}l"),
            vocab_size,
            d_model: 64,
            n_layers,
            n_heads: 8,
            n_kv_heads: 2,
            d_ff: 192,
            max_seq_len: 512,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::Gelu,
        }
    }

    /// Geometry of Llama-2-70B (the base architecture of Dolphin 2.1 70B and
    /// Senku 70B in Tables I/III).  Never materialised as weights; used only
    /// for cost and memory modelling.
    pub fn llama2_70b() -> Self {
        Self {
            name: "Llama-2-70B".to_string(),
            vocab_size: 32000,
            d_model: 8192,
            n_layers: 80,
            n_heads: 64,
            n_kv_heads: 8,
            d_ff: 28672,
            max_seq_len: 4096,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of the Goliath-120B Llama-2 merge: the paper describes it as
    /// a "tall and thin" splice of two 70B models — same hidden width as 70B
    /// but 137 layers.
    pub fn goliath_120b() -> Self {
        Self {
            name: "Goliath-120B".to_string(),
            n_layers: 137,
            ..Self::llama2_70b()
        }
    }

    /// Geometry of Falcon-180B: wider (14848 hidden) and shallower relative
    /// to its size than the Llama merges.
    pub fn falcon_180b() -> Self {
        Self {
            name: "Falcon-180B".to_string(),
            vocab_size: 65024,
            d_model: 14848,
            n_layers: 80,
            n_heads: 232,
            n_kv_heads: 8,
            d_ff: 59392,
            max_seq_len: 2048,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::Gelu,
        }
    }

    /// Geometry of Llama-2-7B (XWin-7B, Orca-2-7B, LlongOrca-7B drafts).
    pub fn llama2_7b() -> Self {
        Self {
            name: "Llama-2-7B".to_string(),
            vocab_size: 32000,
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 32,
            d_ff: 11008,
            max_seq_len: 4096,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of Llama-2-13B (XWin-13B draft).
    pub fn llama2_13b() -> Self {
        Self {
            name: "Llama-2-13B".to_string(),
            vocab_size: 32000,
            d_model: 5120,
            n_layers: 40,
            n_heads: 40,
            n_kv_heads: 40,
            d_ff: 13824,
            max_seq_len: 4096,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of TinyLlama-1.1B (the smallest draft model in Table I).
    pub fn tinyllama_1_1b() -> Self {
        Self {
            name: "TinyLlama-1.1B".to_string(),
            vocab_size: 32000,
            d_model: 2048,
            n_layers: 22,
            n_heads: 32,
            n_kv_heads: 4,
            d_ff: 5632,
            max_seq_len: 2048,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of Falcon-7B (draft for Falcon-180B).
    pub fn falcon_7b() -> Self {
        Self {
            name: "Falcon-7B".to_string(),
            vocab_size: 65024,
            d_model: 4544,
            n_layers: 32,
            n_heads: 71,
            n_kv_heads: 1,
            d_ff: 18176,
            max_seq_len: 2048,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::Gelu,
        }
    }

    /// Geometry of Falcon-40B (larger draft for Falcon-180B).
    pub fn falcon_40b() -> Self {
        Self {
            name: "Falcon-40B".to_string(),
            vocab_size: 65024,
            d_model: 8192,
            n_layers: 60,
            n_heads: 128,
            n_kv_heads: 8,
            d_ff: 32768,
            max_seq_len: 2048,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::Gelu,
        }
    }

    /// Geometry of a Llama-3-8B class model (Dolphin 2.9 8B draft, Table III).
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama-3-8B".to_string(),
            vocab_size: 128256,
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 8,
            d_ff: 14336,
            max_seq_len: 8192,
            rope_theta: 500000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Llama-3-70B class model (Dolphin 2.9 70B, Table III).
    pub fn llama3_70b() -> Self {
        Self {
            name: "Llama-3-70B".to_string(),
            vocab_size: 128256,
            d_model: 8192,
            n_layers: 80,
            n_heads: 64,
            n_kv_heads: 8,
            d_ff: 28672,
            max_seq_len: 8192,
            rope_theta: 500000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Qwen-33B class model (Table III).
    pub fn qwen_33b() -> Self {
        Self {
            name: "Qwen-33B".to_string(),
            vocab_size: 151936,
            d_model: 7168,
            n_layers: 60,
            n_heads: 56,
            n_kv_heads: 8,
            d_ff: 19456,
            max_seq_len: 4096,
            rope_theta: 1000000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Qwen-7B class model (Table III).
    pub fn qwen_7b() -> Self {
        Self {
            name: "Qwen-7B".to_string(),
            vocab_size: 151936,
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 32,
            d_ff: 11008,
            max_seq_len: 4096,
            rope_theta: 1000000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Mistral-7B class model (draft for Mixtral, Table III).
    pub fn mistral_7b() -> Self {
        Self {
            name: "Mistral-7B".to_string(),
            vocab_size: 32000,
            d_model: 4096,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 8,
            d_ff: 14336,
            max_seq_len: 8192,
            rope_theta: 10000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Effective dense geometry of Mixtral-8x22B.  Only two of the eight
    /// experts are active per token, so for per-token compute and
    /// weight-streaming purposes the model behaves like a dense model with
    /// `2×` the expert MLP width, while its *memory footprint* uses all
    /// eight experts.  [`Self::total_params`] of this config approximates
    /// the *active* parameters; the full footprint is handled by
    /// `pi-perf`'s model preset which scales the MLP weights by 4 (8/2).
    pub fn mixtral_8x22b_active() -> Self {
        Self {
            name: "Mixtral-8x22B (active)".to_string(),
            vocab_size: 32000,
            d_model: 6144,
            n_layers: 56,
            n_heads: 48,
            n_kv_heads: 8,
            d_ff: 2 * 16384,
            max_seq_len: 8192,
            rope_theta: 1000000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Yi-34B class model (Table III).
    pub fn yi_34b() -> Self {
        Self {
            name: "Yi-34B".to_string(),
            vocab_size: 64000,
            d_model: 7168,
            n_layers: 60,
            n_heads: 56,
            n_kv_heads: 8,
            d_ff: 20480,
            max_seq_len: 4096,
            rope_theta: 5000000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }

    /// Geometry of a Yi-9B class model (draft, Table III).
    pub fn yi_9b() -> Self {
        Self {
            name: "Yi-9B".to_string(),
            vocab_size: 64000,
            d_model: 4096,
            n_layers: 48,
            n_heads: 32,
            n_kv_heads: 4,
            d_ff: 11008,
            max_seq_len: 4096,
            rope_theta: 5000000.0,
            norm_eps: 1e-5,
            activation: Activation::SwiGlu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_and_kv_dims() {
        let c = ModelConfig::llama2_70b();
        assert_eq!(c.head_dim(), 128);
        assert_eq!(c.kv_dim(), 1024);
    }

    #[test]
    fn llama2_70b_param_count_is_about_70b() {
        let p = ModelConfig::llama2_70b().total_params() as f64 / 1e9;
        assert!(p > 63.0 && p < 75.0, "got {p}B");
    }

    #[test]
    fn goliath_is_about_120b_and_taller_than_70b() {
        let g = ModelConfig::goliath_120b();
        let p = g.total_params() as f64 / 1e9;
        assert!(p > 105.0 && p < 125.0, "got {p}B");
        assert!(g.n_layers > ModelConfig::llama2_70b().n_layers);
        assert_eq!(g.d_model, ModelConfig::llama2_70b().d_model);
    }

    #[test]
    fn falcon_180b_param_count_is_about_180b() {
        let p = ModelConfig::falcon_180b().total_params() as f64 / 1e9;
        assert!(p > 160.0 && p < 195.0, "got {p}B");
    }

    #[test]
    fn llama2_7b_param_count() {
        let p = ModelConfig::llama2_7b().total_params() as f64 / 1e9;
        assert!(p > 6.0 && p < 7.5, "got {p}B");
    }

    #[test]
    fn tinyllama_param_count() {
        let p = ModelConfig::tinyllama_1_1b().total_params() as f64 / 1e9;
        assert!(p > 0.9 && p < 1.3, "got {p}B");
    }

    #[test]
    fn falcon_drafts_param_counts() {
        let p7 = ModelConfig::falcon_7b().total_params() as f64 / 1e9;
        assert!(p7 > 6.0 && p7 < 8.5, "falcon-7b got {p7}B");
        let p40 = ModelConfig::falcon_40b().total_params() as f64 / 1e9;
        assert!(p40 > 35.0 && p40 < 48.0, "falcon-40b got {p40}B");
    }

    #[test]
    fn tiny_models_are_actually_tiny() {
        let c = ModelConfig::tiny_llama(256, 4);
        assert!(c.total_params() < 1_000_000);
        let f = ModelConfig::tiny_falcon(256, 4);
        assert!(f.total_params() < 1_000_000);
    }

    #[test]
    fn flops_and_activation_bytes_positive_and_consistent() {
        let c = ModelConfig::llama2_70b();
        assert_eq!(c.activation_bytes_per_token(), 8192 * 4);
        assert!(c.layer_flops_per_token() > 1_000_000);
        assert_eq!(c.layer_flops_per_token(), 2 * c.layer_params());
    }

    #[test]
    fn gelu_models_have_no_gate_matrix() {
        let mut swiglu = ModelConfig::tiny_llama(256, 1);
        swiglu.d_ff = 100;
        let mut gelu = swiglu.clone();
        gelu.activation = Activation::Gelu;
        assert!(swiglu.layer_params() > gelu.layer_params());
        assert_eq!(
            swiglu.layer_params() - gelu.layer_params(),
            (swiglu.d_model * swiglu.d_ff) as u64
        );
    }
}
