//! Fixed-size KV page pool with radix prefix sharing.
//!
//! The serving-memory substrate for cross-request prompt reuse, in the
//! spirit of vLLM's paged attention (Kwon et al., SOSP 2023) and SGLang's
//! RadixAttention (Zheng et al., 2024), adapted to this workspace's
//! pipeline-stage caches:
//!
//! * The pool owns a **fixed budget of pages** (`n_pages`), each covering
//!   `tokens_per_page` consecutive token positions.  Every admitted request
//!   reserves the pages its prompt + generation budget needs; pages backing
//!   a committed shared prefix are counted once, however many requests
//!   attach them.
//! * A **radix tree over token chunks** maps prompt prefixes to committed
//!   page chains.  Each node holds exactly one page worth of tokens and, in
//!   real-execution mode, the frozen [`KvPage`] of every pipeline stage
//!   (keyed by the stage's global layer range).  A request whose prompt
//!   shares a committed prefix pins the matched path, attaches those pages
//!   read-only, and **skips prefill** for the matched span.
//! * **Refcounts + LRU leaf eviction**: pinned nodes (`refs > 0`) are never
//!   evicted; when admission needs pages, refcount-0 leaves are evicted in
//!   least-recently-used order.  If that cannot free enough, admission fails
//!   with [`AdmissionRefusal`] — never a panic or OOM — which `pi-serve`
//!   surfaces as a scheduling refusal.
//!
//! Page contents are immutable once committed (`Arc<KvPage>`); divergence is
//! handled downstream by [`crate::kv_cache::KvCache`]'s copy-on-write.  An
//! evicted node only drops the pool's reference — caches still attached keep
//! their pages alive through the `Arc`, so eviction can never corrupt a
//! running request.

use crate::kv_cache::KvPage;
use crate::Token;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A pipeline stage's identity inside the pool: its global layer range
/// `[start, end)`.  Stage engines commit and look up their per-stage pages
/// under this key.
pub type StageKey = (usize, usize);

/// Pool geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvPoolConfig {
    /// Cells per page (must divide request positions into chunks; 16–64 are
    /// typical — llama.cpp uses 256, vLLM 16).
    pub tokens_per_page: usize,
    /// Total pages the pool may hand out across all in-flight requests and
    /// committed prefixes.
    pub n_pages: usize,
}

impl KvPoolConfig {
    /// Reads the pool geometry from `PIPEINFER_KV_POOL_PAGES` and
    /// `PIPEINFER_KV_PAGE_TOKENS` (the latter defaults to 16; unparsable or
    /// zero values fall back to the default rather than panicking later in
    /// [`KvPagePool::new`]).  Returns `None` when `PIPEINFER_KV_POOL_PAGES`
    /// is unset — the pool is opt-in.
    pub fn from_env() -> Option<Self> {
        let n_pages: usize = std::env::var("PIPEINFER_KV_POOL_PAGES")
            .ok()?
            .parse()
            .ok()?;
        let tokens_per_page = std::env::var("PIPEINFER_KV_PAGE_TOKENS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(16);
        Some(Self {
            tokens_per_page,
            n_pages,
        })
    }
}

/// Admission failed: the pool cannot reserve the pages the request needs,
/// even after evicting every unpinned prefix.  The scheduler should retry
/// once in-flight requests release their reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRefusal {
    /// Pages the request still needed beyond its shared prefix.
    pub needed_pages: usize,
    /// Pages actually free (after eviction) at refusal time.
    pub free_pages: usize,
}

impl fmt::Display for AdmissionRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KV pool admission refused: need {} pages, {} free",
            self.needed_pages, self.free_pages
        )
    }
}

impl std::error::Error for AdmissionRefusal {}

/// Outcome of [`KvPagePool::begin_request`]: the request is admitted, holds
/// a page reservation, and may attach `cached_tokens` tokens of committed
/// prefix.  Must be paired with [`KvPagePool::end_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixTicket {
    /// Ticket id for follow-up `commit_chain` / `end_request` calls.
    pub id: u64,
    /// Tokens of the prompt covered by the matched (pinned) prefix chain.
    pub cached_tokens: usize,
}

/// Counters and occupancy snapshot, surfaced through `ServeReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvPoolStats {
    /// Pages currently reserved or committed.
    pub pages_in_use: usize,
    /// High-water mark of `pages_in_use`.
    pub peak_pages_in_use: usize,
    /// Admitted requests.
    pub requests: u64,
    /// Admitted requests that attached a non-empty committed prefix.
    pub share_hits: u64,
    /// Total tokens served from committed prefixes instead of prefill.
    pub shared_tokens: u64,
    /// Radix nodes (= pages) committed over the pool's lifetime.
    pub pages_committed: u64,
    /// Refcount-0 leaves evicted to make room.
    pub evictions: u64,
    /// Requests refused because the pool was exhausted.
    pub refusals: u64,
}

struct Node {
    /// Exactly `tokens_per_page` tokens.
    chunk: Vec<Token>,
    children: Vec<usize>,
    parent: Option<usize>,
    /// Pin count: number of tickets whose path includes this node.
    refs: usize,
    /// LRU stamp (pool-internal logical clock).
    last_use: u64,
    /// Frozen per-stage pages; empty until a real engine commits them.
    storage: HashMap<StageKey, Arc<KvPage>>,
}

struct TicketState {
    /// Pinned nodes: matched prefix plus nodes committed under this ticket.
    path: Vec<usize>,
    /// Reserved pages not yet converted into committed nodes.
    reserved_left: usize,
}

#[derive(Default)]
struct PoolInner {
    nodes: Vec<Node>,
    free_nodes: Vec<usize>,
    roots: Vec<usize>,
    /// Pages held by committed radix nodes.
    committed: usize,
    /// Pages reserved by in-flight tickets (not yet committed).
    reserved: usize,
    clock: u64,
    next_ticket: u64,
    tickets: HashMap<u64, TicketState>,
    /// Refcount-0 committed leaves keyed by `(last_use, index)`: the LRU
    /// eviction frontier, maintained incrementally at every refcount /
    /// child-list / stamp mutation so `make_room` pops victims in `O(log n)`
    /// instead of rescanning every node per freed page.
    evictable: BTreeSet<(u64, usize)>,
    stats: KvPoolStats,
}

impl PoolInner {
    fn in_use(&self) -> usize {
        self.committed + self.reserved
    }

    fn touch_stats(&mut self) {
        self.stats.pages_in_use = self.committed + self.reserved;
        self.stats.peak_pages_in_use = self.stats.peak_pages_in_use.max(self.stats.pages_in_use);
    }

    fn children_of(&self, parent: Option<usize>) -> &[usize] {
        match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        }
    }

    /// Child of `parent` holding exactly `chunk`, with storage covering all
    /// `required_stages`.
    fn find_child(
        &self,
        parent: Option<usize>,
        chunk: &[Token],
        required_stages: &[StageKey],
    ) -> Option<usize> {
        self.children_of(parent).iter().copied().find(|&c| {
            let node = &self.nodes[c];
            node.chunk == chunk && required_stages.iter().all(|s| node.storage.contains_key(s))
        })
    }

    /// Re-evaluates `idx`'s membership in the eviction frontier after a
    /// mutation of its refcount, child list or LRU stamp.  `old_last_use` is
    /// the stamp the node carried before the mutation (its previous key in
    /// the frontier, if it was there).
    fn refresh_evictable(&mut self, idx: usize, old_last_use: u64) {
        self.evictable.remove(&(old_last_use, idx));
        let n = &self.nodes[idx];
        if !n.chunk.is_empty() && n.refs == 0 && n.children.is_empty() {
            self.evictable.insert((n.last_use, idx));
        }
    }

    /// Pins `idx` against eviction and stamps its LRU clock.
    fn pin(&mut self, idx: usize, clock: u64) {
        let old = self.nodes[idx].last_use;
        self.nodes[idx].refs += 1;
        self.nodes[idx].last_use = clock;
        self.refresh_evictable(idx, old);
    }

    /// Drops one pin from `idx`; a now-unpinned leaf rejoins the frontier.
    fn unpin(&mut self, idx: usize) {
        let old = self.nodes[idx].last_use;
        self.nodes[idx].refs = self.nodes[idx].refs.saturating_sub(1);
        self.refresh_evictable(idx, old);
    }

    /// Evicts the least-recently-used refcount-0 leaf.  Returns false when
    /// every remaining node is pinned or interior.
    fn evict_one(&mut self) -> bool {
        let Some(&(stamp, victim)) = self.evictable.iter().next() else {
            return false;
        };
        self.evictable.remove(&(stamp, victim));
        let parent = self.nodes[victim].parent;
        match parent {
            Some(p) => self.nodes[p].children.retain(|&c| c != victim),
            None => self.roots.retain(|&c| c != victim),
        }
        let node = &mut self.nodes[victim];
        node.chunk.clear();
        node.children.clear();
        node.storage.clear();
        node.parent = None;
        self.free_nodes.push(victim);
        self.committed -= 1;
        self.stats.evictions += 1;
        // Losing its last child may expose the parent as a new LRU leaf.
        if let Some(p) = parent {
            let lu = self.nodes[p].last_use;
            self.refresh_evictable(p, lu);
        }
        true
    }

    /// Frees enough pages for `needed` new reservations, evicting LRU leaves
    /// as required.  Returns the free-page count on failure.
    fn make_room(&mut self, needed: usize, capacity: usize) -> Result<(), usize> {
        loop {
            let free = capacity - self.in_use();
            if free >= needed {
                return Ok(());
            }
            if !self.evict_one() {
                return Err(capacity - self.in_use());
            }
        }
    }

    fn insert_node(&mut self, parent: Option<usize>, chunk: Vec<Token>) -> usize {
        let node = Node {
            chunk,
            children: Vec::new(),
            parent,
            refs: 0,
            last_use: self.clock,
            storage: HashMap::new(),
        };
        let idx = match self.free_nodes.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        match parent {
            Some(p) => {
                // Gaining a child removes the parent from the frontier.
                self.evictable.remove(&(self.nodes[p].last_use, p));
                self.nodes[p].children.push(idx);
            }
            None => self.roots.push(idx),
        }
        self.committed += 1;
        self.stats.pages_committed += 1;
        self.evictable.insert((self.nodes[idx].last_use, idx));
        idx
    }
}

/// The shared page pool.  One per [`Deployment::prepare`] call (or per
/// serving process); cheap to clone via `Arc`.
///
/// [`Deployment::prepare`]: ../../pi_spec/deploy/struct.Deployment.html
pub struct KvPagePool {
    cfg: KvPoolConfig,
    inner: Mutex<PoolInner>,
}

impl fmt::Debug for KvPagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("KvPagePool")
            .field("cfg", &self.cfg)
            .field("stats", &stats)
            .finish()
    }
}

impl KvPagePool {
    /// Creates an empty pool.
    pub fn new(cfg: KvPoolConfig) -> Arc<Self> {
        assert!(cfg.tokens_per_page > 0, "tokens_per_page must be positive");
        Arc::new(Self {
            cfg,
            inner: Mutex::new(PoolInner::default()),
        })
    }

    /// Pool geometry.
    pub fn config(&self) -> KvPoolConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Splits `prompt` into full page chunks (the committable span).
    fn chunks<'a>(&self, prompt: &'a [Token]) -> impl Iterator<Item = &'a [Token]> {
        let tpp = self.cfg.tokens_per_page;
        let full = prompt.len() / tpp;
        (0..full).map(move |i| &prompt[i * tpp..(i + 1) * tpp])
    }

    /// Admits a request: matches the longest committed prefix of `prompt`
    /// (whose nodes carry pages for every stage in `required_stages`), pins
    /// it, and reserves the pages needed for the rest of the prompt plus
    /// `extra_tokens` of generation.  On success the caller may attach
    /// `cached_tokens` of prefix and **must** later call
    /// [`KvPagePool::end_request`]; on exhaustion (after LRU eviction of
    /// every unpinned leaf) returns [`AdmissionRefusal`].
    pub fn begin_request(
        &self,
        prompt: &[Token],
        extra_tokens: usize,
        required_stages: &[StageKey],
    ) -> Result<PrefixTicket, AdmissionRefusal> {
        let tpp = self.cfg.tokens_per_page;
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;

        // Longest-prefix match over full-page chunks.
        let mut path = Vec::new();
        let mut parent = None;
        for chunk in self.chunks(prompt) {
            match inner.find_child(parent, chunk, required_stages) {
                Some(c) => {
                    path.push(c);
                    parent = Some(c);
                }
                None => break,
            }
        }
        let matched_pages = path.len();
        let total_pages = (prompt.len() + extra_tokens).div_ceil(tpp);
        let new_pages = total_pages.saturating_sub(matched_pages);

        // Pin the matched chain *before* making room: its nodes may carry
        // stale LRU stamps, and eviction must never pick the very pages this
        // request is about to attach.
        for &n in &path {
            inner.pin(n, clock);
        }
        if let Err(free) = inner.make_room(new_pages, self.cfg.n_pages) {
            for &n in &path {
                inner.unpin(n);
            }
            inner.stats.refusals += 1;
            return Err(AdmissionRefusal {
                needed_pages: new_pages,
                free_pages: free,
            });
        }
        inner.reserved += new_pages;
        let id = inner.next_ticket;
        inner.next_ticket += 1;
        inner.tickets.insert(
            id,
            TicketState {
                path,
                reserved_left: new_pages,
            },
        );
        inner.stats.requests += 1;
        let cached_tokens = matched_pages * tpp;
        if cached_tokens > 0 {
            inner.stats.share_hits += 1;
            inner.stats.shared_tokens += cached_tokens as u64;
        }
        inner.touch_stats();
        Ok(PrefixTicket { id, cached_tokens })
    }

    /// The pinned prefix chain of `ticket` for one stage, in order.  Empty
    /// when any matched node lacks that stage's pages (simulation-mode
    /// chains carry no storage).
    pub fn pinned_pages(&self, ticket: u64, stage: StageKey) -> Vec<Arc<KvPage>> {
        let inner = self.lock();
        let Some(t) = inner.tickets.get(&ticket) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(t.path.len());
        for &n in &t.path {
            match inner.nodes[n].storage.get(&stage) {
                Some(p) => out.push(p.clone()),
                None => return Vec::new(),
            }
        }
        out
    }

    /// Commits the full-page prefix of `prompt` into the radix tree under
    /// `ticket`, converting reserved pages into committed nodes.  With
    /// `stage`/`pages` given (real mode), the stage's frozen pages are
    /// recorded on the chain's nodes; simulation mode passes `None` and
    /// commits token-only nodes.  Idempotent: chunks already committed are
    /// only re-pinned / re-stamped, and commitment stops early (best-effort)
    /// if the pool is exhausted — the request itself already holds its
    /// private pages.
    pub fn commit_chain(
        &self,
        ticket: u64,
        prompt: &[Token],
        stage: Option<(StageKey, &[Arc<KvPage>])>,
    ) {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.tickets.contains_key(&ticket) {
            return;
        }
        let mut parent = None;
        let chunks: Vec<&[Token]> = self.chunks(prompt).collect();
        for (i, chunk) in chunks.into_iter().enumerate() {
            let existing = inner.find_child(parent, chunk, &[]);
            let node = match existing {
                Some(n) => n,
                None => {
                    // A new node consumes this ticket's reservation first,
                    // then free pages, then gives up (never refuses here —
                    // the request is already running).
                    let from_reservation = {
                        let t = inner.tickets.get_mut(&ticket).unwrap();
                        if t.reserved_left > 0 {
                            t.reserved_left -= 1;
                            true
                        } else {
                            false
                        }
                    };
                    if from_reservation {
                        inner.reserved -= 1;
                    } else if inner.make_room(1, self.cfg.n_pages).is_err() {
                        break;
                    }
                    inner.insert_node(parent, chunk.to_vec())
                }
            };
            let old_stamp = inner.nodes[node].last_use;
            inner.nodes[node].last_use = clock;
            if let Some((key, pages)) = stage {
                if let Some(page) = pages.get(i) {
                    inner.nodes[node]
                        .storage
                        .entry(key)
                        .or_insert_with(|| page.clone());
                }
            }
            // Pin nodes not already on the ticket's path so concurrent
            // eviction can never free a chain its request still relies on.
            let newly_pinned = {
                let t = inner.tickets.get_mut(&ticket).unwrap();
                if t.path.contains(&node) {
                    false
                } else {
                    t.path.push(node);
                    true
                }
            };
            if newly_pinned {
                inner.nodes[node].refs += 1;
            }
            inner.refresh_evictable(node, old_stamp);
            parent = Some(node);
        }
        inner.touch_stats();
    }

    /// Releases a request: unpins its prefix chain and returns its unused
    /// reservation to the pool.
    pub fn end_request(&self, ticket: u64) {
        let mut inner = self.lock();
        let Some(t) = inner.tickets.remove(&ticket) else {
            return;
        };
        for &n in &t.path {
            inner.unpin(n);
        }
        inner.reserved -= t.reserved_left;
        inner.touch_stats();
    }

    /// Occupancy and reuse counters.
    pub fn stats(&self) -> KvPoolStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.pages_in_use = inner.in_use();
        stats
    }

    /// Prefix-reuse hit rate over admitted requests (0 when none admitted).
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        if s.requests == 0 {
            0.0
        } else {
            s.share_hits as f64 / s.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n_pages: usize) -> Arc<KvPagePool> {
        KvPagePool::new(KvPoolConfig {
            tokens_per_page: 4,
            n_pages,
        })
    }

    fn prompt(shared: usize, tag: Token) -> Vec<Token> {
        let mut p: Vec<Token> = (0..shared as Token).collect();
        p.extend([1000 + tag, 1001 + tag, 1002 + tag, 1003 + tag]);
        p
    }

    #[test]
    fn second_request_attaches_committed_prefix() {
        let pool = pool(32);
        let a = pool.begin_request(&prompt(8, 0), 4, &[]).unwrap();
        assert_eq!(a.cached_tokens, 0);
        pool.commit_chain(a.id, &prompt(8, 0), None);
        pool.end_request(a.id);

        let b = pool.begin_request(&prompt(8, 100), 4, &[]).unwrap();
        assert_eq!(b.cached_tokens, 8, "two full shared pages are matched");
        let s = pool.stats();
        assert_eq!(s.share_hits, 1);
        assert_eq!(s.shared_tokens, 8);
        pool.end_request(b.id);
    }

    #[test]
    fn accounting_tiles_capacity() {
        let pool = pool(8);
        // 12 prompt tokens + 4 generated = 4 pages reserved.
        let a = pool.begin_request(&prompt(8, 0), 4, &[]).unwrap();
        assert_eq!(pool.stats().pages_in_use, 4);
        pool.commit_chain(a.id, &prompt(8, 0), None);
        // Committing 3 full pages converts reservation, no double count.
        assert_eq!(pool.stats().pages_in_use, 4);
        pool.end_request(a.id);
        // The unused generation reservation is returned; 3 committed remain.
        assert_eq!(pool.stats().pages_in_use, 3);
    }

    #[test]
    fn exhaustion_refuses_instead_of_panicking() {
        let pool = pool(4);
        let a = pool.begin_request(&prompt(8, 0), 4, &[]).unwrap();
        let err = pool.begin_request(&prompt(8, 100), 4, &[]).unwrap_err();
        assert!(err.needed_pages > err.free_pages);
        assert_eq!(pool.stats().refusals, 1);
        pool.end_request(a.id);
        // Capacity released: the same request is now admissible.
        assert!(pool.begin_request(&prompt(8, 100), 4, &[]).is_ok());
    }

    #[test]
    fn lru_eviction_frees_unpinned_leaves_only() {
        let pool = pool(6);
        // Two independent 2-page chains fill 4 of 6 pages.
        for tag in [0, 40] {
            let p: Vec<Token> = (tag..tag + 8).collect();
            let t = pool.begin_request(&p, 0, &[]).unwrap();
            pool.commit_chain(t.id, &p, None);
            pool.end_request(t.id);
        }
        assert_eq!(pool.stats().pages_in_use, 4);
        // A request needing 4 pages forces eviction of the LRU chain.
        let big: Vec<Token> = (100..116).collect();
        let t = pool.begin_request(&big, 0, &[]).unwrap();
        assert!(pool.stats().evictions >= 2);
        pool.end_request(t.id);
    }

    #[test]
    fn admission_never_evicts_its_own_matched_chain() {
        let pool = pool(4);
        // Commit a 2-page shared chain, then a younger unrelated 1-page
        // chain, both unpinned: the shared chain is the LRU entry.
        let shared: Vec<Token> = (0..8).collect();
        let a = pool.begin_request(&shared, 0, &[]).unwrap();
        pool.commit_chain(a.id, &shared, None);
        pool.end_request(a.id);
        let other: Vec<Token> = (100..104).collect();
        let b = pool.begin_request(&other, 0, &[]).unwrap();
        pool.commit_chain(b.id, &other, None);
        pool.end_request(b.id);
        assert_eq!(pool.stats().pages_in_use, 3);
        // A request matching the stale-stamped shared chain and needing two
        // more pages must evict the unrelated leaf, never its own match.
        let grown: Vec<Token> = (0..12).collect();
        let t = pool.begin_request(&grown, 4, &[]).unwrap();
        assert_eq!(t.cached_tokens, 8, "the matched span survives eviction");
        assert_eq!(pool.stats().evictions, 1);
        pool.end_request(t.id);
        // The shared chain is intact; the unrelated one was the victim.
        let c = pool.begin_request(&shared, 0, &[]).unwrap();
        assert_eq!(c.cached_tokens, 8);
        pool.end_request(c.id);
        let d = pool.begin_request(&other, 0, &[]).unwrap();
        assert_eq!(d.cached_tokens, 0);
        pool.end_request(d.id);
    }

    #[test]
    fn pinned_chains_survive_eviction_pressure() {
        let pool = pool(4);
        let shared: Vec<Token> = (0..8).collect();
        let a = pool.begin_request(&shared, 0, &[]).unwrap();
        pool.commit_chain(a.id, &shared, None);
        // `a` still holds its pins; a hungry request cannot evict them.
        let big: Vec<Token> = (100..120).collect();
        assert!(pool.begin_request(&big, 0, &[]).is_err());
        // The pinned chain is still matchable.
        let b = pool.begin_request(&shared, 0, &[]).unwrap();
        assert_eq!(b.cached_tokens, 8);
        pool.end_request(a.id);
        pool.end_request(b.id);
    }

    #[test]
    fn real_mode_match_requires_stage_storage() {
        let pool = pool(16);
        let stage: StageKey = (0, 4);
        let p: Vec<Token> = (0..8).collect();
        let a = pool.begin_request(&p, 0, &[stage]).unwrap();
        // Token-only commit (no storage recorded).
        pool.commit_chain(a.id, &p, None);
        pool.end_request(a.id);
        // A requester that needs stage pages must not match storage-less
        // nodes…
        let b = pool.begin_request(&p, 0, &[stage]).unwrap();
        assert_eq!(b.cached_tokens, 0);
        // …but after a real commit the pages are served.
        let pages: Vec<Arc<KvPage>> = (0..2).map(|_| Arc::new(KvPage::zeroed(2, 4, 4))).collect();
        pool.commit_chain(b.id, &p, Some((stage, &pages)));
        pool.end_request(b.id);
        let c = pool.begin_request(&p, 0, &[stage]).unwrap();
        assert_eq!(c.cached_tokens, 8);
        assert_eq!(pool.pinned_pages(c.id, stage).len(), 2);
        pool.end_request(c.id);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleavings of admit / commit / release keep the pool
        /// accounting sound: pages in use never exceed capacity, prefix
        /// matches are page-granular, refusals always report genuine
        /// pressure, and once every ticket is released no page stays
        /// pinned — a request spanning the whole pool is admissible again
        /// (i.e. random lifecycles never leak reservations or refcounts).
        #[test]
        fn prop_random_lifecycles_never_leak_or_overcommit(
            ops in proptest::collection::vec(0u32..1_000_000, 1..80),
        ) {
            let cfg = KvPoolConfig {
                tokens_per_page: 4,
                n_pages: 16,
            };
            let pool = KvPagePool::new(cfg);
            let mut live: Vec<(u64, Vec<Token>)> = Vec::new();
            for op in ops {
                match op % 3 {
                    0 => {
                        // Prompts are family-deterministic, so two begins of
                        // the same family share their full common prefix and
                        // different families never collide.
                        let family = (op / 3) % 3;
                        let len = 4 + (op / 9) % 24;
                        let n_gen = ((op / 216) % 8) as usize;
                        let prompt: Vec<Token> =
                            (0..len).map(|i| family * 10_000 + i).collect();
                        match pool.begin_request(&prompt, n_gen, &[]) {
                            Ok(t) => {
                                prop_assert!(t.cached_tokens <= prompt.len());
                                prop_assert_eq!(
                                    t.cached_tokens % cfg.tokens_per_page,
                                    0,
                                    "prefix matches are page-granular"
                                );
                                live.push((t.id, prompt));
                            }
                            Err(e) => prop_assert!(e.needed_pages > e.free_pages),
                        }
                    }
                    1 => {
                        if !live.is_empty() {
                            let (id, prompt) = &live[(op as usize / 3) % live.len()];
                            pool.commit_chain(*id, prompt, None);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let (id, _) = live.remove((op as usize / 3) % live.len());
                            pool.end_request(id);
                        }
                    }
                }
                let s = pool.stats();
                prop_assert!(s.pages_in_use <= cfg.n_pages);
                prop_assert!(s.peak_pages_in_use <= cfg.n_pages);
                prop_assert!(s.share_hits <= s.requests);
            }
            for (id, _) in live.drain(..) {
                pool.end_request(id);
            }
            // Leak check: with every ticket released all remaining pages
            // belong to refcount-0 committed chains, so a pool-spanning
            // request must be admitted after LRU eviction clears them.
            let full: Vec<Token> = (0..(cfg.n_pages * cfg.tokens_per_page) as Token)
                .map(|i| 900_000 + i)
                .collect();
            prop_assert!(pool.begin_request(&full, 0, &[]).is_ok());
        }
    }
}
