//! Model weights: construction, random initialisation and draft derivation.
//!
//! Weights are only ever materialised for *tiny* models (used by tests,
//! examples and the real-execution driver); the paper-scale models are
//! handled analytically by `pi-perf`.  Draft models for speculative decoding
//! are derived from a target model either by perturbation (same architecture,
//! noisy weights — agreement degrades smoothly with the noise scale) or by
//! truncation (first `k` layers — structurally smaller, the same relationship
//! a 7B draft has to a 70B target).

use crate::config::{Activation, ModelConfig};
use pi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weights of one decoder layer.  All projection matrices are stored
/// row-major as `[out_features, in_features]` so that `pi_tensor::ops::matmul_t`
/// (and its scratch-buffer variant `pi_tensor::ops::matvec_t_into`, which the
/// forward pass uses per token) consume them directly: each output feature is
/// one contiguous weight row, which is what the blocked kernels' 4-wide dot
/// products stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Query projection `[d_model, d_model]`.
    pub wq: Tensor,
    /// Key projection `[kv_dim, d_model]`.
    pub wk: Tensor,
    /// Value projection `[kv_dim, d_model]`.
    pub wv: Tensor,
    /// Output projection `[d_model, d_model]`.
    pub wo: Tensor,
    /// Gate projection `[d_ff, d_model]` (SwiGLU models only).
    pub w_gate: Option<Tensor>,
    /// Up projection `[d_ff, d_model]`.
    pub w_up: Tensor,
    /// Down projection `[d_model, d_ff]`.
    pub w_down: Tensor,
    /// RMSNorm weight applied before attention `[d_model]`.
    pub attn_norm: Tensor,
    /// RMSNorm weight applied before the MLP `[d_model]`.
    pub mlp_norm: Tensor,
}

/// Full model weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// Token embedding table `[vocab, d_model]`.
    pub tok_embed: Tensor,
    /// Final RMSNorm `[d_model]`.
    pub final_norm: Tensor,
    /// Output head `[vocab, d_model]`.
    pub lm_head: Tensor,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
}

impl LayerWeights {
    fn random(cfg: &ModelConfig, rng: &mut StdRng) -> Self {
        let d = cfg.d_model;
        let kv = cfg.kv_dim();
        let ff = cfg.d_ff;
        let scale = 1.0 / (d as f32).sqrt();
        Self {
            wq: Tensor::rand_uniform(rng, &[d, d], scale),
            wk: Tensor::rand_uniform(rng, &[kv, d], scale),
            wv: Tensor::rand_uniform(rng, &[kv, d], scale),
            wo: Tensor::rand_uniform(rng, &[d, d], scale),
            w_gate: match cfg.activation {
                Activation::SwiGlu => Some(Tensor::rand_uniform(rng, &[ff, d], scale)),
                Activation::Gelu => None,
            },
            w_up: Tensor::rand_uniform(rng, &[ff, d], scale),
            w_down: Tensor::rand_uniform(rng, &[d, ff], scale),
            attn_norm: Tensor::full(&[d], 1.0),
            mlp_norm: Tensor::full(&[d], 1.0),
        }
    }

    fn perturb(&self, noise: f32, rng: &mut StdRng) -> Self {
        let jitter = |t: &Tensor, rng: &mut StdRng| {
            let mut out = t.clone();
            for v in out.data_mut() {
                *v += rng.gen_range(-noise..=noise);
            }
            out
        };
        Self {
            wq: jitter(&self.wq, rng),
            wk: jitter(&self.wk, rng),
            wv: jitter(&self.wv, rng),
            wo: jitter(&self.wo, rng),
            w_gate: self.w_gate.as_ref().map(|t| jitter(t, rng)),
            w_up: jitter(&self.w_up, rng),
            w_down: jitter(&self.w_down, rng),
            attn_norm: self.attn_norm.clone(),
            mlp_norm: self.mlp_norm.clone(),
        }
    }

    /// Total number of scalar parameters in this layer.
    pub fn param_count(&self) -> usize {
        self.wq.len()
            + self.wk.len()
            + self.wv.len()
            + self.wo.len()
            + self.w_gate.as_ref().map_or(0, |t| t.len())
            + self.w_up.len()
            + self.w_down.len()
            + self.attn_norm.len()
            + self.mlp_norm.len()
    }
}

impl ModelWeights {
    /// Builds a randomly initialised model for `cfg`, deterministic in
    /// `seed`.
    pub fn random(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = cfg.d_model;
        let v = cfg.vocab_size;
        let scale = 1.0 / (d as f32).sqrt();
        let tok_embed = Tensor::rand_uniform(&mut rng, &[v, d], scale);
        let lm_head = Tensor::rand_uniform(&mut rng, &[v, d], scale);
        let layers = (0..cfg.n_layers)
            .map(|_| LayerWeights::random(cfg, &mut rng))
            .collect();
        Self {
            tok_embed,
            final_norm: Tensor::full(&[d], 1.0),
            lm_head,
            layers,
        }
    }

    /// Derives a draft model with the *same architecture* whose weights are a
    /// noisy copy of this model's.  Small `noise` → high draft/target
    /// agreement; large `noise` → low agreement.  This is the functional
    /// analogue of pairing a well- or poorly-aligned speculative model with a
    /// target (paper Table I).
    pub fn perturbed(&self, noise: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            tok_embed: self.tok_embed.clone(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.clone(),
            layers: self
                .layers
                .iter()
                .map(|l| l.perturb(noise, &mut rng))
                .collect(),
        }
    }

    /// Derives a structurally smaller draft model by keeping only the first
    /// `n_layers` layers (embedding, head and norms are shared).  Returns the
    /// truncated weights together with the matching config.
    pub fn truncated(&self, cfg: &ModelConfig, n_layers: usize) -> (ModelConfig, Self) {
        let n = n_layers.min(self.layers.len());
        let mut draft_cfg = cfg.clone();
        draft_cfg.n_layers = n;
        draft_cfg.name = format!("{}-draft-{n}l", cfg.name);
        let weights = Self {
            tok_embed: self.tok_embed.clone(),
            final_norm: self.final_norm.clone(),
            lm_head: self.lm_head.clone(),
            layers: self.layers[..n].to_vec(),
        };
        (draft_cfg, weights)
    }

    /// Total number of scalar parameters actually materialised.
    pub fn param_count(&self) -> usize {
        self.tok_embed.len()
            + self.final_norm.len()
            + self.lm_head.len()
            + self.layers.iter().map(|l| l.param_count()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_in_seed() {
        let cfg = ModelConfig::tiny_llama(64, 2);
        let a = ModelWeights::random(&cfg, 42);
        let b = ModelWeights::random(&cfg, 42);
        assert_eq!(a, b);
        let c = ModelWeights::random(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn param_count_matches_config_estimate() {
        let cfg = ModelConfig::tiny_llama(64, 3);
        let w = ModelWeights::random(&cfg, 1);
        let expected = cfg.total_params() as usize;
        // Config counts final_norm inside io_params; both should agree exactly.
        assert_eq!(w.param_count(), expected);
    }

    #[test]
    fn gelu_models_have_no_gate() {
        let cfg = ModelConfig::tiny_falcon(64, 2);
        let w = ModelWeights::random(&cfg, 1);
        assert!(w.layers.iter().all(|l| l.w_gate.is_none()));
    }

    #[test]
    fn swiglu_models_have_gate() {
        let cfg = ModelConfig::tiny_llama(64, 2);
        let w = ModelWeights::random(&cfg, 1);
        assert!(w.layers.iter().all(|l| l.w_gate.is_some()));
    }

    #[test]
    fn perturbed_with_zero_noise_is_identical() {
        let cfg = ModelConfig::tiny_llama(64, 2);
        let w = ModelWeights::random(&cfg, 7);
        let d = w.perturbed(0.0, 99);
        assert_eq!(w, d);
    }

    #[test]
    fn perturbed_with_noise_differs_but_keeps_shapes() {
        let cfg = ModelConfig::tiny_llama(64, 2);
        let w = ModelWeights::random(&cfg, 7);
        let d = w.perturbed(0.05, 99);
        assert_ne!(w, d);
        assert_eq!(w.param_count(), d.param_count());
        assert_eq!(w.tok_embed, d.tok_embed, "embeddings are shared");
    }

    #[test]
    fn truncated_draft_keeps_prefix_layers() {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let w = ModelWeights::random(&cfg, 3);
        let (dcfg, dw) = w.truncated(&cfg, 2);
        assert_eq!(dcfg.n_layers, 2);
        assert_eq!(dw.layers.len(), 2);
        assert_eq!(dw.layers[0], w.layers[0]);
        assert_eq!(dw.layers[1], w.layers[1]);
    }

    #[test]
    fn truncated_clamps_to_available_layers() {
        let cfg = ModelConfig::tiny_llama(64, 2);
        let w = ModelWeights::random(&cfg, 3);
        let (dcfg, dw) = w.truncated(&cfg, 10);
        assert_eq!(dcfg.n_layers, 2);
        assert_eq!(dw.layers.len(), 2);
    }
}
