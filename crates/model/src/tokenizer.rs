//! Byte-level tokenizer.
//!
//! The reproduction does not need a trained BPE vocabulary: the models are
//! synthetic, so a lossless byte-level tokenizer (each byte is a token, plus
//! BOS/EOS specials) is sufficient for the examples to round-trip prompt text
//! and for workload generation to produce realistic prompt lengths.

use crate::Token;

/// Token id of the beginning-of-sequence marker.
pub const BOS: Token = 256;
/// Token id of the end-of-sequence marker.
pub const EOS: Token = 257;
/// Total vocabulary size of the byte tokenizer (256 bytes + 2 specials).
pub const BYTE_VOCAB_SIZE: usize = 258;

/// Lossless byte-level tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteTokenizer;

impl ByteTokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Self
    }

    /// Vocabulary size (bytes + specials).
    pub fn vocab_size(&self) -> usize {
        BYTE_VOCAB_SIZE
    }

    /// Encodes text into tokens, optionally prefixing BOS.
    pub fn encode(&self, text: &str, add_bos: bool) -> Vec<Token> {
        let mut out = Vec::with_capacity(text.len() + 1);
        if add_bos {
            out.push(BOS);
        }
        out.extend(text.as_bytes().iter().map(|&b| b as Token));
        out
    }

    /// Decodes tokens back into text, skipping special tokens and any token
    /// outside the byte range (synthetic models may emit them).
    pub fn decode(&self, tokens: &[Token]) -> String {
        let bytes: Vec<u8> = tokens
            .iter()
            .filter(|&&t| t < 256)
            .map(|&t| t as u8)
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Truncates or pads (by cycling) an encoded prompt to exactly `len`
    /// tokens — the paper fixes prompts at 128 tokens.
    pub fn fit_length(&self, tokens: &[Token], len: usize) -> Vec<Token> {
        if tokens.is_empty() {
            return vec![BOS; len];
        }
        (0..len).map(|i| tokens[i % tokens.len()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii() {
        let t = ByteTokenizer::new();
        let s = "Write a Python program.";
        let enc = t.encode(s, false);
        assert_eq!(enc.len(), s.len());
        assert_eq!(t.decode(&enc), s);
    }

    #[test]
    fn bos_is_prepended_and_skipped_on_decode() {
        let t = ByteTokenizer::new();
        let enc = t.encode("hi", true);
        assert_eq!(enc[0], BOS);
        assert_eq!(enc.len(), 3);
        assert_eq!(t.decode(&enc), "hi");
    }

    #[test]
    fn roundtrip_utf8() {
        let t = ByteTokenizer::new();
        let s = "héllo — ✓";
        assert_eq!(t.decode(&t.encode(s, false)), s);
    }

    #[test]
    fn out_of_range_tokens_are_dropped() {
        let t = ByteTokenizer::new();
        assert_eq!(t.decode(&[104, 105, 9999, EOS]), "hi");
    }

    #[test]
    fn fit_length_truncates_and_cycles() {
        let t = ByteTokenizer::new();
        let enc = t.encode("abc", false);
        assert_eq!(t.fit_length(&enc, 2).len(), 2);
        let padded = t.fit_length(&enc, 7);
        assert_eq!(padded.len(), 7);
        assert_eq!(padded[3], enc[0]);
        assert_eq!(t.fit_length(&[], 4), vec![BOS; 4]);
    }

    #[test]
    fn vocab_size_covers_specials() {
        assert!(BOS < BYTE_VOCAB_SIZE as Token);
        assert!(EOS < BYTE_VOCAB_SIZE as Token);
        assert_eq!(ByteTokenizer::new().vocab_size(), 258);
    }
}
