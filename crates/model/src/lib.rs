//! # pi-model
//!
//! Decoder-only transformer models and the modelling substrate PipeInfer
//! needs: model geometry, weights, layer-range forward passes (so a model can
//! be split across pipeline stages), a llama.cpp-style KV cache with
//! per-cell sequence metadata, batches, samplers, speculation token trees,
//! a byte-level tokenizer and a synthetic "alignment oracle" model used by
//! the figure benchmarks.
//!
//! ## Relationship to the paper
//!
//! The paper's reference implementation is built on llama.cpp.  This crate
//! re-creates the pieces of llama.cpp that PipeInfer's algorithms depend on:
//!
//! * `llama_batch` → [`batch::Batch`] (tokens + positions + sequence-id sets
//!   + logits flags),
//! * the unified KV cache with cell metadata (`llama_kv_cache`) →
//!   [`kv_cache::KvCache`] including `seq_cp`/`seq_rm`/`seq_keep`,
//! * layer-split evaluation for pipeline parallelism →
//!   [`transformer::Model::forward_layer_range`],
//! * greedy / temperature sampling → [`sampler`],
//! * speculation trees and their attention masks → [`token_tree`].  The
//!   [`token_tree::TokenTree`] is the workspace's *canonical speculation
//!   unit*: `pi_spec`'s TreeSpeculation strategy verifies genuine multi-branch
//!   trees through it, and the linear chains of the speculative baseline and
//!   PipeInfer's micro-batches are its degenerate single-branch case.  The
//!   [`kv_cache::KvCache`] completes the loop with
//!   [`kv_cache::KvCache::branch_commit`] /
//!   [`kv_cache::KvCache::branch_rollback`], which retain only the accepted
//!   root-to-leaf path after verification.

pub mod batch;
pub mod config;
pub mod kv_cache;
pub mod kv_pool;
pub mod oracle;
pub mod sampler;
pub mod token_tree;
pub mod tokenizer;
pub mod transformer;
pub mod weights;

pub use batch::Batch;
pub use config::{Activation, ModelConfig};
pub use kv_cache::{KvCache, KvCacheEvents, KvPage};
pub use kv_pool::{
    AdmissionRefusal, KvPagePool, KvPoolConfig, KvPoolStats, PrefixTicket, StageKey,
};
pub use oracle::{OracleDraft, OracleTarget};
pub use sampler::Sampler;
pub use token_tree::{TokenTree, TreeNodeId};
pub use tokenizer::ByteTokenizer;
pub use transformer::{Model, ScratchArena};
pub use weights::ModelWeights;

/// Token identifier type used throughout the workspace.
pub type Token = u32;

/// Sequence identifier type used by the KV cache, matching llama.cpp's
/// `llama_seq_id` concept.  Sequence 0 is the *canonical* sequence in
/// PipeInfer's multibuffering scheme.
pub type SeqId = u32;

/// Position of a token within a sequence.
pub type Pos = i32;
