//! Speculation token trees — the canonical speculation unit.
//!
//! Every speculation in the workspace is a [`TokenTree`]: the tree-shaped
//! drafts of `pi_spec`'s TreeSpeculation strategy, and the flat chains of the
//! SpecInfer-style baseline and PipeInfer's continuous micro-batches, which
//! are just degenerate single-branch trees ([`TokenTree::chain`]).  A
//! [`TokenTree`] stores the speculated tokens, their parent links and the
//! draft model's confidence for each, and can linearise itself into a
//! [`Batch`] whose sequence-id sets encode the tree attention mask (mutually
//! exclusive branches never share a sequence id, shared prefixes carry the
//! union of their descendants' ids).

use crate::batch::Batch;
use crate::{Pos, SeqId, Token};

/// Identifier of a node within a [`TokenTree`].
pub type TreeNodeId = usize;

/// One speculated token.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// The speculated token.
    pub token: Token,
    /// Parent node, or `None` for a root (depth-0) node.
    pub parent: Option<TreeNodeId>,
    /// Draft-model confidence (max softmax probability) for this token.
    pub prob: f32,
    /// Children of this node.
    pub children: Vec<TreeNodeId>,
    /// Depth within the tree (0 for roots).
    pub depth: usize,
}

/// A tree of speculated tokens rooted just after the last accepted token.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenTree {
    nodes: Vec<TreeNode>,
}

impl TokenTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a linear chain (single-branch tree) from a slice of
    /// `(token, prob)` pairs — the shape produced by PipeInfer's
    /// micro-batched continuous speculation.
    pub fn chain(tokens: &[(Token, f32)]) -> Self {
        let mut tree = Self::new();
        let mut parent = None;
        for &(tok, prob) in tokens {
            parent = Some(tree.add(parent, tok, prob));
        }
        tree
    }

    /// Builds a linear chain from plain tokens (probability 1.0 each) — the
    /// shape of non-speculative runs (prompts, pending tokens) once every
    /// run is represented as a tree.
    pub fn chain_of(tokens: &[Token]) -> Self {
        let mut tree = Self::new();
        let mut parent = None;
        for &tok in tokens {
            parent = Some(tree.add(parent, tok, 1.0));
        }
        tree
    }

    /// The tokens in node-insertion (parent-before-child) order; for a
    /// single-branch tree this is the chain itself.
    pub fn tokens(&self) -> Vec<Token> {
        self.nodes.iter().map(|n| n.token).collect()
    }

    /// Adds a node under `parent` (or as a root if `parent` is `None`).
    pub fn add(&mut self, parent: Option<TreeNodeId>, token: Token, prob: f32) -> TreeNodeId {
        let depth = parent.map(|p| self.nodes[p].depth + 1).unwrap_or(0);
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            token,
            parent,
            prob,
            children: Vec::new(),
            depth,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        id
    }

    /// Number of nodes (speculated tokens).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, indexed by [`TreeNodeId`].
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Node ids of the depth-0 roots.
    pub fn roots(&self) -> Vec<TreeNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Parent link of every node, indexed by [`TreeNodeId`] — the per-node
    /// topology shipped alongside tree batches on the wire.
    pub fn parents(&self) -> Vec<Option<TreeNodeId>> {
        self.nodes.iter().map(|n| n.parent).collect()
    }

    /// Node ids of the primary spine: the first root followed by the chain
    /// of first children — the branch the greedy draft proposed, and the
    /// path PipeInfer's continuous speculation extends its hypothesis with.
    /// Empty for an empty tree.
    pub fn spine(&self) -> Vec<TreeNodeId> {
        let mut spine = Vec::new();
        let mut cur = self.roots().first().copied();
        while let Some(id) = cur {
            spine.push(id);
            cur = self.nodes[id].children.first().copied();
        }
        spine
    }

    /// The subtree hanging below `node`, re-rooted as a standalone tree:
    /// `node`'s children become depth-0 roots and their descendants follow,
    /// preserving parent-before-child order.  Used to salvage the unused
    /// tail of a draft whose leading tokens have already been accepted.
    pub fn subtree_below(&self, node: TreeNodeId) -> TokenTree {
        let mut map: Vec<Option<TreeNodeId>> = vec![None; self.nodes.len()];
        let mut out = TokenTree::new();
        for (id, n) in self.nodes.iter().enumerate() {
            let new_parent = match n.parent {
                Some(p) if p == node => Some(None),
                Some(p) => map[p].map(Some),
                None => None,
            };
            if let Some(parent) = new_parent {
                map[id] = Some(out.add(parent, n.token, n.prob));
            }
        }
        out
    }

    /// Node ids of the leaves.
    pub fn leaves(&self) -> Vec<TreeNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.children.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Maximum depth of any node plus one, i.e. the number of token
    /// positions the tree spans (0 for an empty tree).
    pub fn span(&self) -> usize {
        self.nodes.iter().map(|n| n.depth + 1).max().unwrap_or(0)
    }

    /// The path of node ids from a depth-0 root down to `leaf` (inclusive).
    pub fn path_to(&self, leaf: TreeNodeId) -> Vec<TreeNodeId> {
        let mut path = vec![leaf];
        let mut cur = leaf;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// The token sequence along the path to `leaf`.
    pub fn sequence_to(&self, leaf: TreeNodeId) -> Vec<Token> {
        self.path_to(leaf)
            .iter()
            .map(|&i| self.nodes[i].token)
            .collect()
    }

    /// Assigns one sequence id per leaf, starting from `first_seq`, and
    /// returns for every node the set of sequence ids of the leaves reachable
    /// from it.  Shared prefixes therefore belong to every branch that passes
    /// through them, which is exactly the metadata the KV cache uses to build
    /// the tree attention mask.
    pub fn assign_sequences(&self, first_seq: SeqId) -> Vec<Vec<SeqId>> {
        let leaves = self.leaves();
        let mut node_seqs: Vec<Vec<SeqId>> = vec![Vec::new(); self.nodes.len()];
        for (li, &leaf) in leaves.iter().enumerate() {
            let seq = first_seq + li as SeqId;
            for id in self.path_to(leaf) {
                node_seqs[id].push(seq);
            }
        }
        node_seqs
    }

    /// Linearises the tree into a [`Batch`] whose tokens appear in
    /// parent-before-child order (node insertion order guarantees this),
    /// with positions `base_pos + depth`, sequence ids from
    /// [`TokenTree::assign_sequences`] and logits requested for every token
    /// (verification needs the target distribution at every tree position).
    pub fn to_batch(&self, base_pos: Pos, first_seq: SeqId) -> Batch {
        let seqs = self.assign_sequences(first_seq);
        let mut batch = Batch::new();
        for (id, node) in self.nodes.iter().enumerate() {
            batch.push(
                node.token,
                base_pos + node.depth as Pos,
                seqs[id].clone(),
                true,
            );
        }
        batch
    }

    /// Number of sequence-id slots the batch for this tree will occupy
    /// (= number of leaves).
    pub fn n_sequences(&self) -> usize {
        self.leaves().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree:
    /// ```text
    ///      a(10)
    ///     /    \
    ///  b(11)   c(12)
    ///    |
    ///  d(13)
    /// ```
    fn sample_tree() -> TokenTree {
        let mut t = TokenTree::new();
        let a = t.add(None, 10, 0.9);
        let b = t.add(Some(a), 11, 0.8);
        let _c = t.add(Some(a), 12, 0.5);
        let _d = t.add(Some(b), 13, 0.7);
        t
    }

    #[test]
    fn chain_builds_linear_tree() {
        let t = TokenTree::chain(&[(1, 0.9), (2, 0.8), (3, 0.7)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.leaves(), vec![2]);
        assert_eq!(t.span(), 3);
        assert_eq!(t.sequence_to(2), vec![1, 2, 3]);
        assert_eq!(t.tokens(), vec![1, 2, 3]);
        let plain = TokenTree::chain_of(&[1, 2, 3]);
        assert_eq!(plain.tokens(), t.tokens());
        assert_eq!(plain.span(), 3);
        assert!(plain.nodes().iter().all(|n| n.prob == 1.0));
    }

    #[test]
    fn leaves_and_span() {
        let t = sample_tree();
        assert_eq!(t.leaves(), vec![2, 3]);
        assert_eq!(t.span(), 3);
    }

    #[test]
    fn roots_and_parents() {
        let t = sample_tree();
        assert_eq!(t.roots(), vec![0]);
        assert_eq!(t.parents(), vec![None, Some(0), Some(0), Some(1)]);
        let mut multi = TokenTree::new();
        multi.add(None, 1, 0.5);
        multi.add(None, 2, 0.5);
        assert_eq!(multi.roots(), vec![0, 1]);
    }

    #[test]
    fn spine_follows_first_children() {
        let t = sample_tree();
        // First root (a), then its first child (b), then b's first child (d).
        assert_eq!(t.spine(), vec![0, 1, 3]);
        let chain = TokenTree::chain_of(&[5, 6, 7]);
        assert_eq!(chain.spine(), vec![0, 1, 2]);
        assert!(TokenTree::new().spine().is_empty());
        // Runner-up roots never appear on the spine.
        let mut multi = TokenTree::new();
        let a = multi.add(None, 1, 0.9);
        multi.add(None, 2, 0.5);
        multi.add(Some(a), 3, 0.8);
        assert_eq!(multi.spine(), vec![0, 2]);
    }

    #[test]
    fn subtree_below_reroots_descendants() {
        let t = sample_tree();
        // Below the root a: children b, c become roots; d follows b.
        let below = t.subtree_below(0);
        assert_eq!(below.tokens(), vec![11, 12, 13]);
        assert_eq!(below.roots().len(), 2);
        assert_eq!(below.parents(), vec![None, None, Some(0)]);
        // Below a leaf: empty.
        assert!(t.subtree_below(3).is_empty());
        // Chains lose exactly their head.
        let chain = TokenTree::chain_of(&[1, 2, 3]);
        assert_eq!(chain.subtree_below(0).tokens(), vec![2, 3]);
    }

    #[test]
    fn path_and_sequence() {
        let t = sample_tree();
        assert_eq!(t.path_to(3), vec![0, 1, 3]);
        assert_eq!(t.sequence_to(3), vec![10, 11, 13]);
        assert_eq!(t.sequence_to(2), vec![10, 12]);
    }

    #[test]
    fn sequence_assignment_gives_prefix_union() {
        let t = sample_tree();
        let seqs = t.assign_sequences(4);
        // Leaves are nodes 2 and 3 → sequences 4 and 5 (in leaf order).
        assert_eq!(seqs[2], vec![4]);
        assert_eq!(seqs[3], vec![5]);
        // Node b (id 1) is only on the path to leaf d → sequence 5.
        assert_eq!(seqs[1], vec![5]);
        // Root a is shared by both branches.
        let mut root = seqs[0].clone();
        root.sort_unstable();
        assert_eq!(root, vec![4, 5]);
    }

    #[test]
    fn to_batch_positions_and_order() {
        let t = sample_tree();
        let b = t.to_batch(100, 1);
        assert_eq!(b.len(), 4);
        let entries = b.entries();
        assert_eq!(entries[0].pos, 100);
        assert_eq!(entries[1].pos, 101);
        assert_eq!(entries[2].pos, 101);
        assert_eq!(entries[3].pos, 102);
        // Parent-before-child ordering.
        assert_eq!(b.tokens(), vec![10, 11, 12, 13]);
        assert!(entries.iter().all(|e| e.logits));
    }

    #[test]
    fn branches_never_share_sequences() {
        let t = sample_tree();
        let seqs = t.assign_sequences(0);
        // Node 1 (branch via b) and node 2 (branch via c) are mutually
        // exclusive: no common sequence id.
        assert!(seqs[1].iter().all(|s| !seqs[2].contains(s)));
    }

    #[test]
    fn empty_tree() {
        let t = TokenTree::new();
        assert!(t.is_empty());
        assert_eq!(t.span(), 0);
        assert_eq!(t.n_sequences(), 0);
        assert!(t.to_batch(0, 0).is_empty());
    }
}
