//! Property tests for the canonical speculation-tree unit.
//!
//! Two invariants the whole tree-speculation path rests on:
//!
//! 1. The tree attention mask that [`TokenTree::assign_sequences`] encodes
//!    into sequence-id sets — as realised by [`KvCache::visible_cells`] —
//!    is *exactly* the ancestor relation: a tree token attends to another
//!    tree token iff that token is an ancestor-or-self in the tree, and to
//!    every canonical context cell, never to a sibling branch.
//! 2. [`KvCache::branch_commit`] / [`KvCache::branch_rollback`] round-trip:
//!    after verifying a tree and committing the accepted root-to-leaf
//!    prefix, the cache is indistinguishable from one that evaluated the
//!    accepted tokens *linearly* in the canonical sequence (same sequence
//!    lengths, same positions, same number of live cells).
//!
//! (The third leg — a degenerate single-branch tree verifying byte-for-byte
//! like linear speculation — lives in `pi_spec::verify` and the
//! `TreeSpeculationStrategy` deployment tests.)

use pi_model::{KvCache, Pos, SeqId, TokenTree};
use proptest::prelude::*;

/// Builds a random tree from parent codes: node 0 is a root; node `i`'s code
/// 0 makes it a root, otherwise its parent is `(code - 1) % i`.
fn build_tree(codes: &[usize]) -> TokenTree {
    let mut tree = TokenTree::new();
    for (i, &code) in codes.iter().enumerate() {
        let parent = if i == 0 || code == 0 {
            None
        } else {
            Some((code - 1) % i)
        };
        tree.add(parent, (100 + i) as u32, 0.5);
    }
    tree
}

/// Whether `a` is an ancestor of `b` (or `a == b`) in `tree`.
fn is_ancestor_or_self(tree: &TokenTree, a: usize, b: usize) -> bool {
    let mut cur = Some(b);
    while let Some(id) = cur {
        if id == a {
            return true;
        }
        cur = tree.nodes()[id].parent;
    }
    false
}

/// Replays what the tree head does to a stage cache before verification:
/// `ctx_len` canonical cells, the context prefix copied to every leaf
/// sequence, then one cell per tree node.  Returns the cache and the cell
/// index of every tree node.
fn cache_with_tree(tree: &TokenTree, ctx_len: usize) -> (KvCache, Vec<usize>) {
    let mut cache = KvCache::new(1, 2, 256);
    for pos in 0..ctx_len {
        cache.alloc(pos as Pos, &[0]).unwrap();
    }
    let n_leaves = tree.n_sequences();
    for leaf in 0..n_leaves as SeqId {
        cache.seq_cp(0, 1 + leaf, 0, Pos::MAX);
    }
    let seqs = tree.assign_sequences(1);
    let cells: Vec<usize> = tree
        .nodes()
        .iter()
        .enumerate()
        .map(|(id, node)| {
            cache
                .alloc(ctx_len as Pos + node.depth as Pos, &seqs[id])
                .unwrap()
        })
        .collect();
    (cache, cells)
}

proptest! {
    /// Invariant 1: sequence-set visibility == ancestor relation.
    #[test]
    fn prop_tree_mask_matches_naive_ancestor_check(
        codes in proptest::collection::vec(0usize..8, 1..12),
        ctx_len in 1usize..6,
    ) {
        let tree = build_tree(&codes);
        let (cache, cells) = cache_with_tree(&tree, ctx_len);
        let seqs = tree.assign_sequences(1);
        prop_assert!(cache.check_consistency().is_ok());
        for (i, node_i) in tree.nodes().iter().enumerate() {
            let visible = cache.visible_cells(&seqs[i], ctx_len as Pos + node_i.depth as Pos);
            // Every canonical context cell is visible (shared prefix).
            for pos in 0..ctx_len {
                let ctx_cell = cache
                    .cells()
                    .iter()
                    .position(|c| c.pos == pos as Pos && c.has_seq(0))
                    .unwrap();
                prop_assert!(visible.contains(&ctx_cell), "node {i} missed context pos {pos}");
            }
            // Tree-to-tree visibility is exactly ancestor-or-self.
            for (j, &cell_j) in cells.iter().enumerate() {
                prop_assert_eq!(
                    visible.contains(&cell_j),
                    is_ancestor_or_self(&tree, j, i),
                    "node {} vs node {}: mask and ancestor check disagree",
                    i,
                    j
                );
            }
        }
    }

    /// Invariant 2: committing the accepted path (or rolling the tree back)
    /// leaves the cache in the state a linear evaluation of the accepted
    /// tokens would have produced.
    #[test]
    fn prop_branch_commit_round_trips_to_linear_state(
        codes in proptest::collection::vec(0usize..8, 1..12),
        ctx_len in 1usize..6,
        leaf_pick in 0usize..64,
        len_pick in 0usize..64,
    ) {
        let tree = build_tree(&codes);
        let (mut cache, _) = cache_with_tree(&tree, ctx_len);
        let n_leaves = tree.n_sequences();
        let seqs = tree.assign_sequences(1);

        // Choose a root-to-node path prefix as the "accepted" path.
        let leaves = tree.leaves();
        let leaf = leaves[leaf_pick % leaves.len()];
        let path = tree.path_to(leaf);
        let accepted = len_pick % (path.len() + 1);

        if accepted > 0 {
            let deepest = path[accepted - 1];
            cache.branch_commit(
                0,
                seqs[deepest][0],
                1,
                n_leaves,
                ctx_len as Pos,
                (ctx_len + accepted) as Pos,
            );
        } else {
            cache.branch_rollback(1, n_leaves);
        }

        // Reference: a cache that only ever evaluated context + accepted
        // tokens linearly in the canonical sequence.
        let mut linear = KvCache::new(1, 2, 256);
        for pos in 0..ctx_len + accepted {
            linear.alloc(pos as Pos, &[0]).unwrap();
        }

        prop_assert!(cache.check_consistency().is_ok());
        prop_assert_eq!(cache.used(), linear.used(), "live cell count");
        prop_assert_eq!(cache.seq_len(0), linear.seq_len(0), "canonical length");
        prop_assert_eq!(cache.seq_max_pos(0), linear.seq_max_pos(0));
        for leaf_seq in 1..=n_leaves as SeqId {
            prop_assert_eq!(cache.seq_len(leaf_seq), 0, "tree seq {} must be gone", leaf_seq);
        }
        // Same canonical positions, cell indices aside.
        let positions = |c: &KvCache| {
            let mut p: Vec<Pos> = c
                .cells()
                .iter()
                .filter(|cell| cell.has_seq(0))
                .map(|cell| cell.pos)
                .collect();
            p.sort_unstable();
            p
        };
        prop_assert_eq!(positions(&cache), positions(&linear));
    }
}
