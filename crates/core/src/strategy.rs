//! PipeInfer as a [`Strategy`] for the shared
//! [`Deployment`](pi_spec::deploy::Deployment) layer.
//!
//! Rank layout (matching `pi_perf::memory::per_node_memory` and the paper's
//! Fig. 3):
//!
//! * rank 0 — head: draft model, embedding/output head, sampling and
//!   orchestration (no target layers);
//! * ranks 1‥N-1 — the target pipeline, one node shorter than under the
//!   iterative baseline.

use crate::head::PipeInferHead;
use crate::PipeInferConfig;
use pi_cluster::NodeBehavior;
use pi_model::Model;
use pi_spec::deploy::{HeadParts, Strategy};
use pi_spec::{PipeMsg, PipelineRoute};
use std::ops::Range;

/// PipeInfer: asynchronous pipelined speculation with a draft-hosting head
/// rank that holds no target layers.
#[derive(Debug, Clone)]
pub struct PipeInferStrategy {
    config: PipeInferConfig,
}

impl PipeInferStrategy {
    /// Creates the strategy with the given PipeInfer tuning knobs.
    pub fn new(config: PipeInferConfig) -> Self {
        Self { config }
    }

    /// The PipeInfer configuration this strategy deploys with.
    pub fn config(&self) -> &PipeInferConfig {
        &self.config
    }
}

impl Default for PipeInferStrategy {
    fn default() -> Self {
        Self::new(PipeInferConfig::default())
    }
}

impl Strategy for PipeInferStrategy {
    fn name(&self) -> &'static str {
        "PipeInfer"
    }

    fn min_nodes(&self) -> usize {
        // The head/draft rank plus at least one target-pipeline rank.
        2
    }

    fn needs_drafter(&self) -> bool {
        true
    }

    fn route(&self, n_nodes: usize) -> PipelineRoute {
        // Every rank is on the route, but the head contributes no target
        // layers (see `split_layers`): stage 0 only embeds, samples and
        // orchestrates while hosting the draft model.
        PipelineRoute::baseline(n_nodes)
    }

    fn split_layers(&self, n_layers: usize, route: &PipelineRoute) -> Vec<Range<usize>> {
        let mut splits = Vec::with_capacity(route.n_stages());
        splits.push(0..0);
        splits.extend(Model::split_layers(n_layers, route.n_stages() - 1));
        splits
    }

    fn build_head(&self, mut parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
        let drafter = parts.take_drafter();
        Box::new(PipeInferHead::new(
            parts.route,
            parts.engine,
            drafter,
            parts.gen_config,
            self.config.clone(),
            parts.record,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_perf::{ClusterSpec, ModelPair};
    use pi_spec::deploy::{Deployment, ExecutionMode, IterativeStrategy, SpeculativeStrategy};
    use pi_spec::GenConfig;

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    #[test]
    fn head_rank_holds_no_target_layers() {
        let deployment = Deployment::new(PipeInferStrategy::default());
        for n in [2usize, 4, 8] {
            let (route, splits) = deployment.layout(&sim_mode(n.max(4)), n);
            assert_eq!(route.head(), 0);
            assert_eq!(route.n_stages(), n);
            assert!(splits[0].is_empty(), "PipeInfer's head must hold no layers");
            // Ranks 1..N cover every layer contiguously.
            let n_layers = sim_mode(4).target_layers();
            let mut next = 0;
            for r in &splits[1..] {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n_layers);
        }
    }

    #[test]
    fn strategy_declares_draft_hosting_head() {
        let s = PipeInferStrategy::default();
        assert!(s.needs_drafter());
        assert_eq!(s.min_nodes(), 2);
        assert_eq!(s.name(), "PipeInfer");
    }

    #[test]
    fn all_three_strategies_emit_identical_token_streams_in_sim() {
        // One oracle seed fixes the target model's greedy continuation; every
        // strategy must reproduce it bit-for-bit (the paper's §V-B claim).
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let n = 8;
        let iter = Deployment::new(IterativeStrategy).run(&sim_mode(n), n, &config);
        let spec = Deployment::new(SpeculativeStrategy).run(&sim_mode(n), n, &config);
        let pipe = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(n), n, &config);
        assert!(iter.completed && spec.completed && pipe.completed);
        let want = &iter.record.tokens[..config.n_generate];
        assert_eq!(&spec.record.tokens[..config.n_generate], want);
        assert_eq!(&pipe.record.tokens[..config.n_generate], want);
    }

    #[test]
    fn prepared_deployment_isolates_requests() {
        // A serving layer reuses one prepared PipeInfer deployment across a
        // request stream.  All run-tracking state (RunTracker FIFO, sequence-
        // partition pool, cancellation bookkeeping) lives in the head built
        // per run, so every request is an isolated session: repeated and
        // differing requests must match their solo one-shot runs exactly.
        let prepared = Deployment::new(PipeInferStrategy::default()).prepare(&sim_mode(4), 4);
        let requests = [
            GenConfig {
                prompt: vec![5; 16],
                n_generate: 24,
                max_draft: 4,
                confidence_cutoff: 0.4,
                kv_capacity: 4096,
            },
            GenConfig {
                prompt: vec![11; 8],
                n_generate: 12,
                max_draft: 4,
                confidence_cutoff: 0.4,
                kv_capacity: 4096,
            },
        ];
        let mut solo_tokens = Vec::new();
        for config in &requests {
            let served = prepared.run(config);
            let solo = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(4), 4, config);
            assert!(served.completed && solo.completed);
            assert_eq!(served.record.tokens, solo.record.tokens);
            assert_eq!(served.record.runs_launched, solo.record.runs_launched);
            assert_eq!(served.record.runs_cancelled, solo.record.runs_cancelled);
            assert_eq!(served.record.finished_at, solo.record.finished_at);
            solo_tokens.push(solo.record.tokens);
        }
        // Interleaving order must not matter either: serving the first
        // request again after the second must still match its solo output.
        let again = prepared.run(&requests[0]);
        assert_eq!(again.record.tokens, solo_tokens[0]);
    }

    #[test]
    fn ablation_configs_flow_through_the_strategy() {
        let s = PipeInferStrategy::new(PipeInferConfig::no_cancellation());
        assert!(!s.config().enable_cancellation);
        let config = GenConfig {
            prompt: vec![2; 8],
            n_generate: 12,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let full = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(4), 4, &config);
        let ablated = Deployment::new(s).run(&sim_mode(4), 4, &config);
        assert_eq!(full.record.tokens, ablated.record.tokens);
    }
}
