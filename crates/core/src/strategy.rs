//! PipeInfer as a [`Strategy`] for the shared
//! [`Deployment`](pi_spec::deploy::Deployment) layer.
//!
//! Rank layout (matching `pi_perf::memory::per_node_memory` and the paper's
//! Fig. 3):
//!
//! * rank 0 — head: embedding/output head, sampling and orchestration (no
//!   target layers); under `DraftPlacement::HeadHosted` it also hosts the
//!   draft model;
//! * rank 1 — under `DraftPlacement::DedicatedRank`, the dedicated draft
//!   rank: off the target-pipeline route (`PipelineRoute::pipeinfer`),
//!   serving `DraftRequest` transactions concurrently with target
//!   inference — the paper's actual Fig. 3 deployment;
//! * remaining ranks — the target pipeline, one node shorter than under the
//!   iterative baseline (two shorter with a dedicated draft rank).

use crate::draft_node::DraftNode;
use crate::head::{DraftSource, PipeInferHead};
use crate::{DraftPlacement, PipeInferConfig};
use pi_cluster::NodeBehavior;
use pi_model::Model;
use pi_spec::deploy::{build_drafter, ExecutionMode, HeadParts, StepProfile, Strategy};
use pi_spec::{GenConfig, PipeMsg, PipelineRoute, TreeConfig};
use std::ops::Range;

/// The rank hosting the draft model in the paper's Fig. 3 layout.
pub const DRAFT_RANK: usize = 1;

/// PipeInfer: asynchronous pipelined speculation.  The head rank holds no
/// target layers; depending on [`DraftPlacement`] the draft model lives on
/// the head or on the dedicated rank 1.
#[derive(Debug, Clone)]
pub struct PipeInferStrategy {
    config: PipeInferConfig,
}

impl PipeInferStrategy {
    /// Creates the strategy with the given PipeInfer tuning knobs.
    pub fn new(config: PipeInferConfig) -> Self {
        Self { config }
    }

    /// The PipeInfer configuration this strategy deploys with.
    pub fn config(&self) -> &PipeInferConfig {
        &self.config
    }

    fn dedicated(&self) -> bool {
        self.config.draft_placement == DraftPlacement::DedicatedRank
    }
}

impl Default for PipeInferStrategy {
    fn default() -> Self {
        Self::new(PipeInferConfig::default())
    }
}

impl Strategy for PipeInferStrategy {
    fn name(&self) -> &'static str {
        "PipeInfer"
    }

    fn min_nodes(&self) -> usize {
        if self.dedicated() {
            // Head + dedicated draft rank + at least one target stage.
            3
        } else {
            // The head/draft rank plus at least one target-pipeline rank.
            2
        }
    }

    fn needs_drafter(&self) -> bool {
        // The head always gets a local drafter: the head-hosted layout
        // drafts with it directly, and the dedicated layout holds it in
        // reserve as the failover drafter for a dead or unreachable draft
        // rank (rank 1 builds its own serving drafter via
        // `build_auxiliary`).  Drafter construction is rank-agnostic, so the
        // fallback proposes exactly what the remote rank would have —
        // failover never changes the token stream.
        true
    }

    fn step_profile(&self) -> StepProfile {
        // PipeInfer's continuous asynchronous speculation collapses to its
        // synchronous per-step equivalent under a step session: greedy
        // verification is lossless, so the stream is unchanged.  The micro
        // shape carries over — tree micro-batches step as trees.
        if self.config.micro_width > 1 {
            StepProfile::Tree(TreeConfig {
                max_width: self.config.micro_width,
                window: self.config.shape_window,
                ..TreeConfig::default()
            })
        } else {
            StepProfile::Chain
        }
    }

    fn route(&self, n_nodes: usize) -> PipelineRoute {
        if self.dedicated() {
            // Fig. 3: rank 1 is the draft rank, off the route; stage 0 only
            // embeds, samples and orchestrates (no target layers).
            PipelineRoute::pipeinfer(n_nodes)
        } else {
            // Every rank is on the route, but the head contributes no target
            // layers (see `split_layers`): stage 0 only embeds, samples and
            // orchestrates while hosting the draft model.
            PipelineRoute::baseline(n_nodes)
        }
    }

    fn split_layers(&self, n_layers: usize, route: &PipelineRoute) -> Vec<Range<usize>> {
        let mut splits = Vec::with_capacity(route.n_stages());
        splits.push(0..0);
        splits.extend(Model::split_layers(n_layers, route.n_stages() - 1));
        splits
    }

    fn build_head(&self, mut parts: HeadParts) -> Box<dyn NodeBehavior<PipeMsg>> {
        let (draft, fallback) = if self.dedicated() {
            (DraftSource::Remote(DRAFT_RANK), Some(parts.take_drafter()))
        } else {
            (DraftSource::Local(parts.take_drafter()), None)
        };
        let mut head = PipeInferHead::new(
            parts.route,
            parts.engine,
            draft,
            parts.gen_config,
            self.config.clone(),
            parts.record,
        )
        .with_prompt_cached(parts.prompt_cached);
        if let Some(drafter) = fallback {
            head = head.with_fallback(drafter);
        }
        Box::new(head)
    }

    fn build_auxiliary(
        &self,
        mode: &ExecutionMode,
        _n_nodes: usize,
        route: &PipelineRoute,
        gen_config: &GenConfig,
    ) -> Vec<(usize, Box<dyn NodeBehavior<PipeMsg>>)> {
        if !self.dedicated() {
            return Vec::new();
        }
        debug_assert!(route.stage_of(DRAFT_RANK).is_none());
        let drafter = build_drafter(mode, DRAFT_RANK, gen_config);
        vec![(
            DRAFT_RANK,
            Box::new(DraftNode::new(route.head(), drafter)) as Box<dyn NodeBehavior<PipeMsg>>,
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_perf::{ClusterSpec, ModelPair};
    use pi_spec::deploy::{Deployment, ExecutionMode, IterativeStrategy, SpeculativeStrategy};
    use pi_spec::GenConfig;

    fn sim_mode(n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair: ModelPair::dolphin_tinyllama(),
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    #[test]
    fn head_rank_holds_no_target_layers() {
        let deployment = Deployment::new(PipeInferStrategy::default());
        for n in [2usize, 4, 8] {
            let (route, splits) = deployment.layout(&sim_mode(n.max(4)), n);
            assert_eq!(route.head(), 0);
            assert_eq!(route.n_stages(), n);
            assert!(splits[0].is_empty(), "PipeInfer's head must hold no layers");
            // Ranks 1..N cover every layer contiguously.
            let n_layers = sim_mode(4).target_layers();
            let mut next = 0;
            for r in &splits[1..] {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n_layers);
        }
    }

    #[test]
    fn dedicated_layout_skips_the_draft_rank() {
        let strategy = PipeInferStrategy::new(PipeInferConfig::dedicated_draft_rank());
        assert!(
            strategy.needs_drafter(),
            "the head keeps a local fallback drafter for draft-rank failover"
        );
        assert_eq!(strategy.min_nodes(), 3);
        let deployment = Deployment::new(strategy);
        for n in [3usize, 4, 8] {
            let (route, splits) = deployment.layout(&sim_mode(n.max(4)), n);
            assert_eq!(route.head(), 0);
            assert_eq!(route.stage_of(DRAFT_RANK), None, "rank 1 is off-route");
            assert_eq!(route.n_stages(), n - 1);
            assert!(splits[0].is_empty(), "head still holds no layers");
            let n_layers = sim_mode(4).target_layers();
            let mut next = 0;
            for r in &splits[1..] {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n_layers);
        }
    }

    #[test]
    fn strategy_declares_draft_hosting_head() {
        let s = PipeInferStrategy::default();
        assert!(s.needs_drafter());
        assert_eq!(s.min_nodes(), 2);
        assert_eq!(s.name(), "PipeInfer");
    }

    #[test]
    fn all_three_strategies_emit_identical_token_streams_in_sim() {
        // One oracle seed fixes the target model's greedy continuation; every
        // strategy must reproduce it bit-for-bit (the paper's §V-B claim).
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let n = 8;
        let iter = Deployment::new(IterativeStrategy).run(&sim_mode(n), n, &config);
        let spec = Deployment::new(SpeculativeStrategy).run(&sim_mode(n), n, &config);
        let pipe = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(n), n, &config);
        assert!(iter.completed && spec.completed && pipe.completed);
        let want = &iter.record.tokens[..config.n_generate];
        assert_eq!(&spec.record.tokens[..config.n_generate], want);
        assert_eq!(&pipe.record.tokens[..config.n_generate], want);
    }

    #[test]
    fn every_placement_and_micro_shape_emits_the_same_stream() {
        // The four-way layout matrix (head-hosted/dedicated × chain/tree)
        // must agree token-for-token with the head-hosted chain stream.
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let n = 8;
        let reference = Deployment::new(PipeInferStrategy::default())
            .run(&sim_mode(n), n, &config)
            .record
            .tokens;
        for variant in [
            PipeInferConfig::dedicated_draft_rank(),
            PipeInferConfig::tree_micro(),
            PipeInferConfig::tree_micro().with_placement(crate::DraftPlacement::DedicatedRank),
            PipeInferConfig::tree_micro().whole_run_invalidation(),
        ] {
            let out = Deployment::new(PipeInferStrategy::new(variant.clone())).run(
                &sim_mode(n),
                n,
                &config,
            );
            assert!(out.completed, "{variant:?}");
            assert_eq!(
                out.record.tokens, reference,
                "layout/shape must never change the greedy stream ({variant:?})"
            );
        }
    }

    #[test]
    fn dedicated_rank_serves_draft_traffic() {
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let n = 8;
        let strategy = PipeInferStrategy::new(PipeInferConfig::dedicated_draft_rank());
        let out = Deployment::new(strategy).run(&sim_mode(n), n, &config);
        assert!(out.completed);
        assert!(out.record.draft_requests > 0, "head must request drafts");
        // Draft traffic flows head → rank 1 → head and is accounted per rank.
        assert!(out.stats.node(0).draft_messages_sent > 0);
        assert!(out.stats.node(DRAFT_RANK).draft_messages_sent > 0);
        assert!(
            out.stats.node(DRAFT_RANK).busy_time > 0.0,
            "drafting is paid"
        );
        // Head-hosted layouts send no draft traffic at all.
        let hosted = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(n), n, &config);
        assert_eq!(hosted.stats.total_draft_messages(), 0);
        assert_eq!(hosted.record.draft_requests, 0);
    }

    #[test]
    fn prepared_deployment_isolates_requests() {
        // A serving layer reuses one prepared PipeInfer deployment across a
        // request stream.  All run-tracking state (RunTracker FIFO, sequence-
        // partition pool, cancellation bookkeeping) lives in the head built
        // per run, so every request is an isolated session: repeated and
        // differing requests must match their solo one-shot runs exactly.
        let prepared = Deployment::new(PipeInferStrategy::default()).prepare(&sim_mode(4), 4);
        let requests = [
            GenConfig {
                prompt: vec![5; 16],
                n_generate: 24,
                max_draft: 4,
                confidence_cutoff: 0.4,
                kv_capacity: 4096,
            },
            GenConfig {
                prompt: vec![11; 8],
                n_generate: 12,
                max_draft: 4,
                confidence_cutoff: 0.4,
                kv_capacity: 4096,
            },
        ];
        let mut solo_tokens = Vec::new();
        for config in &requests {
            let served = prepared.run(config);
            let solo = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(4), 4, config);
            assert!(served.completed && solo.completed);
            assert_eq!(served.record.tokens, solo.record.tokens);
            assert_eq!(served.record.runs_launched, solo.record.runs_launched);
            assert_eq!(served.record.runs_cancelled, solo.record.runs_cancelled);
            assert_eq!(served.record.finished_at, solo.record.finished_at);
            solo_tokens.push(solo.record.tokens);
        }
        // Interleaving order must not matter either: serving the first
        // request again after the second must still match its solo output.
        let again = prepared.run(&requests[0]);
        assert_eq!(again.record.tokens, solo_tokens[0]);
    }

    #[test]
    fn ablation_configs_flow_through_the_strategy() {
        let s = PipeInferStrategy::new(PipeInferConfig::no_cancellation());
        assert!(!s.config().enable_cancellation);
        let config = GenConfig {
            prompt: vec![2; 8],
            n_generate: 12,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let full = Deployment::new(PipeInferStrategy::default()).run(&sim_mode(4), 4, &config);
        let ablated = Deployment::new(s).run(&sim_mode(4), 4, &config);
        assert_eq!(full.record.tokens, ablated.record.tokens);
    }
}
