//! Thin PipeInfer entry point over the shared [`pi_spec::deploy`] layer.
//!
//! [`run_pipeinfer`] mirrors `pi_spec::runner::{run_iterative,
//! run_speculative}`: it wraps [`PipeInferStrategy`] in a
//! [`Deployment`] and runs it.  All assembly
//! (route construction, engine/drafter building, worker assembly, driver
//! selection) lives in `pi_spec::deploy` — none of it is duplicated here.

use crate::strategy::PipeInferStrategy;
use crate::PipeInferConfig;
use pi_spec::deploy::{Deployment, ExecutionMode, RunOutput};
use pi_spec::GenConfig;

/// Runs PipeInfer across `n_nodes` ranks (at least two: the head/draft rank
/// plus one target-pipeline rank).
pub fn run_pipeinfer(
    mode: &ExecutionMode,
    n_nodes: usize,
    gen_config: &GenConfig,
    config: &PipeInferConfig,
) -> RunOutput {
    Deployment::new(PipeInferStrategy::new(config.clone())).run(mode, n_nodes, gen_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{Model, ModelConfig, OracleTarget};
    use pi_perf::{ClusterSpec, ModelPair};
    use pi_spec::runner::{run_iterative, run_speculative};
    use std::sync::Arc;

    fn real_mode(seed: u64) -> ExecutionMode {
        let cfg = ModelConfig::tiny_llama(64, 4);
        let target = Arc::new(Model::random(cfg.clone(), seed));
        let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
        ExecutionMode::Real { target, draft }
    }

    fn sim_mode(pair: ModelPair, n_nodes: usize) -> ExecutionMode {
        ExecutionMode::Sim {
            pair,
            cluster: ClusterSpec::cluster_c(n_nodes),
            oracle_seed: 42,
        }
    }

    #[test]
    fn real_pipeinfer_matches_iterative_output_exactly() {
        let mode = real_mode(11);
        let config = GenConfig::small_test(vec![9, 8, 7, 6, 5], 12);
        let iter = run_iterative(&mode, 4, &config);
        let pipe = run_pipeinfer(&mode, 4, &config, &PipeInferConfig::default());
        assert!(iter.completed && pipe.completed);
        assert!(pipe.record.tokens.len() >= 12);
        assert_eq!(
            iter.record.tokens[..12],
            pipe.record.tokens[..12],
            "PipeInfer must not change greedy output"
        );
    }

    #[test]
    fn sim_pipeinfer_output_matches_oracle() {
        let pair = ModelPair::dolphin_tinyllama();
        let vocab = pair.target.cfg.vocab_size as u32;
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let out = run_pipeinfer(&sim_mode(pair, 8), 8, &config, &PipeInferConfig::default());
        assert!(out.completed);
        let truth = OracleTarget::new(42, vocab).generate(&[5; 16], 40);
        assert_eq!(out.record.tokens[..32].to_vec(), truth[1..33].to_vec());
    }

    #[test]
    fn sim_pipeinfer_beats_speculative_baseline_on_deep_pipelines() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 48,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        // Well-aligned pair: PipeInfer must win, modestly.
        let pair = ModelPair::dolphin_tinyllama();
        let spec = run_speculative(&sim_mode(pair.clone(), 8), 8, &config);
        let pipe = run_pipeinfer(&sim_mode(pair, 8), 8, &config, &PipeInferConfig::default());
        assert!(spec.completed && pipe.completed);
        let well_aligned = pipe.record.generation_speed() / spec.record.generation_speed();
        assert!(
            well_aligned > 1.05,
            "PipeInfer speedup only {well_aligned:.2}"
        );

        // Poorly-aligned pair (Goliath + XWin-7B, 52 %): the paper's key
        // observation is that PipeInfer's relative advantage *grows* as
        // alignment drops.
        let pair = ModelPair::goliath_xwin7b();
        let spec = run_speculative(&sim_mode(pair.clone(), 8), 8, &config);
        let pipe = run_pipeinfer(&sim_mode(pair, 8), 8, &config, &PipeInferConfig::default());
        let poorly_aligned = pipe.record.generation_speed() / spec.record.generation_speed();
        assert!(
            poorly_aligned > 1.15,
            "PipeInfer speedup only {poorly_aligned:.2}"
        );
        assert!(
            poorly_aligned > well_aligned,
            "advantage must grow as alignment drops ({poorly_aligned:.2} vs {well_aligned:.2})"
        );
    }

    #[test]
    fn sim_pipeinfer_ttft_is_near_iterative() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 24,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let pair = ModelPair::goliath_xwin7b();
        let iter = run_iterative(&sim_mode(pair.clone(), 8), 8, &config);
        let spec = run_speculative(&sim_mode(pair.clone(), 8), 8, &config);
        let pipe = run_pipeinfer(&sim_mode(pair, 8), 8, &config, &PipeInferConfig::default());
        // The paper's Fig. 5: PipeInfer reaches near-parity with iterative
        // TTFT while speculative inference is substantially slower to its
        // first token.
        assert!(pipe.record.ttft() < 1.5 * iter.record.ttft());
        assert!(spec.record.ttft() > pipe.record.ttft());
    }

    #[test]
    fn real_dedicated_rank_and_tree_micro_match_iterative_output() {
        // The Fig. 3 layout and tree micro-batches on the threaded driver
        // with real tiny models: greedy output must be preserved exactly.
        let mode = real_mode(31);
        let config = GenConfig::small_test(vec![9, 8, 7, 6, 5], 10);
        let iter = run_iterative(&mode, 3, &config);
        assert!(iter.completed);
        for variant in [
            PipeInferConfig::dedicated_draft_rank(),
            PipeInferConfig::tree_micro(),
            PipeInferConfig::tree_micro().with_placement(crate::DraftPlacement::DedicatedRank),
        ] {
            let pipe = run_pipeinfer(&mode, 3, &config, &variant);
            assert!(pipe.completed, "{variant:?}");
            assert_eq!(
                iter.record.tokens[..10],
                pipe.record.tokens[..10],
                "layout/shape must not change greedy output ({variant:?})"
            );
        }
    }

    #[test]
    fn sim_dedicated_rank_output_matches_oracle() {
        let pair = ModelPair::goliath_xwin7b();
        let vocab = pair.target.cfg.vocab_size as u32;
        let config = GenConfig {
            prompt: vec![5; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let out = run_pipeinfer(
            &sim_mode(pair, 8),
            8,
            &config,
            &PipeInferConfig::dedicated_draft_rank(),
        );
        assert!(out.completed);
        let truth = OracleTarget::new(42, vocab).generate(&[5; 16], 40);
        assert_eq!(out.record.tokens[..32].to_vec(), truth[1..33].to_vec());
        assert!(out.record.draft_requests > 0);
        assert!(out.stats.total_draft_bytes() > 0);
    }

    #[test]
    fn sim_pipeinfer_is_deterministic() {
        let config = GenConfig {
            prompt: vec![3; 8],
            n_generate: 16,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 2048,
        };
        let pair = ModelPair::falcon_7b();
        let a = run_pipeinfer(
            &sim_mode(pair.clone(), 4),
            4,
            &config,
            &PipeInferConfig::default(),
        );
        let b = run_pipeinfer(&sim_mode(pair, 4), 4, &config, &PipeInferConfig::default());
        assert_eq!(a.record.tokens, b.record.tokens);
        assert_eq!(a.record.finished_at, b.record.finished_at);
        assert_eq!(a.stats.total_messages(), b.stats.total_messages());
    }

    #[test]
    fn ablations_degrade_speed_but_not_correctness() {
        let config = GenConfig {
            prompt: vec![2; 16],
            n_generate: 32,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let pair = ModelPair::goliath_xwin7b();
        let full = run_pipeinfer(
            &sim_mode(pair.clone(), 8),
            8,
            &config,
            &PipeInferConfig::default(),
        );
        let no_cancel = run_pipeinfer(
            &sim_mode(pair.clone(), 8),
            8,
            &config,
            &PipeInferConfig::no_cancellation(),
        );
        let no_cont = run_pipeinfer(
            &sim_mode(pair, 8),
            8,
            &config,
            &PipeInferConfig::no_continuous_speculation(),
        );
        assert_eq!(full.record.tokens, no_cancel.record.tokens);
        assert_eq!(full.record.tokens, no_cont.record.tokens);
        // With a poorly aligned pair, both ablations should cost speed.
        assert!(full.record.generation_speed() >= 0.95 * no_cancel.record.generation_speed());
        assert!(full.record.generation_speed() > no_cont.record.generation_speed());
    }

    #[test]
    fn two_node_deployment_degenerates_gracefully() {
        let mode = real_mode(21);
        let config = GenConfig::small_test(vec![1, 2, 3], 6);
        let out = run_pipeinfer(&mode, 2, &config, &PipeInferConfig::default());
        assert!(out.completed);
        assert!(out.record.tokens.len() >= 6);
    }
}

#[cfg(test)]
mod diag_tests {
    use super::*;
    use pi_perf::{ClusterSpec, ModelPair};
    use pi_spec::runner::{run_iterative, run_speculative};

    #[test]
    #[ignore]
    fn diag() {
        let config = GenConfig {
            prompt: vec![1; 16],
            n_generate: 48,
            max_draft: 4,
            confidence_cutoff: 0.4,
            kv_capacity: 4096,
        };
        let pair = ModelPair::dolphin_tinyllama();
        let mode = |n: usize| ExecutionMode::Sim {
            pair: pair.clone(),
            cluster: ClusterSpec::cluster_c(n),
            oracle_seed: 42,
        };
        for n in [4usize, 8, 16, 32] {
            let iter = run_iterative(&mode(n), n, &config);
            let spec = run_speculative(&mode(n), n, &config);
            let pipe = run_pipeinfer(&mode(n), n, &config, &PipeInferConfig::default());
            eprintln!(
                "n={n}: iter={:.2} spec={:.2} pipe={:.2} (pipe/spec={:.2}) pipe_runs={} cancelled={}",
                iter.record.generation_speed(),
                spec.record.generation_speed(),
                pipe.record.generation_speed(),
                pipe.record.generation_speed() / spec.record.generation_speed(),
                pipe.record.runs_launched,
                pipe.record.runs_cancelled
            );
        }
        let pair = ModelPair::goliath_xwin7b();
        let mode = |n: usize| ExecutionMode::Sim {
            pair: pair.clone(),
            cluster: ClusterSpec::cluster_c(n),
            oracle_seed: 42,
        };
        for n in [8usize, 16] {
            let spec = run_speculative(&mode(n), n, &config);
            let pipe = run_pipeinfer(&mode(n), n, &config, &PipeInferConfig::default());
            eprintln!(
                "goliath n={n}: spec={:.2} pipe={:.2} (ratio {:.2})",
                spec.record.generation_speed(),
                pipe.record.generation_speed(),
                pipe.record.generation_speed() / spec.record.generation_speed()
            );
        }
        let iter = run_iterative(&mode(8), 8, &config);
        let spec = run_speculative(&mode(8), 8, &config);
        let pipe = run_pipeinfer(&mode(8), 8, &config, &PipeInferConfig::default());
        for (name, o) in [("iter", &iter), ("spec", &spec), ("pipe", &pipe)] {
            eprintln!(
                "{name}: speed={:.3} ttft={:.3} itl={:.3} tokens={} drafted={} accepted={} runs={} cancelled={} total_time={:.2} util={:.2}",
                o.record.generation_speed(),
                o.record.ttft(),
                o.record.mean_itl(),
                o.record.tokens.len(),
                o.record.drafted,
                o.record.accepted_drafts,
                o.record.runs_launched,
                o.record.runs_cancelled,
                o.stats.total_time,
                o.stats.mean_utilization(),
            );
        }
    }
}
