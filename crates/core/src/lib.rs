//! # pipeinfer-core
//!
//! The paper's primary contribution: **PipeInfer**, asynchronous pipelined
//! speculation for pipeline-parallel LLM inference.
//!
//! PipeInfer keeps the target pipeline and a dedicated draft rank busy at the
//! same time, dispatching small speculative *micro-batches* continuously and
//! cancelling work the moment it is known to be wasted.  The four components
//! of §IV of the paper map to this crate as follows:
//!
//! | Paper component | Module |
//! |---|---|
//! | Asynchronous Speculation (§IV-A) — the dedicated draft rank plus the head's run-tracking FIFO and pipeline transactions | [`draft_node`], [`run_tracker`], [`head`] |
//! | Continuous Speculation (§IV-B) — micro-batching, opportunistic drafting whenever no logits are waiting, confidence-cutoff recovery/decay | [`continuous`], [`head`] |
//! | Pipelined KV Cache Multibuffering (§IV-C) — per-run sequence partitions allocated from a FIFO pool, buffer swap to the canonical sequence, pipelined cache-copy commands | [`multibuffer`], [`head`] |
//! | Early Inference Cancellation (§IV-D) — invalidation detection against accepted tokens, back-propagated cancel signals, empty payloads for skipped runs | [`head`] plus `pi_spec::worker` |
//!
//! The pipeline workers, message protocol, compute engines and drafters are
//! shared with the baselines and live in `pi-spec`; this crate adds the
//! PipeInfer head rank, the draft rank and the cluster assembly entry point
//! [`run_pipeinfer`].

pub mod continuous;
pub mod draft_node;
pub mod head;
pub mod multibuffer;
pub mod run_tracker;
pub mod runner;
pub mod strategy;

pub use continuous::SpeculationController;
pub use draft_node::DraftNode;
pub use head::{DraftSource, PipeInferHead};
pub use multibuffer::SeqPartitionPool;
pub use run_tracker::{RunInfo, RunTracker};
pub use runner::run_pipeinfer;
pub use strategy::{PipeInferStrategy, DRAFT_RANK};

/// Where PipeInfer's speculative (draft) model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DraftPlacement {
    /// The head rank hosts the draft model and drafts synchronously between
    /// probes — the layout every earlier PR used.
    #[default]
    HeadHosted,
    /// The paper's Fig. 3 layout: rank 1 is a dedicated draft rank off the
    /// target-pipeline route (`PipelineRoute::pipeinfer`), and the head
    /// drives it with `PipeMsg::DraftRequest`/`DraftResponse` transactions
    /// so drafting overlaps with verification instead of stalling the head.
    DedicatedRank,
}

/// PipeInfer-specific tuning knobs, including the ablation switches used by
/// the paper's Fig. 8.
#[derive(Debug, Clone)]
pub struct PipeInferConfig {
    /// Tokens per speculative micro-batch (the paper uses 1–4).  With
    /// `micro_width > 1` this is the per-iteration tree-node budget the
    /// controller splits between width and depth.
    pub micro_batch: usize,
    /// Maximum number of speculated-but-unverified tokens in flight.  Bounds
    /// how far continuous speculation runs ahead of verification.
    pub max_speculation_ahead: usize,
    /// Confidence-cutoff recovery factor: added to the cutoff after every
    /// successful continuous-speculation iteration (paper §IV-B2).
    pub recovery_factor: f32,
    /// Confidence-cutoff decay factor: subtracted when speculation fails and
    /// nothing is waiting to be sampled (paper §IV-B2).
    pub decay_factor: f32,
    /// Number of KV-cache sequence partitions available for speculative runs
    /// (sequence 0 is always the canonical sequence).
    pub n_seq_partitions: usize,
    /// Enable Early Inference Cancellation.  Disabling it reproduces the
    /// "no cancellation" ablation of Fig. 8: invalidated runs are still
    /// ignored at the head but every stage keeps evaluating them.
    pub enable_cancellation: bool,
    /// Enable Continuous Speculation.  Disabling it reproduces the "no cont.
    /// spec." ablation of Fig. 8: only one speculative run is kept in flight,
    /// with a larger batch as a counter-balance.
    pub enable_continuous_speculation: bool,
    /// Speculative batch size used when continuous speculation is disabled
    /// (the ablation's "increased speculative batch size").
    pub ablation_batch: usize,
    /// Where the draft model runs (head-hosted or on the dedicated rank of
    /// the paper's Fig. 3).
    pub draft_placement: DraftPlacement,
    /// Maximum root-level branches per continuous micro-batch.  `1` keeps
    /// micro-batches as plain chains (the pre-tree behavior, byte-identical
    /// token streams); larger values let the controller hedge each
    /// iteration with the draft model's runner-up candidates.
    pub micro_width: usize,
    /// Sliding-window length (in resolved speculative runs) of the
    /// acceptance estimate driving width/depth adaptation when
    /// `micro_width > 1`.
    pub shape_window: usize,
    /// Enable branch-granular invalidation: on a divergence, an in-flight
    /// tree run whose sibling branch carries the accepted token is kept
    /// alive instead of cancelled with the rest.  Irrelevant for
    /// `micro_width == 1` (chains have no sibling branches); disabling it
    /// reproduces whole-run invalidation for trees.
    pub branch_invalidation: bool,
    /// Deadline for a `DraftRequest` transaction to the dedicated draft
    /// rank, in seconds (virtual under the simulator, wall-clock under the
    /// threaded driver).  Generous relative to any fault-free round trip so
    /// it only fires when the draft rank is dead, partitioned or severely
    /// delayed; each expiry counts as one consecutive draft failure.
    pub draft_deadline_s: f64,
    /// Consecutive draft failures (request timeouts or empty-draft refusals
    /// of an unchanged hypothesis) the head retries before failing over:
    /// to its local fallback drafter when one is attached, otherwise into
    /// degraded non-speculative pipelined decoding.
    pub draft_max_retries: u32,
    /// Base of the bounded exponential backoff between draft retries.  The
    /// actual wait is `draft_backoff_s × 2^min(failures, 6) × U[0.5, 1.5)`
    /// with a seeded jitter source, so replays are deterministic.
    pub draft_backoff_s: f64,
}

impl Default for PipeInferConfig {
    fn default() -> Self {
        Self {
            micro_batch: 2,
            max_speculation_ahead: 16,
            recovery_factor: 0.05,
            decay_factor: 0.05,
            n_seq_partitions: 32,
            enable_cancellation: true,
            enable_continuous_speculation: true,
            ablation_batch: 8,
            draft_placement: DraftPlacement::HeadHosted,
            micro_width: 1,
            shape_window: 4,
            branch_invalidation: true,
            draft_deadline_s: 2.0,
            draft_max_retries: 3,
            draft_backoff_s: 0.05,
        }
    }
}

impl PipeInferConfig {
    /// The configuration used by the figure benchmarks (micro-batches of 2,
    /// all features enabled).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The "no cancellation" ablation of Fig. 8.
    pub fn no_cancellation() -> Self {
        Self {
            enable_cancellation: false,
            ..Self::default()
        }
    }

    /// The "no continuous speculation" ablation of Fig. 8.
    pub fn no_continuous_speculation() -> Self {
        Self {
            enable_continuous_speculation: false,
            ..Self::default()
        }
    }

    /// The paper's Fig. 3 deployment: drafting on the dedicated rank 1, off
    /// the target-pipeline route.
    pub fn dedicated_draft_rank() -> Self {
        Self {
            draft_placement: DraftPlacement::DedicatedRank,
            ..Self::default()
        }
    }

    /// Tree-shaped continuous micro-batches: each iteration speculates a
    /// width×depth tree chosen by the controller's acceptance shape model
    /// over a 4-node budget, with branch-granular invalidation keeping
    /// sibling-rescued runs alive.
    pub fn tree_micro() -> Self {
        Self {
            micro_batch: 4,
            micro_width: 3,
            ..Self::default()
        }
    }

    /// Returns this configuration with the given draft placement.
    pub fn with_placement(mut self, placement: DraftPlacement) -> Self {
        self.draft_placement = placement;
        self
    }

    /// Whole-run invalidation (the degenerate pre-tree behavior): any
    /// divergence cancels every in-flight run past it, even runs whose
    /// sibling branches carry the accepted token.
    pub fn whole_run_invalidation(mut self) -> Self {
        self.branch_invalidation = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_all_features() {
        let c = PipeInferConfig::default();
        assert!(c.enable_cancellation);
        assert!(c.enable_continuous_speculation);
        assert!(c.micro_batch >= 1 && c.micro_batch <= 4);
        assert!(c.n_seq_partitions > 1);
    }

    #[test]
    fn ablation_presets_flip_one_feature_each() {
        let nc = PipeInferConfig::no_cancellation();
        assert!(!nc.enable_cancellation);
        assert!(nc.enable_continuous_speculation);
        let ns = PipeInferConfig::no_continuous_speculation();
        assert!(ns.enable_cancellation);
        assert!(!ns.enable_continuous_speculation);
        assert!(ns.ablation_batch > ns.micro_batch);
    }

    #[test]
    fn default_is_the_degenerate_configuration() {
        // The byte-identity pin: head-hosted drafting, width-1 chains.
        let c = PipeInferConfig::default();
        assert_eq!(c.draft_placement, DraftPlacement::HeadHosted);
        assert_eq!(c.micro_width, 1);
        assert!(c.branch_invalidation, "a no-op for chains");
    }

    #[test]
    fn recovery_knobs_have_safe_defaults() {
        // The deadline must dwarf fault-free draft round trips (sub-second
        // virtual time) so recovery only ever engages under injected faults
        // or genuine failures, and the retry budget must be finite.
        let c = PipeInferConfig::default();
        assert!(c.draft_deadline_s >= 1.0);
        assert!(c.draft_max_retries >= 1);
        assert!(c.draft_backoff_s > 0.0);
        // Worst-case total backoff stays far below the deadline-dominated
        // failover time: base × 2^6 × 1.5 per retry.
        let worst = c.draft_backoff_s * 64.0 * 1.5;
        assert!(worst < c.draft_deadline_s * 4.0);
    }

    #[test]
    fn layout_and_tree_presets() {
        let d = PipeInferConfig::dedicated_draft_rank();
        assert_eq!(d.draft_placement, DraftPlacement::DedicatedRank);
        assert_eq!(d.micro_width, 1);
        let t = PipeInferConfig::tree_micro();
        assert!(t.micro_width > 1);
        assert!(t.micro_batch >= t.micro_width);
        assert!(t.branch_invalidation);
        let tw = PipeInferConfig::tree_micro().whole_run_invalidation();
        assert!(!tw.branch_invalidation);
        let td = PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank);
        assert_eq!(td.draft_placement, DraftPlacement::DedicatedRank);
        assert!(td.micro_width > 1);
    }
}
