//! # pipeinfer-core
//!
//! The paper's primary contribution: **PipeInfer**, asynchronous pipelined
//! speculation for pipeline-parallel LLM inference.
//!
//! PipeInfer keeps the target pipeline and a dedicated draft rank busy at the
//! same time, dispatching small speculative *micro-batches* continuously and
//! cancelling work the moment it is known to be wasted.  The four components
//! of §IV of the paper map to this crate as follows:
//!
//! | Paper component | Module |
//! |---|---|
//! | Asynchronous Speculation (§IV-A) — the dedicated draft rank plus the head's run-tracking FIFO and pipeline transactions | [`draft_node`], [`run_tracker`], [`head`] |
//! | Continuous Speculation (§IV-B) — micro-batching, opportunistic drafting whenever no logits are waiting, confidence-cutoff recovery/decay | [`continuous`], [`head`] |
//! | Pipelined KV Cache Multibuffering (§IV-C) — per-run sequence partitions allocated from a FIFO pool, buffer swap to the canonical sequence, pipelined cache-copy commands | [`multibuffer`], [`head`] |
//! | Early Inference Cancellation (§IV-D) — invalidation detection against accepted tokens, back-propagated cancel signals, empty payloads for skipped runs | [`head`] plus `pi_spec::worker` |
//!
//! The pipeline workers, message protocol, compute engines and drafters are
//! shared with the baselines and live in `pi-spec`; this crate adds the
//! PipeInfer head rank, the draft rank and the cluster assembly entry point
//! [`run_pipeinfer`].

pub mod continuous;
pub mod draft_node;
pub mod head;
pub mod multibuffer;
pub mod run_tracker;
pub mod runner;
pub mod strategy;

pub use continuous::SpeculationController;
pub use draft_node::DraftNode;
pub use head::PipeInferHead;
pub use multibuffer::SeqPartitionPool;
pub use run_tracker::{RunInfo, RunTracker};
pub use runner::run_pipeinfer;
pub use strategy::PipeInferStrategy;

/// PipeInfer-specific tuning knobs, including the ablation switches used by
/// the paper's Fig. 8.
#[derive(Debug, Clone)]
pub struct PipeInferConfig {
    /// Tokens per speculative micro-batch (the paper uses 1–4).
    pub micro_batch: usize,
    /// Maximum number of speculated-but-unverified tokens in flight.  Bounds
    /// how far continuous speculation runs ahead of verification.
    pub max_speculation_ahead: usize,
    /// Confidence-cutoff recovery factor: added to the cutoff after every
    /// successful continuous-speculation iteration (paper §IV-B2).
    pub recovery_factor: f32,
    /// Confidence-cutoff decay factor: subtracted when speculation fails and
    /// nothing is waiting to be sampled (paper §IV-B2).
    pub decay_factor: f32,
    /// Number of KV-cache sequence partitions available for speculative runs
    /// (sequence 0 is always the canonical sequence).
    pub n_seq_partitions: usize,
    /// Enable Early Inference Cancellation.  Disabling it reproduces the
    /// "no cancellation" ablation of Fig. 8: invalidated runs are still
    /// ignored at the head but every stage keeps evaluating them.
    pub enable_cancellation: bool,
    /// Enable Continuous Speculation.  Disabling it reproduces the "no cont.
    /// spec." ablation of Fig. 8: only one speculative run is kept in flight,
    /// with a larger batch as a counter-balance.
    pub enable_continuous_speculation: bool,
    /// Speculative batch size used when continuous speculation is disabled
    /// (the ablation's "increased speculative batch size").
    pub ablation_batch: usize,
}

impl Default for PipeInferConfig {
    fn default() -> Self {
        Self {
            micro_batch: 2,
            max_speculation_ahead: 16,
            recovery_factor: 0.05,
            decay_factor: 0.05,
            n_seq_partitions: 32,
            enable_cancellation: true,
            enable_continuous_speculation: true,
            ablation_batch: 8,
        }
    }
}

impl PipeInferConfig {
    /// The configuration used by the figure benchmarks (micro-batches of 2,
    /// all features enabled).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The "no cancellation" ablation of Fig. 8.
    pub fn no_cancellation() -> Self {
        Self {
            enable_cancellation: false,
            ..Self::default()
        }
    }

    /// The "no continuous speculation" ablation of Fig. 8.
    pub fn no_continuous_speculation() -> Self {
        Self {
            enable_continuous_speculation: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_all_features() {
        let c = PipeInferConfig::default();
        assert!(c.enable_cancellation);
        assert!(c.enable_continuous_speculation);
        assert!(c.micro_batch >= 1 && c.micro_batch <= 4);
        assert!(c.n_seq_partitions > 1);
    }

    #[test]
    fn ablation_presets_flip_one_feature_each() {
        let nc = PipeInferConfig::no_cancellation();
        assert!(!nc.enable_cancellation);
        assert!(nc.enable_continuous_speculation);
        let ns = PipeInferConfig::no_continuous_speculation();
        assert!(ns.enable_cancellation);
        assert!(!ns.enable_continuous_speculation);
        assert!(ns.ablation_batch > ns.micro_batch);
    }
}
