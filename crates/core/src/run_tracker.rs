//! Run tracking for asynchronous speculation (§IV-A1, §IV-D1).
//!
//! Every run dispatched into the target pipeline is tracked in a FIFO data
//! structure recording the speculation it carries — as a
//! [`pi_model::TokenTree`], the workspace's canonical speculation unit — its
//! token positions and its sequence-partition block.  Continuous
//! micro-batches may now be genuine trees, so invalidation is
//! *branch-granular*: when the target diverges from the hypothesis at a
//! position, [`RunTracker::invalidate_from`] cancels the in-flight runs that
//! contradict the newly accepted token, but a run whose tree holds a sibling
//! branch carrying that very token is **kept alive** — its rescuing branch
//! lies on the accepted path, so cancelling it would throw away work the
//! pipeline has already paid for.  Chains (width-1 trees) have no sibling
//! branches, so for them this reduces exactly to the old whole-run
//! invalidation.  Because both drivers preserve per-link ordering, run
//! results return to the head in dispatch order, so the head only ever
//! inspects the front of the FIFO.

use pi_model::{Pos, SeqId, Token, TokenTree};
use pi_spec::{RunId, RunKind};
use std::collections::VecDeque;

/// Bookkeeping for one in-flight run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// The run identifier carried by its pipeline messages.
    pub run_id: RunId,
    /// Speculative or non-speculative.
    pub kind: RunKind,
    /// The speculation the run evaluates, as the canonical tree unit.
    /// Non-speculative runs (prompt processing, pending tokens) carry a
    /// degenerate single-branch chain.
    pub tree: TokenTree,
    /// Position of the first token (the tree's depth-0 level).
    pub base_pos: Pos,
    /// First KV-cache sequence partition of the run's block (the canonical
    /// sequence for non-speculative runs).
    pub first_seq: SeqId,
    /// Number of pooled partitions in the block — one per tree leaf; zero
    /// for non-speculative runs, which write into the canonical sequence.
    pub n_seqs: usize,
    /// The leaf partition whose root-to-leaf path the head's hypothesis
    /// follows (initially the primary spine's leaf; re-pointed to the
    /// rescuing branch's leaf when an invalidation keeps the run alive).
    /// Later runs copy their shared prefix from it (§IV-C3).
    pub spine_seq: SeqId,
    /// Set when the run has been invalidated or made superfluous; its result
    /// is ignored and, for speculative runs, stages skip its evaluation.
    pub cancelled: bool,
}

impl RunInfo {
    /// Convenience constructor for a linear (chain-shaped) run writing into
    /// a single sequence partition.
    pub fn chain(
        run_id: RunId,
        kind: RunKind,
        tokens: &[Token],
        base_pos: Pos,
        seq: SeqId,
    ) -> Self {
        Self {
            run_id,
            kind,
            tree: TokenTree::chain_of(tokens),
            base_pos,
            first_seq: seq,
            n_seqs: usize::from(kind == RunKind::Speculative),
            spine_seq: seq,
            cancelled: false,
        }
    }

    /// Constructor for a speculative tree run occupying the partition block
    /// `first_seq .. first_seq + tree.n_sequences()`.
    pub fn tree(run_id: RunId, tree: TokenTree, base_pos: Pos, first_seq: SeqId) -> Self {
        let n_seqs = tree.n_sequences();
        let spine_seq = tree
            .spine()
            .last()
            .map(|&leaf| tree.assign_sequences(first_seq)[leaf][0])
            .unwrap_or(first_seq);
        Self {
            run_id,
            kind: RunKind::Speculative,
            tree,
            base_pos,
            first_seq,
            n_seqs,
            spine_seq,
            cancelled: false,
        }
    }

    /// The run's tokens in batch (parent-before-child) order.
    pub fn tokens(&self) -> Vec<Token> {
        self.tree.tokens()
    }

    /// Position one past the run's deepest token.
    pub fn end_pos(&self) -> Pos {
        self.base_pos + self.tree.span() as Pos
    }
}

/// Result of one [`RunTracker::invalidate_from`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Invalidation {
    /// Runs cancelled by the pass, in FIFO order.
    pub cancelled: Vec<RunId>,
    /// The run kept alive because a sibling branch of its tree carries the
    /// newly accepted token, if any.
    pub rescued: Option<RunId>,
}

/// FIFO of in-flight runs.
#[derive(Debug, Clone, Default)]
pub struct RunTracker {
    runs: VecDeque<RunInfo>,
}

impl RunTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs are in flight.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Registers a newly dispatched run.
    pub fn push(&mut self, info: RunInfo) {
        self.runs.push_back(info);
    }

    /// Pops the front run, asserting it matches the returning `run_id` — a
    /// mismatch means pipeline ordering was violated.
    pub fn pop_expect(&mut self, run_id: RunId) -> RunInfo {
        let info = self
            .runs
            .pop_front()
            .unwrap_or_else(|| panic!("result for run {run_id} but no runs in flight"));
        assert_eq!(
            info.run_id, run_id,
            "pipeline ordering violated: expected run {}, got {}",
            info.run_id, run_id
        );
        info
    }

    /// Iterates over the in-flight runs, front (oldest) first.
    pub fn iter(&self) -> impl Iterator<Item = &RunInfo> {
        self.runs.iter()
    }

    /// Number of speculative runs currently in flight and not cancelled.
    pub fn active_speculative(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.kind == RunKind::Speculative && !r.cancelled)
            .count()
    }

    /// Invalidation sweep after the target diverged from the hypothesis at
    /// `from_pos`: marks every non-cancelled speculative run starting at or
    /// after `from_pos` as cancelled, **except** — when `accepted` carries
    /// the target's true token for `from_pos` — a run based exactly at
    /// `from_pos` whose tree holds a *root-level sibling branch* with that
    /// token.  Such a run lies on the accepted path through its rescuing
    /// branch and is kept alive (branch-granular invalidation); its
    /// `spine_seq` is re-pointed at the rescuing branch's leaf partition so
    /// subsequent speculation shares the surviving prefix.
    ///
    /// Passing `accepted = None` reproduces whole-run invalidation (the
    /// `PipeInferConfig::whole_run_invalidation` ablation).  Chains are
    /// unaffected either way: a width-1 tree's only root *is* the rejected
    /// hypothesis token, so it can never match the accepted one.
    ///
    /// Non-speculative runs are never cancelled here: the paper keeps them
    /// running to completion so the canonical cache entries they produce stay
    /// valid (§IV-D3).
    pub fn invalidate_from(&mut self, from_pos: Pos, accepted: Option<Token>) -> Invalidation {
        let mut out = Invalidation::default();
        for run in self.runs.iter_mut() {
            if run.kind != RunKind::Speculative || run.cancelled || run.base_pos < from_pos {
                continue;
            }
            if run.base_pos == from_pos && out.rescued.is_none() {
                if let Some(tok) = accepted {
                    let rescue = run
                        .tree
                        .roots()
                        .into_iter()
                        .find(|&r| run.tree.nodes()[r].token == tok);
                    if let Some(root) = rescue {
                        // The rescuing branch survives; deeper speculation on
                        // it continues from its leaf partition.
                        let node_seqs = run.tree.assign_sequences(run.first_seq);
                        run.spine_seq = node_seqs[root][0];
                        out.rescued = Some(run.run_id);
                        continue;
                    }
                }
            }
            run.cancelled = true;
            out.cancelled.push(run.run_id);
        }
        out
    }

    /// Whether any non-cancelled in-flight run covers position `pos`.
    pub fn covers(&self, pos: Pos) -> bool {
        self.runs
            .iter()
            .any(|r| !r.cancelled && r.base_pos <= pos && pos < r.end_pos())
    }

    /// The hypothesis-bearing leaf partition of the most recently dispatched
    /// non-cancelled speculative run, if any — new speculative runs copy
    /// their shared prefix from it (early cache-entry sharing, §IV-C3).
    pub fn latest_speculative_seq(&self) -> Option<SeqId> {
        self.runs
            .iter()
            .rev()
            .find(|r| r.kind == RunKind::Speculative && !r.cancelled)
            .map(|r| r.spine_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(id: RunId, kind: RunKind, base: Pos, n: usize, seq: SeqId) -> RunInfo {
        let tokens: Vec<u32> = (0..n as u32).collect();
        RunInfo::chain(id, kind, &tokens, base, seq)
    }

    /// A two-branch tree: primary spine `10 → 11`, runner-up root `20`.
    fn hedged_tree() -> TokenTree {
        let mut t = TokenTree::new();
        let a = t.add(None, 10, 0.9);
        t.add(Some(a), 11, 0.8);
        t.add(None, 20, 0.4);
        t
    }

    #[test]
    fn fifo_order_is_enforced() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 10, 1, 0));
        t.push(run(2, RunKind::Speculative, 11, 2, 1));
        assert_eq!(t.len(), 2);
        let first = t.pop_expect(1);
        assert_eq!(first.run_id, 1);
        assert_eq!(first.n_seqs, 0, "non-speculative runs hold no partitions");
        let second = t.pop_expect(2);
        assert_eq!(second.first_seq, 1);
        assert_eq!(second.n_seqs, 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_order_result_panics() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 10, 1, 0));
        t.push(run(2, RunKind::Speculative, 11, 2, 1));
        let _ = t.pop_expect(2);
    }

    #[test]
    fn invalidation_only_hits_speculative_runs_past_the_cutoff() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 9, 1, 0));
        t.push(run(2, RunKind::Speculative, 10, 2, 1));
        t.push(run(3, RunKind::Speculative, 12, 2, 2));
        let out = t.invalidate_from(12, None);
        assert_eq!(out.cancelled, vec![3]);
        assert_eq!(out.rescued, None);
        assert_eq!(t.active_speculative(), 1);
        // Cancelling again from an earlier point also hits run 2 but not the
        // already-cancelled run 3 or the non-speculative run 1.
        let again = t.invalidate_from(0, None);
        assert_eq!(again.cancelled, vec![2]);
    }

    #[test]
    fn chains_are_never_rescued() {
        // A chain's only root is the rejected hypothesis token, so passing
        // the accepted token changes nothing — the old whole-run behavior.
        let mut t = RunTracker::new();
        t.push(run(2, RunKind::Speculative, 10, 2, 1));
        t.push(run(3, RunKind::Speculative, 12, 2, 2));
        let out = t.invalidate_from(10, Some(99));
        assert_eq!(out.cancelled, vec![2, 3]);
        assert_eq!(out.rescued, None);
    }

    #[test]
    fn sibling_branch_on_the_accepted_path_is_kept_alive() {
        let mut t = RunTracker::new();
        t.push(RunInfo::tree(5, hedged_tree(), 10, 1));
        t.push(run(6, RunKind::Speculative, 12, 2, 3));
        // The target chose 20 at position 10: the spine (10 → 11) and every
        // later run die, but run 5's runner-up branch carries 20.
        let out = t.invalidate_from(10, Some(20));
        assert_eq!(out.cancelled, vec![6]);
        assert_eq!(out.rescued, Some(5));
        assert_eq!(t.active_speculative(), 1);
        // The surviving run's hypothesis leaf is the rescuing branch's
        // partition (leaf order: node 1 → seq 1, node 2 → seq 2).
        assert_eq!(t.latest_speculative_seq(), Some(2));
    }

    #[test]
    fn rescue_requires_the_accepted_token_and_exact_base() {
        // Wrong token: the hedged run dies with the rest.
        let mut t = RunTracker::new();
        t.push(RunInfo::tree(5, hedged_tree(), 10, 1));
        let out = t.invalidate_from(10, Some(77));
        assert_eq!(out.cancelled, vec![5]);
        assert_eq!(out.rescued, None);

        // Divergence *before* the run's base: the run descends from the
        // rejected hypothesis regardless of its branches.
        let mut t = RunTracker::new();
        t.push(RunInfo::tree(5, hedged_tree(), 10, 1));
        let out = t.invalidate_from(9, Some(20));
        assert_eq!(out.cancelled, vec![5]);
        assert_eq!(out.rescued, None);

        // Whole-run mode ignores branches entirely.
        let mut t = RunTracker::new();
        t.push(RunInfo::tree(5, hedged_tree(), 10, 1));
        let out = t.invalidate_from(10, None);
        assert_eq!(out.cancelled, vec![5]);
    }

    #[test]
    fn coverage_and_end_pos() {
        let mut t = RunTracker::new();
        t.push(run(5, RunKind::Speculative, 20, 3, 1));
        assert!(t.covers(20));
        assert!(t.covers(22));
        assert!(!t.covers(23));
        let out = t.invalidate_from(0, None);
        assert_eq!(out.cancelled, vec![5]);
        assert!(!t.covers(20), "cancelled runs provide no coverage");
    }

    #[test]
    fn branching_tree_coverage_uses_span_not_node_count() {
        let mut t = RunTracker::new();
        // A 4-node tree spanning only 2 positions (two branches of depth 2).
        let mut tree = TokenTree::new();
        let a = tree.add(None, 1, 0.9);
        let b = tree.add(None, 2, 0.5);
        tree.add(Some(a), 3, 0.8);
        tree.add(Some(b), 4, 0.4);
        let info = RunInfo::tree(1, tree, 10, 1);
        assert_eq!(info.n_seqs, 2);
        // The spine is a → its child (node 2, the first leaf → seq 1).
        assert_eq!(info.spine_seq, 1);
        t.push(info);
        assert!(t.covers(10) && t.covers(11));
        assert!(!t.covers(12), "span is 2, not the 4 nodes");
        assert_eq!(t.iter().next().unwrap().tokens(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn latest_speculative_seq_tracks_dispatch_order() {
        let mut t = RunTracker::new();
        assert_eq!(t.latest_speculative_seq(), None);
        t.push(run(1, RunKind::NonSpeculative, 5, 1, 0));
        assert_eq!(t.latest_speculative_seq(), None);
        t.push(run(2, RunKind::Speculative, 6, 2, 3));
        t.push(run(3, RunKind::Speculative, 8, 2, 7));
        assert_eq!(t.latest_speculative_seq(), Some(7));
        t.invalidate_from(8, None);
        assert_eq!(t.latest_speculative_seq(), Some(3));
    }
}
