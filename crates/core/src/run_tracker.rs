//! Run tracking for asynchronous speculation (§IV-A1, §IV-D1).
//!
//! Every run dispatched into the target pipeline is tracked in a FIFO data
//! structure recording the speculation it carries — as a
//! [`pi_model::TokenTree`], the workspace's canonical speculation unit — its
//! token positions and its sequence partition.  PipeInfer's continuous
//! micro-batches are degenerate single-branch trees, so in this layout
//! "cancelling a sibling branch" is exactly what [`RunTracker::invalidate_from`]
//! does: every in-flight tree whose base position falls at or past the
//! divergence point is a sibling of the newly accepted path and is cancelled
//! through the existing out-of-band cancellation signal.  Because both
//! drivers preserve per-link ordering, run results return to the head in
//! dispatch order, so the head only ever inspects the front of the FIFO.

use pi_model::{Pos, SeqId, Token, TokenTree};
use pi_spec::{RunId, RunKind};
use std::collections::VecDeque;

/// Bookkeeping for one in-flight run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// The run identifier carried by its pipeline messages.
    pub run_id: RunId,
    /// Speculative or non-speculative.
    pub kind: RunKind,
    /// The speculation the run evaluates, as the canonical tree unit.
    /// Non-speculative runs (prompt processing, pending tokens) carry a
    /// degenerate single-branch chain.
    pub tree: TokenTree,
    /// Position of the first token (the tree's depth-0 level).
    pub base_pos: Pos,
    /// KV-cache sequence partition the run writes into (the canonical
    /// sequence for non-speculative runs).
    pub seq: SeqId,
    /// Set when the run has been invalidated or made superfluous; its result
    /// is ignored and, for speculative runs, stages skip its evaluation.
    pub cancelled: bool,
}

impl RunInfo {
    /// Convenience constructor for a linear (chain-shaped) run.
    pub fn chain(
        run_id: RunId,
        kind: RunKind,
        tokens: &[Token],
        base_pos: Pos,
        seq: SeqId,
    ) -> Self {
        Self {
            run_id,
            kind,
            tree: TokenTree::chain_of(tokens),
            base_pos,
            seq,
            cancelled: false,
        }
    }

    /// The run's tokens in batch (parent-before-child) order.
    pub fn tokens(&self) -> Vec<Token> {
        self.tree.tokens()
    }

    /// Position one past the run's deepest token.
    pub fn end_pos(&self) -> Pos {
        self.base_pos + self.tree.span() as Pos
    }
}

/// FIFO of in-flight runs.
#[derive(Debug, Clone, Default)]
pub struct RunTracker {
    runs: VecDeque<RunInfo>,
}

impl RunTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs are in flight.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Registers a newly dispatched run.
    pub fn push(&mut self, info: RunInfo) {
        self.runs.push_back(info);
    }

    /// Pops the front run, asserting it matches the returning `run_id` — a
    /// mismatch means pipeline ordering was violated.
    pub fn pop_expect(&mut self, run_id: RunId) -> RunInfo {
        let info = self
            .runs
            .pop_front()
            .unwrap_or_else(|| panic!("result for run {run_id} but no runs in flight"));
        assert_eq!(
            info.run_id, run_id,
            "pipeline ordering violated: expected run {}, got {}",
            info.run_id, run_id
        );
        info
    }

    /// Iterates over the in-flight runs, front (oldest) first.
    pub fn iter(&self) -> impl Iterator<Item = &RunInfo> {
        self.runs.iter()
    }

    /// Number of speculative runs currently in flight and not cancelled.
    pub fn active_speculative(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.kind == RunKind::Speculative && !r.cancelled)
            .count()
    }

    /// Marks every non-cancelled speculative run whose tokens start at or
    /// after `from_pos` as cancelled (invalidation), returning their run ids
    /// so cancellation signals can be back-propagated.
    ///
    /// Non-speculative runs are never cancelled here: the paper keeps them
    /// running to completion so the canonical cache entries they produce stay
    /// valid (§IV-D3).
    pub fn invalidate_from(&mut self, from_pos: Pos) -> Vec<RunId> {
        let mut cancelled = Vec::new();
        for run in self.runs.iter_mut() {
            if run.kind == RunKind::Speculative && !run.cancelled && run.base_pos >= from_pos {
                run.cancelled = true;
                cancelled.push(run.run_id);
            }
        }
        cancelled
    }

    /// Whether any non-cancelled in-flight run covers position `pos`.
    pub fn covers(&self, pos: Pos) -> bool {
        self.runs
            .iter()
            .any(|r| !r.cancelled && r.base_pos <= pos && pos < r.end_pos())
    }

    /// The sequence partition of the most recently dispatched non-cancelled
    /// speculative run, if any — new speculative runs copy their shared
    /// prefix from it (early cache-entry sharing, §IV-C3).
    pub fn latest_speculative_seq(&self) -> Option<SeqId> {
        self.runs
            .iter()
            .rev()
            .find(|r| r.kind == RunKind::Speculative && !r.cancelled)
            .map(|r| r.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(id: RunId, kind: RunKind, base: Pos, n: usize, seq: SeqId) -> RunInfo {
        let tokens: Vec<u32> = (0..n as u32).collect();
        RunInfo::chain(id, kind, &tokens, base, seq)
    }

    #[test]
    fn fifo_order_is_enforced() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 10, 1, 0));
        t.push(run(2, RunKind::Speculative, 11, 2, 1));
        assert_eq!(t.len(), 2);
        let first = t.pop_expect(1);
        assert_eq!(first.run_id, 1);
        assert_eq!(t.pop_expect(2).seq, 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_order_result_panics() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 10, 1, 0));
        t.push(run(2, RunKind::Speculative, 11, 2, 1));
        let _ = t.pop_expect(2);
    }

    #[test]
    fn invalidation_only_hits_speculative_runs_past_the_cutoff() {
        let mut t = RunTracker::new();
        t.push(run(1, RunKind::NonSpeculative, 9, 1, 0));
        t.push(run(2, RunKind::Speculative, 10, 2, 1));
        t.push(run(3, RunKind::Speculative, 12, 2, 2));
        let cancelled = t.invalidate_from(12);
        assert_eq!(cancelled, vec![3]);
        assert_eq!(t.active_speculative(), 1);
        // Cancelling again from an earlier point also hits run 2 but not the
        // already-cancelled run 3 or the non-speculative run 1.
        let again = t.invalidate_from(0);
        assert_eq!(again, vec![2]);
    }

    #[test]
    fn coverage_and_end_pos() {
        let mut t = RunTracker::new();
        t.push(run(5, RunKind::Speculative, 20, 3, 1));
        assert!(t.covers(20));
        assert!(t.covers(22));
        assert!(!t.covers(23));
        let ids = t.invalidate_from(0);
        assert_eq!(ids, vec![5]);
        assert!(!t.covers(20), "cancelled runs provide no coverage");
    }

    #[test]
    fn branching_tree_coverage_uses_span_not_node_count() {
        let mut t = RunTracker::new();
        // A 4-node tree spanning only 2 positions (two branches of depth 2).
        let mut tree = TokenTree::new();
        let a = tree.add(None, 1, 0.9);
        let b = tree.add(None, 2, 0.5);
        tree.add(Some(a), 3, 0.8);
        tree.add(Some(b), 4, 0.4);
        t.push(RunInfo {
            run_id: 1,
            kind: RunKind::Speculative,
            tree,
            base_pos: 10,
            seq: 1,
            cancelled: false,
        });
        assert!(t.covers(10) && t.covers(11));
        assert!(!t.covers(12), "span is 2, not the 4 nodes");
        assert_eq!(t.iter().next().unwrap().tokens(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn latest_speculative_seq_tracks_dispatch_order() {
        let mut t = RunTracker::new();
        assert_eq!(t.latest_speculative_seq(), None);
        t.push(run(1, RunKind::NonSpeculative, 5, 1, 0));
        assert_eq!(t.latest_speculative_seq(), None);
        t.push(run(2, RunKind::Speculative, 6, 2, 3));
        t.push(run(3, RunKind::Speculative, 8, 2, 7));
        assert_eq!(t.latest_speculative_seq(), Some(7));
        t.invalidate_from(8);
        assert_eq!(t.latest_speculative_seq(), Some(3));
    }
}
