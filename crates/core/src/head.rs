//! The PipeInfer head rank.
//!
//! Following the paper's deployment (Fig. 3), the head rank hosts the
//! sampling/verification logic, while the target model is split across the
//! remaining ranks — the target pipeline is therefore one node shorter than
//! under iterative inference, which is why the paper sometimes measures
//! *lower* TTFT than the iterative baseline.  The speculative model runs
//! either on the head itself ([`DraftSource::Local`], the layout earlier PRs
//! used) or on the dedicated draft rank of Fig. 3
//! ([`DraftSource::Remote`]), which the head drives with
//! `DraftRequest`/`DraftResponse` transactions so drafting overlaps with
//! verification instead of stalling the head.  The head owns the whole
//! orchestration described in §IV:
//!
//! * it embeds each batch and hands it to the first target stage,
//! * it obtains speculative micro-batches — genuine width×depth *token
//!   trees* sized by the [`SpeculationController`]'s acceptance shape model,
//!   chains being the width-1 degenerate case — whenever probing finds no
//!   returned logits waiting (Asynchronous + Continuous Speculation),
//! * it dispatches speculative verification runs without waiting for earlier
//!   runs to complete, tracking them in a FIFO ([`RunTracker`]),
//! * it assigns each speculative run a contiguous block of private KV-cache
//!   sequence partitions (one per tree leaf) and pipelines the
//!   `BranchCommit`/`BranchRollback` commands that implement the
//!   multibuffering "buffer swap" (§IV-C) at branch granularity,
//! * it verifies returning runs with the SpecInfer greedy rule walking the
//!   deepest accepted branch, detects invalidated runs and back-propagates
//!   cancellation signals (§IV-D) — *branch-granularly*: a run whose sibling
//!   branch carries the newly accepted token is kept alive instead of
//!   cancelled with the rest.
//!
//! ## Differences from the paper's implementation
//!
//! Speculative runs here never overlap in token positions (each micro-batch
//! covers a fresh slice of the hypothesis), so the paper's "superfluous run"
//! case cannot arise — only invalidation triggers cancellation.  The paper's
//! mid-evaluation cancellation probing is approximated by checking the
//! cancellation set when a decode transaction arrives at a worker; a cancel
//! signal can therefore save an entire stage evaluation but not a fraction
//! of one.  Both simplifications are conservative (they can only understate
//! PipeInfer's benefit).

use crate::continuous::SpeculationController;
use crate::multibuffer::{SeqPartitionPool, CANONICAL_SEQ};
use crate::run_tracker::{RunInfo, RunTracker};
use crate::PipeInferConfig;
use pi_cluster::{trace_if, EventKind, NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::{Batch, Pos, SeqId, Token, TokenTree, TreeNodeId};
use pi_spec::deploy::RecordHandle;
use pi_spec::message::tags;
use pi_spec::worker::record_kv_events;
use pi_spec::{
    ActivationPayload, CacheOp, Drafter, GenConfig, GenerationRecord, HeadEngine, PipeMsg,
    PipelineRoute, RunId, RunKind, TreeTopology,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;

/// Seed of the head's backoff-jitter source.  A fixed constant: the jitter
/// decorrelates retry times *within* a run while keeping every replay of the
/// same schedule bit-identical.
const BACKOFF_JITTER_SEED: u64 = 0x0070_695f_6865_6164; // "pi_head"

/// Cap on the backoff exponent (`base × 2^min(failures, 6)`), bounding the
/// longest retry wait regardless of how many failures accumulate.
const BACKOFF_MAX_EXP: u32 = 6;

/// How many times more consecutive refusals than timeouts it takes to fail
/// over: an empty response proves the draft rank alive, so abandoning it is
/// held to a much higher bar (`factor × (draft_max_retries + 1)` refusals)
/// than silence is.
const REFUSAL_FAILOVER_FACTOR: u32 = 4;

/// Where the head obtains its speculative micro-batches.
pub enum DraftSource {
    /// The draft model lives on the head and is invoked synchronously
    /// between probes (`DraftPlacement::HeadHosted`).
    Local(Box<dyn Drafter>),
    /// The draft model lives on a dedicated rank (the paper's Fig. 3,
    /// `DraftPlacement::DedicatedRank`); the head sends
    /// [`PipeMsg::DraftRequest`] transactions to it and dispatches the
    /// returned trees, cancelling stale hypotheses out-of-band.
    Remote(Rank),
}

/// A draft request awaiting its response from the dedicated draft rank.
#[derive(Debug, Clone, Copy)]
struct InflightDraft {
    id: u64,
    /// The confidence cutoff the request was issued with (drives the
    /// refusal backoff when the reply comes back empty).
    cutoff: f32,
    /// Time by which the response must have arrived; expiry counts as one
    /// consecutive draft failure (`PipeInferConfig::draft_deadline_s`).
    deadline: f64,
}

/// The PipeInfer head rank state machine.
pub struct PipeInferHead {
    route: PipelineRoute,
    engine: Box<dyn HeadEngine>,
    draft: DraftSource,
    gen_config: GenConfig,
    config: PipeInferConfig,
    controller: SpeculationController,
    pool: SeqPartitionPool,
    tracker: RunTracker,

    /// Accepted tokens (prompt included).  The last element may still be
    /// unevaluated (the pending token).
    accepted: Vec<Token>,
    /// Accepted tokens followed by the primary spine of every dispatched,
    /// unresolved speculative tree — the head's current best guess of the
    /// generation.
    hypothesis: Vec<Token>,
    /// The target's known-true token for position `accepted.len()`, once the
    /// run covering the last accepted token has returned.
    expected: Option<Token>,
    prompt_done: bool,
    /// Leading prompt tokens already resident in every stage's KV cache (via
    /// a shared page pool); prefill covers only the remaining suffix.
    prompt_cached: usize,

    next_run_id: RunId,
    next_draft_id: u64,
    inflight_draft: Option<InflightDraft>,
    /// Set when the draft rank returned an empty draft: `(cutoff, hyp_len)`
    /// at refusal time.  No new request is sent until the cutoff drops below
    /// the refused one, the hypothesis changes, *or* the seeded retry
    /// backoff elapses — the remote analogue of the local path's "stop
    /// speculating until verification catches up", without which the head
    /// busy-loops request/empty-response round trips.  The time bound keeps
    /// a permanently-refusing drafter from stalling speculation forever: the
    /// refusals accumulate as draft failures and eventually fail over.
    draft_refused: Option<(f32, usize)>,
    /// The dedicated draft rank this head started with, if any — remembered
    /// across a failover so the (possibly only partitioned, not dead) rank
    /// still receives its shutdown signal.
    remote_rank: Option<Rank>,
    /// Local drafter held in reserve while drafting remotely; a failover
    /// promotes it to [`DraftSource::Local`].
    fallback: Option<Box<dyn Drafter>>,
    /// Consecutive remote-draft timeouts since the last successful
    /// response; crossing `draft_max_retries` triggers the failover — no
    /// response at all means the rank is dead, partitioned or
    /// pathologically slow.
    draft_failures: u32,
    /// Consecutive same-hypothesis refusals (empty responses) since the
    /// last useful one.  A refusal proves the rank *alive*, so the failover
    /// bar is [`REFUSAL_FAILOVER_FACTOR`]× higher than the timeout bar: a
    /// transiently under-confident drafter keeps its rank, a permanently
    /// refusing one is eventually abandoned instead of retried forever.
    draft_refusals: u32,
    /// No new draft request is issued before this time (bounded seeded
    /// backoff after a failure).
    draft_backoff_until: Option<f64>,
    /// Set when the head has exhausted every draft source: speculation is
    /// permanently off and generation completes through the non-speculative
    /// pending-token runs alone (which never deadlock and only ever emit
    /// target-verified tokens).
    draft_degraded: bool,
    /// Seeded jitter source for the retry backoff.
    backoff_rng: StdRng,
    record: GenerationRecord,
    output: RecordHandle,
    finished: bool,
    /// Results produced locally when the head is the only pipeline stage.
    local_results: VecDeque<(RunId, ActivationPayload)>,
}

impl PipeInferHead {
    /// Creates the head rank.
    ///
    /// * `route` — the target-pipeline route; the head is stage 0 and
    ///   typically holds an *empty* layer range.
    /// * `engine` — embedding / output-head / stage-0 evaluation engine.
    /// * `draft` — the speculative-model front-end: hosted locally or
    ///   reached over the wire on the dedicated draft rank.
    /// * `gen_config` / `config` — generation parameters and PipeInfer
    ///   tuning/ablation switches.
    /// * `output` — handle the final [`GenerationRecord`] is written to.
    pub fn new(
        route: PipelineRoute,
        engine: Box<dyn HeadEngine>,
        draft: DraftSource,
        gen_config: GenConfig,
        config: PipeInferConfig,
        output: RecordHandle,
    ) -> Self {
        let controller = SpeculationController::new(&config, gen_config.confidence_cutoff);
        let pool = SeqPartitionPool::new(config.n_seq_partitions);
        let remote_rank = match &draft {
            DraftSource::Remote(rank) => Some(*rank),
            DraftSource::Local(_) => None,
        };
        Self {
            route,
            engine,
            draft,
            gen_config,
            config,
            controller,
            pool,
            tracker: RunTracker::new(),
            accepted: Vec::new(),
            hypothesis: Vec::new(),
            expected: None,
            prompt_done: false,
            prompt_cached: 0,
            next_run_id: 0,
            next_draft_id: 0,
            inflight_draft: None,
            draft_refused: None,
            remote_rank,
            fallback: None,
            draft_failures: 0,
            draft_refusals: 0,
            draft_backoff_until: None,
            draft_degraded: false,
            backoff_rng: StdRng::seed_from_u64(BACKOFF_JITTER_SEED),
            record: GenerationRecord::default(),
            output,
            finished: false,
            local_results: VecDeque::new(),
        }
    }

    /// Attaches a local fallback drafter the head promotes to
    /// [`DraftSource::Local`] when the remote draft rank is detected dead or
    /// unresponsive (consecutive request timeouts/refusals past
    /// `draft_max_retries`).  Without one, the same detection degrades the
    /// head to non-speculative pipelined decoding instead.
    pub fn with_fallback(mut self, drafter: Box<dyn Drafter>) -> Self {
        self.fallback = Some(drafter);
        self
    }

    /// Declares that the leading `n` prompt tokens are already resident in
    /// every stage's KV cache, so prefill starts at position `n`.  Clamped to
    /// leave at least the final prompt token for live evaluation.
    pub fn with_prompt_cached(mut self, n: usize) -> Self {
        self.prompt_cached = n;
        self
    }

    /// Whether the head has failed over away from its original remote draft
    /// rank (to the local fallback or into degraded non-speculative mode).
    pub fn failed_over(&self) -> bool {
        self.draft_degraded
            || (self.remote_rank.is_some() && matches!(self.draft, DraftSource::Local(_)))
    }

    /// The record accumulated so far.
    pub fn record(&self) -> &GenerationRecord {
        &self.record
    }

    /// The sequence-partition pool (exposed for invariants in tests).
    pub fn partition_pool(&self) -> &SeqPartitionPool {
        &self.pool
    }

    // ----- dispatch helpers -------------------------------------------------

    fn make_batch(tokens: &[Token], base_pos: Pos, seq: SeqId) -> Batch {
        let mut batch = Batch::new();
        for (i, &tok) in tokens.iter().enumerate() {
            batch.push(tok, base_pos + i as Pos, vec![seq], true);
        }
        batch
    }

    fn send_cache_op(&mut self, op: CacheOp, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let cost = self.engine.apply_cache_op(&op);
        ctx.elapse(cost);
        match &op {
            CacheOp::BranchCommit { first, n_seqs, .. } => {
                let (first, n_seqs) = (*first, *n_seqs);
                trace_if(ctx, || EventKind::BranchCommit { first, n_seqs });
            }
            CacheOp::BranchRollback { first, n_seqs } => {
                let (first, n_seqs) = (*first, *n_seqs);
                trace_if(ctx, || EventKind::BranchRollback { first, n_seqs });
            }
            _ => {}
        }
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tags::CACHE, PipeMsg::Cache(op));
        }
    }

    fn send_decode(
        &mut self,
        run_id: RunId,
        kind: RunKind,
        batch: Batch,
        topology: Option<TreeTopology>,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        self.record.runs_launched += 1;
        let (payload, cost) = self.engine.eval_first_stage(&batch);
        ctx.elapse(cost);
        trace_if(ctx, || EventKind::RunInflight { run: run_id });
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(
                next,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind,
                    batch,
                    payload,
                    tree: topology,
                },
            );
        } else {
            self.local_results.push_back((run_id, payload));
        }
    }

    /// Dispatches a non-speculative run (prompt processing, pending token)
    /// into the canonical sequence.
    fn dispatch_run(&mut self, tokens: Vec<Token>, base_pos: Pos, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        trace_if(ctx, || EventKind::RunSpawned {
            run: run_id,
            speculative: false,
            n_nodes: tokens.len() as u32,
            width: 1,
            depth: tokens.len() as u32,
        });
        let batch = Self::make_batch(&tokens, base_pos, CANONICAL_SEQ);
        self.tracker.push(RunInfo::chain(
            run_id,
            RunKind::NonSpeculative,
            &tokens,
            base_pos,
            CANONICAL_SEQ,
        ));
        self.send_decode(run_id, RunKind::NonSpeculative, batch, None, ctx);
    }

    /// Dispatches a speculative tree micro-batch covering the next positions
    /// of the hypothesis.  The hypothesis is extended with the tree's
    /// primary spine; sibling branches ride along as hedges.
    fn dispatch_spec_tree(&mut self, tree: TokenTree, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if tree.is_empty() {
            return;
        }
        let n_leaves = tree.n_sequences();
        let Some(first_seq) = self.pool.alloc_block(n_leaves) else {
            // No free partition block: drop the speculation (it will be
            // re-drafted later if still useful).
            return;
        };
        // Give every leaf partition the shared prefix: the latest in-flight
        // speculative partition already holds canonical + all prior
        // speculated entries along the hypothesis; fall back to the
        // canonical sequence.
        let src = self
            .tracker
            .latest_speculative_seq()
            .unwrap_or(CANONICAL_SEQ);
        for leaf in 0..n_leaves as SeqId {
            self.send_cache_op(
                CacheOp::SeqCp {
                    src,
                    dst: first_seq + leaf,
                    p0: 0,
                    p1: Pos::MAX,
                },
                ctx,
            );
        }
        let base = self.hypothesis.len() as Pos;
        self.record.drafted += tree.len();
        if self.config.micro_width > 1 {
            self.record.tree_rounds += 1;
            self.record.tree_nodes += tree.len();
            self.record
                .tree_shapes
                .push((tree.roots().len(), tree.spine().len()));
        }
        for &node in &tree.spine() {
            self.hypothesis.push(tree.nodes()[node].token);
        }
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        trace_if(ctx, || EventKind::RunSpawned {
            run: run_id,
            speculative: true,
            n_nodes: tree.len() as u32,
            width: tree.roots().len() as u32,
            depth: tree.spine().len() as u32,
        });
        let batch = tree.to_batch(base, first_seq);
        // Chains keep their topology implicit in batch order (degenerate
        // single-branch trees); only genuine trees ship parent links.
        let topology = (n_leaves > 1).then(|| TreeTopology::from_tree(&tree));
        self.tracker
            .push(RunInfo::tree(run_id, tree, base, first_seq));
        self.send_decode(run_id, RunKind::Speculative, batch, topology, ctx);
    }

    /// One iteration of continuous speculation: probe-found-nothing ⇒ obtain
    /// a tree micro-batch from the draft source.  Locally hosted drafters
    /// draft and dispatch synchronously; the dedicated draft rank is sent a
    /// request whose response dispatches on arrival.  Returns `true` if
    /// useful work was performed.
    fn try_speculate(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        if self.finished || !self.prompt_done {
            return false;
        }
        let ahead = self.hypothesis.len() - self.accepted.len();
        if !self.controller.should_request(
            ahead,
            self.tracker.active_speculative(),
            self.pool.available(),
        ) {
            return false;
        }
        let (width, depth) = self.controller.shape();
        match &mut self.draft {
            DraftSource::Local(drafter) => {
                let (tree, cost) = drafter.draft_tree(
                    &self.hypothesis,
                    &[],
                    width,
                    depth,
                    self.controller.cutoff(),
                );
                ctx.elapse(cost);
                if tree.is_empty() {
                    // The draft model is not confident enough under the
                    // current cutoff gradient: stop speculating until
                    // verification catches up (a run completion resets the
                    // cutoff).
                    return false;
                }
                self.controller.on_iteration();
                self.dispatch_spec_tree(tree, ctx);
                true
            }
            DraftSource::Remote(rank) => {
                if self.draft_degraded {
                    // Every draft source is exhausted: non-speculative
                    // decoding only.
                    return false;
                }
                if let Some(d) = self.inflight_draft {
                    // One hypothesis in flight at a time; the response (or
                    // its invalidation, or its deadline) unblocks the next
                    // request.  Keep the deadline armed: wake requests are
                    // one-shot.
                    ctx.request_wake(d.deadline);
                    return false;
                }
                let cutoff = self.controller.cutoff();
                if let Some((refused_cutoff, refused_len)) = self.draft_refused {
                    if cutoff >= refused_cutoff && self.hypothesis.len() == refused_len {
                        // The draft rank already refused this hypothesis at
                        // an equal-or-lower bar.  Wait for verification to
                        // lower the cutoff or move the hypothesis — but only
                        // up to the retry backoff: a permanently-refusing
                        // drafter must keep accumulating failures until the
                        // head fails over, not stall speculation forever.
                        match self.draft_backoff_until {
                            Some(until) if ctx.now() < until => {
                                ctx.request_wake(until);
                                return false;
                            }
                            _ => {}
                        }
                    }
                    self.draft_refused = None;
                    self.draft_backoff_until = None;
                }
                if let Some(until) = self.draft_backoff_until {
                    // Backoff after a request timeout (no refusal standing).
                    if ctx.now() < until {
                        ctx.request_wake(until);
                        return false;
                    }
                    self.draft_backoff_until = None;
                }
                let id = self.next_draft_id;
                self.next_draft_id += 1;
                let deadline = ctx.now() + self.config.draft_deadline_s;
                self.inflight_draft = Some(InflightDraft {
                    id,
                    cutoff,
                    deadline,
                });
                if self.draft_failures > 0 || self.draft_refusals > 0 {
                    ctx.record_draft_retry();
                }
                ctx.request_wake(deadline);
                self.record.draft_requests += 1;
                let context_len = self.hypothesis.len() as u32;
                trace_if(ctx, || EventKind::DraftRequested {
                    request: id,
                    context_len,
                });
                let rank = *rank;
                ctx.send(
                    rank,
                    tags::DRAFT,
                    PipeMsg::DraftRequest {
                        request_id: id,
                        context: self.hypothesis.clone(),
                        width,
                        max_tokens: depth,
                        confidence_cutoff: cutoff,
                    },
                );
                true
            }
        }
    }

    /// Handles the dedicated draft rank's response: drops it if the
    /// hypothesis it continues has been invalidated or extended since the
    /// request, otherwise dispatches the returned tree.
    fn handle_draft_response(
        &mut self,
        request_id: u64,
        nodes: Vec<(Token, f32)>,
        topology: TreeTopology,
        context_len: usize,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        if self.finished {
            return;
        }
        trace_if(ctx, || EventKind::DraftResponded {
            request: request_id,
            n_nodes: nodes.len() as u32,
        });
        let inflight = self.inflight_draft;
        let fresh = matches!(inflight, Some(d) if d.id == request_id);
        if fresh {
            self.inflight_draft = None;
        }
        if !fresh {
            // A response to an abandoned (invalidated) hypothesis: these
            // tokens continue a sequence that no longer exists.  Already
            // counted as stale when the cancellation was issued — the only
            // way a request stops being the in-flight one without its
            // response arriving.
            return;
        }
        if nodes.is_empty() {
            // The draft rank was not confident enough under the request's
            // cutoff; back off until the gradient or the hypothesis moves —
            // or the bounded retry backoff elapses.  The refusal applies to
            // the *requested* context only — if the hypothesis has grown
            // since, the draft rank never judged it, so the next request
            // goes out unimpeded.
            if context_len == self.hypothesis.len() {
                let cutoff = inflight.map(|d| d.cutoff).unwrap_or(0.0);
                self.draft_refusals += 1;
                let bar = REFUSAL_FAILOVER_FACTOR * (self.config.draft_max_retries + 1);
                if self.draft_refusals >= bar {
                    // The drafter refuses every retry, backoff after
                    // backoff: treat it like an unresponsive rank rather
                    // than keep paying fruitless round trips.
                    self.fail_over(ctx, self.draft_refusals);
                } else {
                    self.draft_refused = Some((cutoff, context_len));
                    self.arm_backoff(ctx, self.draft_refusals);
                }
            }
            return;
        }
        // A useful response: the draft source is alive and cooperating.
        self.draft_failures = 0;
        self.draft_refusals = 0;
        let mut tree = topology.to_tree(&nodes);
        if context_len != self.hypothesis.len() {
            // The hypothesis moved ahead while the request was in flight
            // (accepted tokens extended it, without an invalidation — an
            // invalidation would have cancelled the request).  Salvage the
            // draft's unused tail: if the drafted tree covers the gap
            // exactly, its remainder still continues the current hypothesis.
            let Some(tail) = (context_len < self.hypothesis.len())
                .then(|| {
                    let gap = &self.hypothesis[context_len..];
                    let mut level = tree.roots();
                    let mut last = None;
                    for &tok in gap {
                        let hit = level.iter().find(|&&id| tree.nodes()[id].token == tok)?;
                        last = Some(*hit);
                        level = tree.nodes()[*hit].children.clone();
                    }
                    last.map(|node| tree.subtree_below(node))
                })
                .flatten()
                .filter(|t| !t.is_empty())
            else {
                self.record.draft_stale += 1;
                return;
            };
            tree = tail;
            self.record.draft_salvaged += 1;
        }
        // Re-check the gate: partitions or the speculation budget may have
        // been consumed while the request was in flight.  This drop is
        // backpressure, not staleness — the hypothesis is intact and the
        // draft will simply be re-requested when the gate reopens.
        let ahead = self.hypothesis.len() - self.accepted.len();
        if !self.controller.should_request(
            ahead,
            self.tracker.active_speculative(),
            self.pool.available(),
        ) {
            return;
        }
        self.controller.on_iteration();
        self.dispatch_spec_tree(tree, ctx);
    }

    /// Cancels the in-flight draft request, if any: its hypothesis has just
    /// been invalidated, so the draft rank should drop it unserved.
    fn cancel_inflight_draft(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let DraftSource::Remote(rank) = self.draft {
            if let Some(d) = self.inflight_draft.take() {
                self.record.draft_stale += 1;
                trace_if(ctx, || EventKind::DraftCancelled { up_to: d.id });
                ctx.send(rank, tags::CANCEL, PipeMsg::DraftCancel { up_to: d.id });
            }
        }
    }

    /// Checks the in-flight draft request against its deadline, called at
    /// the top of every callback.  An expiry is counted as a draft timeout
    /// and retried under the bounded backoff; past `draft_max_retries`
    /// consecutive failures the head fails over away from the remote rank.
    /// No-op for local drafting and fault-free timelines (the deadline
    /// dwarfs real round trips).
    fn poll_draft_deadline(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if self.finished {
            return;
        }
        let DraftSource::Remote(rank) = self.draft else {
            return;
        };
        let Some(d) = self.inflight_draft else {
            return;
        };
        if ctx.now() < d.deadline {
            ctx.request_wake(d.deadline);
            return;
        }
        // The deadline expired without a response: the draft rank is dead,
        // partitioned or pathologically slow.
        self.inflight_draft = None;
        self.record.draft_stale += 1;
        self.draft_failures += 1;
        ctx.record_draft_timeout();
        let request = d.id;
        trace_if(ctx, || EventKind::DraftTimeout { request });
        // Tell the (possibly just slow) rank to drop the request unserved;
        // a late response is already rejected by the fresh-id check.
        ctx.send(rank, tags::CANCEL, PipeMsg::DraftCancel { up_to: request });
        if self.draft_failures > self.config.draft_max_retries {
            self.fail_over(ctx, self.draft_failures);
        } else {
            self.arm_backoff(ctx, self.draft_failures);
        }
    }

    /// Fails over away from the remote draft rank — after
    /// `draft_max_retries + 1` consecutive timeouts, or a
    /// [`REFUSAL_FAILOVER_FACTOR`]× longer streak of refusals — onto the
    /// local fallback drafter when one is attached, otherwise into degraded
    /// non-speculative decoding.  Either way the token stream is unaffected:
    /// verified tokens only ever come from the head's own target engine.
    fn fail_over(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>, failures: u32) {
        ctx.record_failover();
        trace_if(ctx, || EventKind::DraftFailover { timeouts: failures });
        self.draft_failures = 0;
        self.draft_refusals = 0;
        self.draft_backoff_until = None;
        self.draft_refused = None;
        self.inflight_draft = None;
        match self.fallback.take() {
            Some(drafter) => self.draft = DraftSource::Local(drafter),
            None => self.draft_degraded = true,
        }
    }

    /// Arms the retry backoff after the latest draft failure:
    /// `draft_backoff_s × 2^min(failures, 6) × U[0.5, 1.5)`, jittered from a
    /// seeded source so replays of the same schedule stay bit-identical.
    fn arm_backoff(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>, failures: u32) {
        let exp = failures.min(BACKOFF_MAX_EXP);
        let jitter = 0.5 + self.backoff_rng.gen::<f64>();
        let delay = self.config.draft_backoff_s * f64::from(1u32 << exp) * jitter;
        let until = ctx.now() + delay;
        self.draft_backoff_until = Some(until);
        ctx.request_wake(until);
    }

    /// Accepts `token` as the new pending token (correction or anticipated
    /// bonus), records it, and dispatches the non-speculative run evaluating
    /// it.
    fn accept_new_pending(&mut self, token: Token, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.accepted.push(token);
        self.hypothesis = self.accepted.clone();
        if self.prompt_done {
            self.record.tokens.push(token);
            self.record.accept_times.push(ctx.now());
        }
        self.expected = None;
        let base = (self.accepted.len() - 1) as Pos;
        self.dispatch_run(vec![token], base, ctx);
    }

    /// Accepts `token` knowing an in-flight run's surviving sibling branch
    /// already covers it: no non-speculative run is needed — the kept run's
    /// result will confirm the token and re-establish the expectation (the
    /// branch-granular analogue of the paper's anticipated acceptance).
    fn accept_rescued(&mut self, token: Token, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.accepted.push(token);
        if self.prompt_done {
            self.record.tokens.push(token);
            self.record.accept_times.push(ctx.now());
        }
        self.controller.on_accept();
        self.expected = None;
        self.hypothesis = self.accepted.clone();
    }

    /// Cancellation sweep: marks in-flight speculative runs from `pos` on as
    /// invalid and back-propagates cancellation signals.  When `rescue`
    /// carries the accepted token for `pos`, a run whose sibling branch
    /// holds it survives the sweep; returns `true` iff one did.
    fn cancel_runs_from(
        &mut self,
        pos: Pos,
        rescue: Option<Token>,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) -> bool {
        let outcome = self.tracker.invalidate_from(pos, rescue);
        self.record.runs_cancelled += outcome.cancelled.len();
        for &run_id in &outcome.cancelled {
            trace_if(ctx, || EventKind::RunInvalidated { run: run_id });
        }
        if outcome.rescued.is_some() {
            self.record.runs_rescued += 1;
        }
        if let Some(run_id) = outcome.rescued {
            trace_if(ctx, || EventKind::RunRescued { run: run_id });
        }
        if self.config.enable_cancellation && self.route.n_stages() > 1 {
            for run_id in outcome.cancelled {
                ctx.send(self.route.last(), tags::CANCEL, PipeMsg::Cancel { run_id });
            }
        }
        self.controller.on_failure_while_idle();
        self.cancel_inflight_draft(ctx);
        // The correction rewrites the hypothesis's content, so a standing
        // refusal (keyed on the old content's length) — and the retry
        // backoff it armed — no longer applies.  Failures keep accumulating:
        // only a successful response clears them.
        if self.draft_refused.take().is_some() {
            self.draft_backoff_until = None;
        }
        outcome.rescued.is_some()
    }

    /// Handles a divergence discovered at `accepted.len()`: invalidate the
    /// contradicted speculation, then accept the correction — through the
    /// rescued sibling branch when one survives, through a fresh
    /// non-speculative run otherwise.
    ///
    /// `observe_rejection` is set by callers whose divergence no surviving
    /// run will report to the shape model (the anticipation path): when the
    /// sweep cancels the covering run outright, the spine rejection is
    /// registered here — a rescued run reports its own outcome later, and a
    /// within-walk mismatch was already observed by the walking run.
    fn correct_frontier(
        &mut self,
        correction: Token,
        observe_rejection: bool,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let pos = self.accepted.len() as Pos;
        let rescue_token = self.config.branch_invalidation.then_some(correction);
        let rescued = self.cancel_runs_from(pos, rescue_token, ctx);
        self.hypothesis.truncate(self.accepted.len());
        if observe_rejection && !rescued {
            self.controller.observe_shape(0, 1);
        }
        if rescued {
            self.accept_rescued(correction, ctx);
        } else {
            self.accept_new_pending(correction, ctx);
        }
    }

    /// Handles a newly learned true token `e` for position `accepted.len()`:
    /// either an in-flight speculation already covers it (and will be
    /// verified when it returns), or speculation diverged (invalidate, with
    /// sibling branches eligible for rescue), or nothing covers it (accept
    /// it immediately and keep the pipeline busy with its non-speculative
    /// run).
    fn resolve_expected(&mut self, e: Token, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.expected = Some(e);
        let pos = self.accepted.len();
        if self.hypothesis.len() > pos {
            if self.hypothesis[pos] != e {
                // Unless a sibling branch rescues it, the covering run is
                // about to be cancelled and will never report its own
                // outcome: `correct_frontier` registers the spine rejection
                // in that case, or the shape model only ever sees the
                // survivors and stays optimistic.
                self.correct_frontier(e, true, ctx);
            } else {
                // The token is already speculated and its verification run is
                // in flight — but it is the target's own choice, so it is
                // *known correct* right now.  Accept it immediately (the
                // paper's "anticipated" token, §II-A2): this is what keeps
                // PipeInfer's TTFT at iterative levels.  The covering run
                // will later supply the expectation for the positions after
                // it and its KV entries.
                self.accepted.push(e);
                if self.prompt_done {
                    self.record.tokens.push(e);
                    self.record.accept_times.push(ctx.now());
                }
                self.controller.on_accept();
                self.expected = None;
            }
        } else {
            self.accept_new_pending(e, ctx);
        }
    }

    // ----- result handling --------------------------------------------------

    /// Releases a speculative run's partition block, committing the accepted
    /// root-to-leaf path into the canonical sequence first when one exists.
    /// `committed` carries the path's leaf partition and one past the last
    /// accepted position.
    fn release_run(
        &mut self,
        info: &RunInfo,
        committed: Option<(SeqId, Pos)>,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        if info.n_seqs == 0 {
            return;
        }
        let op = match committed {
            Some((path, p1)) => CacheOp::BranchCommit {
                dst: CANONICAL_SEQ,
                path,
                first: info.first_seq,
                n_seqs: info.n_seqs as u32,
                p0: info.base_pos,
                p1,
            },
            None => CacheOp::BranchRollback {
                first: info.first_seq,
                n_seqs: info.n_seqs as u32,
            },
        };
        self.send_cache_op(op, ctx);
        self.pool.free_block(info.first_seq, info.n_seqs);
    }

    fn handle_result(
        &mut self,
        run_id: RunId,
        payload: ActivationPayload,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        if self.finished {
            return;
        }
        let info = self.tracker.pop_expect(run_id);
        if info.cancelled {
            self.release_run(&info, None, ctx);
            return;
        }
        let run_tokens = info.tokens();
        // Prompt completion.
        if !self.prompt_done {
            let batch = Self::make_batch(&run_tokens, info.base_pos, info.first_seq);
            // The run's batch starts at the first *uncached* prompt position;
            // the pooled prefix (if any) is context the engine already holds.
            let prefix = &self.gen_config.prompt[..info.base_pos as usize];
            let (greedy, cost) = self.engine.finalize(&batch, &payload, prefix);
            ctx.elapse(cost);
            self.prompt_done = true;
            self.record.prompt_done_at = ctx.now();
            self.accepted = prefix.to_vec();
            self.accepted.extend_from_slice(&run_tokens);
            // The token sampled from prompt processing is not counted as
            // generated (paper TTFT definition) but becomes the pending
            // token.
            let pending = *greedy.last().expect("prompt batch is non-empty");
            self.accepted.push(pending);
            self.hypothesis = self.accepted.clone();
            let base = (self.accepted.len() - 1) as Pos;
            self.dispatch_run(vec![pending], base, ctx);
            return;
        }

        let context = &self.accepted[..info.base_pos as usize];
        let batch = info.tree.to_batch(info.base_pos, info.first_seq);
        let (greedy, cost) = if info.n_seqs > 1 {
            let parents = info.tree.parents();
            self.engine
                .finalize_tree(&batch, &payload, context, &parents)
        } else {
            self.engine.finalize(&batch, &payload, context)
        };
        ctx.elapse(cost);

        match info.kind {
            RunKind::NonSpeculative => {
                let e = greedy[0];
                self.resolve_expected(e, ctx);
            }
            RunKind::Speculative => {
                self.resolve_speculative(info, greedy, ctx);
            }
        }

        if self.record.tokens.len() >= self.gen_config.n_generate {
            self.finish(ctx);
        }
    }

    /// Verifies a returned speculative tree run: walks the deepest branch
    /// consistent with the accepted tokens (confirming tokens accepted in
    /// anticipation or through a rescue) and the target's greedy choices
    /// (accepting fresh ones), commits the accepted path's KV entries, and
    /// resolves the new expectation.
    ///
    /// `greedy[id]` is the target's true token after node `id`'s
    /// root-to-node path.  For a degenerate chain this reduces exactly to
    /// the longest-prefix rule of linear speculation.
    fn resolve_speculative(
        &mut self,
        info: RunInfo,
        greedy: Vec<Token>,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let nodes = info.tree.nodes();
        let mut level: Vec<TreeNodeId> = info.tree.roots();
        let mut pos = info.base_pos as usize;
        // The expectation at the walk frontier: pre-accepted positions carry
        // their own truth; past them the target's choice after the last
        // walked node (seeded with the standing expectation when the run
        // starts at the frontier).
        let mut exp: Option<Token> = if pos >= self.accepted.len() {
            self.expected
        } else {
            None
        };
        let mut path: Vec<TreeNodeId> = Vec::new();
        let mut confirmed = 0usize;
        let mut mismatch: Option<Token> = None;
        let mut inconsistent = false;
        // Set once the walk accepts a node off the hypothesis (a sibling
        // branch rescuing the round synchronously): everything speculated
        // after that position descends from the rejected spine.
        let mut deviated = false;
        while !level.is_empty() {
            let want = if pos < self.accepted.len() {
                self.accepted[pos]
            } else {
                exp.expect("speculative result arrived before its expectation was established")
            };
            let Some(&hit) = level.iter().find(|&&id| nodes[id].token == want) else {
                if pos < self.accepted.len() {
                    // No branch lies on the already-accepted path: the run
                    // contributed nothing and a covering run for these
                    // positions is already in flight (it should have been
                    // cancelled; reaching here is only possible with
                    // whole-run invalidation disabled mid-stream).
                    debug_assert!(false, "uncancelled run off the accepted path");
                    inconsistent = true;
                } else {
                    mismatch = Some(want);
                }
                break;
            };
            if pos >= self.accepted.len() {
                debug_assert_eq!(pos, self.accepted.len(), "walk positions are contiguous");
                match self.hypothesis.get(pos) {
                    // Position not covered by any hypothesis: nothing was
                    // drafted past here, so there is nothing to invalidate
                    // (deep branches of an already-rescued run land here).
                    None => {}
                    Some(&h) if h != want && !deviated => {
                        // The target chose a sibling branch over the spine:
                        // the hypothesis past this position — and every
                        // in-flight run drafted on it — is invalid, but this
                        // run's own surviving branch keeps the round alive.
                        deviated = true;
                        self.record.runs_rescued += 1;
                        let run = info.run_id;
                        trace_if(ctx, || EventKind::RunRescued { run });
                        self.cancel_runs_from(pos as Pos, None, ctx);
                        self.hypothesis.truncate(pos);
                    }
                    Some(_) => {}
                }
                self.accepted.push(want);
                if self.hypothesis.len() < self.accepted.len() {
                    // Keep the hypothesis a superset of the accepted tokens.
                    self.hypothesis.push(want);
                }
                self.record.tokens.push(want);
                self.record.accept_times.push(ctx.now());
            }
            path.push(hit);
            confirmed += 1;
            exp = Some(greedy[hit]);
            level = nodes[hit].children.clone();
            pos += 1;
        }
        self.record.accepted_drafts += confirmed;
        if self.config.micro_width > 1 {
            self.record.tree_accepted_path += confirmed;
        }
        trace_if(ctx, || EventKind::RunVerified {
            run: info.run_id,
            accepted: confirmed as u32,
        });
        // The shape model tracks the primary spine: a round rescued by a
        // runner-up still rejected the primary candidate.
        let spine = info.tree.spine();
        let spine_accepted = path
            .iter()
            .zip(&spine)
            .take_while(|(walked, spine_node)| walked == spine_node)
            .count();
        self.controller
            .observe_shape(spine_accepted, info.tree.span());

        // Buffer swap at branch granularity: commit the accepted path's
        // entries into the canonical sequence while dropping every sibling
        // branch, or roll the whole block back when nothing survived.
        let committed = path.last().map(|&deepest| {
            let leaf_seq = info.tree.assign_sequences(info.first_seq)[deepest][0];
            (leaf_seq, info.base_pos + confirmed as Pos)
        });
        if committed.is_some() {
            self.controller.on_accept();
        }
        self.release_run(&info, committed, ctx);

        if inconsistent {
            return;
        }
        match mismatch {
            None => {
                let e = exp.expect("non-empty run always yields an expectation");
                self.resolve_expected(e, ctx);
            }
            Some(correction) => {
                // Mismatch at the frontier: everything speculated past the
                // accepted prefix is invalid — except a sibling branch of a
                // later run that carries the correction itself.  This run
                // already reported the rejection to the shape model above.
                self.correct_frontier(correction, false, ctx);
            }
        }
    }

    fn drain_local_results(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        while let Some((run_id, payload)) = self.local_results.pop_front() {
            if self.finished {
                break;
            }
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn finish(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if self.finished {
            return;
        }
        self.record.finished_at = ctx.now();
        record_kv_events(self.engine.take_kv_events(), ctx);
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tags::SHUTDOWN, PipeMsg::Shutdown);
        }
        // Shut the draft rank down even after a failover: the rank may be
        // merely partitioned or slow rather than dead (a genuinely dead rank
        // simply never receives it, and detects the orphaning itself).
        if let Some(rank) = self.remote_rank {
            ctx.send(rank, tags::SHUTDOWN, PipeMsg::Shutdown);
        }
        *self.output.lock().unwrap() = Some(self.record.clone());
        self.finished = true;
    }
}

impl NodeBehavior<PipeMsg> for PipeInferHead {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let prompt = self.gen_config.prompt.clone();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let cached = self.prompt_cached.min(prompt.len() - 1);
        self.dispatch_run(prompt[cached..].to_vec(), cached as Pos, ctx);
        self.drain_local_results(ctx);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.poll_draft_deadline(ctx);
        match msg {
            PipeMsg::RunResult { run_id, payload } => {
                self.handle_result(run_id, payload, ctx);
            }
            PipeMsg::DraftResponse {
                request_id,
                nodes,
                topology,
                context_len,
            } => {
                self.handle_draft_response(request_id, nodes, topology, context_len, ctx);
            }
            _ => {}
        }
        self.drain_local_results(ctx);
    }

    fn on_idle(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        // "The idle state is determined by probing for an incoming logits
        // transfer transaction … otherwise, the node generates another
        // speculation tree" (§IV-B).
        self.poll_draft_deadline(ctx);
        let worked = self.try_speculate(ctx);
        self.drain_local_results(ctx);
        worked && !self.finished
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{ModelConfig, OracleDraft, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_spec::drafter::OracleDrafter;
    use pi_spec::engine::{SimHeadEngine, SimStageEngine};
    use pi_tensor::QuantKind;
    use std::sync::{Arc, Mutex};

    /// A test context that collects sent messages.
    struct TestCtx {
        rank: Rank,
        sent: Vec<(Rank, PipeMsg)>,
        now: f64,
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            self.rank
        }
        fn world_size(&self) -> usize {
            3
        }
        fn now(&self) -> f64 {
            self.now
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.now += seconds;
        }
    }

    const ORACLE_SEED: u64 = 77;
    const VOCAB: u32 = 32000;

    /// A test world: rank 0 = head, rank 1 = a single pipeline worker
    /// holding every target layer, and (for the Fig. 3 layout) rank 2 = the
    /// dedicated draft rank.
    struct TestWorld {
        head: PipeInferHead,
        worker: pi_spec::PipelineWorker,
        draft_node: Option<crate::DraftNode>,
        cancel_messages: usize,
    }

    fn oracle_drafter(alignment: f64) -> OracleDrafter {
        OracleDrafter::new(
            OracleTarget::new(ORACLE_SEED, VOCAB),
            OracleDraft::new(ORACLE_SEED + 1, VOCAB, alignment),
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        )
    }

    fn build_world(
        alignment: f64,
        n_generate: usize,
        config: PipeInferConfig,
    ) -> (TestWorld, RecordHandle) {
        let output: RecordHandle = Arc::new(Mutex::new(None));
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let dedicated = matches!(config.draft_placement, crate::DraftPlacement::DedicatedRank);
        // Head-hosted: route over ranks {0, 1}.  Dedicated: the worker keeps
        // rank 1 for simplicity and the draft rank sits at rank 2, off the
        // route — the head only cares that the draft rank is off-route.
        let route = PipelineRoute::baseline(2);
        let target_cost = ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K);
        let node = NodeSpec::xeon_gold_6140_dual();
        let draft = if dedicated {
            DraftSource::Remote(2)
        } else {
            DraftSource::Local(Box::new(oracle_drafter(alignment)))
        };
        let mut head = PipeInferHead::new(
            route.clone(),
            Box::new(SimHeadEngine::new(
                CostModel::new(node.clone()),
                target_cost.clone(),
                0,
                oracle,
            )),
            draft,
            GenConfig::small_test(vec![3, 1, 4, 1, 5], n_generate),
            config,
            output.clone(),
        );
        if dedicated {
            // Mirrors PipeInferStrategy::build_head: the dedicated layout
            // keeps a local drafter in reserve for draft-rank failover.
            head = head.with_fallback(Box::new(oracle_drafter(alignment)));
        }
        let worker = pi_spec::PipelineWorker::new(
            1,
            route,
            Box::new(SimStageEngine::new(CostModel::new(node), target_cost, 80)),
        );
        let draft_node =
            dedicated.then(|| crate::DraftNode::new(0, Box::new(oracle_drafter(alignment))));
        (
            TestWorld {
                head,
                worker,
                draft_node,
                cancel_messages: 0,
            },
            output,
        )
    }

    fn build_head(
        alignment: f64,
        n_generate: usize,
        config: PipeInferConfig,
    ) -> (TestWorld, RecordHandle) {
        build_world(alignment, n_generate, config)
    }

    /// Runs the world to completion by shuttling messages round by round,
    /// letting the head perform idle speculation between rounds.
    fn drive(world: &mut TestWorld) -> GenerationRecord {
        let mut head_ctx = TestCtx {
            rank: 0,
            sent: Vec::new(),
            now: 0.0,
        };
        let mut worker_ctx = TestCtx {
            rank: 1,
            sent: Vec::new(),
            now: 0.0,
        };
        let mut draft_ctx = TestCtx {
            rank: 2,
            sent: Vec::new(),
            now: 0.0,
        };
        world.head.on_start(&mut head_ctx);
        let mut safety = 0;
        while !world.head.is_finished() {
            safety += 1;
            assert!(safety < 50_000, "head did not converge");
            // Let the head speculate while the pipeline is busy (a couple of
            // probes per round keeps several runs in flight).
            for _ in 0..2 {
                if !world.head.on_idle(&mut head_ctx) {
                    break;
                }
            }
            // Deliver the head's outgoing traffic.
            let outgoing: Vec<(Rank, PipeMsg)> = head_ctx.sent.drain(..).collect();
            let mut progressed = false;
            for (dst, msg) in outgoing {
                if matches!(msg, PipeMsg::Cancel { .. }) {
                    world.cancel_messages += 1;
                }
                match dst {
                    1 => {
                        world.worker.on_message(0, 0, msg, &mut worker_ctx);
                        progressed = true;
                    }
                    2 => {
                        if let Some(node) = world.draft_node.as_mut() {
                            node.on_message(0, 0, msg, &mut draft_ctx);
                            progressed = true;
                        }
                    }
                    _ => {}
                }
            }
            // Let the draft rank serve its newest request.
            if let Some(node) = world.draft_node.as_mut() {
                if node.on_idle(&mut draft_ctx) {
                    progressed = true;
                }
            }
            // Deliver worker results and draft responses back to the head.
            let results: Vec<(Rank, PipeMsg)> = worker_ctx
                .sent
                .drain(..)
                .chain(draft_ctx.sent.drain(..))
                .collect();
            for (dst, msg) in results {
                if dst == 0 && !world.head.is_finished() {
                    head_ctx.now += 1e-4;
                    world.head.on_message(1, 0, msg, &mut head_ctx);
                    progressed = true;
                }
            }
            if !progressed && !world.head.on_idle(&mut head_ctx) {
                panic!("deadlock: head idle with nothing in flight");
            }
        }
        world.head.record().clone()
    }

    /// Drives a dedicated-rank world whose draft rank is dead from the
    /// start: every `DraftRequest` disappears on the wire and wall time
    /// marches one second per round, so request deadlines keep expiring
    /// until the head's recovery ladder resolves.
    fn drive_without_draft_rank(world: &mut TestWorld) -> GenerationRecord {
        let mut head_ctx = TestCtx {
            rank: 0,
            sent: Vec::new(),
            now: 0.0,
        };
        let mut worker_ctx = TestCtx {
            rank: 1,
            sent: Vec::new(),
            now: 0.0,
        };
        world.head.on_start(&mut head_ctx);
        let mut safety = 0;
        while !world.head.is_finished() {
            safety += 1;
            assert!(safety < 50_000, "head did not converge");
            head_ctx.now += 1.0;
            for _ in 0..2 {
                if !world.head.on_idle(&mut head_ctx) {
                    break;
                }
            }
            let outgoing: Vec<(Rank, PipeMsg)> = head_ctx.sent.drain(..).collect();
            for (dst, msg) in outgoing {
                if dst == 1 {
                    world.worker.on_message(0, 0, msg, &mut worker_ctx);
                }
                // dst 2 (the draft rank) is dead: messages are black-holed.
            }
            let results: Vec<(Rank, PipeMsg)> = worker_ctx.sent.drain(..).collect();
            for (dst, msg) in results {
                if dst == 0 && !world.head.is_finished() {
                    world.head.on_message(1, 0, msg, &mut head_ctx);
                }
            }
        }
        world.head.record().clone()
    }

    #[test]
    fn dead_draft_rank_fails_over_to_the_fallback_and_preserves_the_stream() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 20);
        // Tight recovery knobs so the failover resolves within the first few
        // one-second rounds, well before the 12 tokens are out.
        let config = PipeInferConfig {
            draft_deadline_s: 0.25,
            draft_backoff_s: 0.01,
            ..PipeInferConfig::dedicated_draft_rank()
        };
        let (mut world, _) = build_head(0.9, 12, config);
        world.draft_node = None;
        let record = drive_without_draft_rank(&mut world);
        assert!(
            world.head.failed_over(),
            "consecutive timeouts must trigger the failover"
        );
        assert_eq!(
            record.tokens[..12].to_vec(),
            truth[1..13].to_vec(),
            "failover must preserve the greedy stream byte-for-byte"
        );
        assert!(record.draft_requests >= 1, "the head tried the remote rank");
        assert!(
            record.accepted_drafts > 0,
            "the fallback drafter resumes speculation after the failover"
        );
    }

    #[test]
    fn dead_draft_rank_without_fallback_degrades_but_never_deadlocks() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 16);
        let output: RecordHandle = Arc::new(Mutex::new(None));
        let route = PipelineRoute::baseline(2);
        let node = NodeSpec::xeon_gold_6140_dual();
        let target_cost = ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K);
        let head = PipeInferHead::new(
            route.clone(),
            Box::new(SimHeadEngine::new(
                CostModel::new(node.clone()),
                target_cost.clone(),
                0,
                OracleTarget::new(ORACLE_SEED, VOCAB),
            )),
            DraftSource::Remote(2),
            GenConfig::small_test(vec![3, 1, 4, 1, 5], 10),
            PipeInferConfig {
                draft_deadline_s: 0.25,
                draft_backoff_s: 0.01,
                ..PipeInferConfig::dedicated_draft_rank()
            },
            output,
        );
        let worker = pi_spec::PipelineWorker::new(
            1,
            route,
            Box::new(SimStageEngine::new(CostModel::new(node), target_cost, 80)),
        );
        let mut world = TestWorld {
            head,
            worker,
            draft_node: None,
            cancel_messages: 0,
        };
        let record = drive_without_draft_rank(&mut world);
        assert!(world.head.failed_over(), "degraded mode counts as failover");
        assert_eq!(
            record.tokens[..10].to_vec(),
            truth[1..11].to_vec(),
            "degraded non-speculative decoding still emits the exact stream"
        );
        assert_eq!(
            record.accepted_drafts, 0,
            "no drafts are ever accepted without a draft source"
        );
    }

    #[test]
    fn output_matches_target_continuation_for_all_alignments() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 40);
        for alignment in [0.0, 0.5, 0.9, 1.0] {
            let (mut world, _) = build_head(alignment, 24, PipeInferConfig::default());
            let record = drive(&mut world);
            assert!(record.tokens.len() >= 24, "alignment {alignment}");
            assert_eq!(
                record.tokens[..24].to_vec(),
                truth[1..25].to_vec(),
                "PipeInfer must preserve greedy output exactly (alignment {alignment})"
            );
        }
    }

    #[test]
    fn tree_micro_batches_preserve_the_stream_and_rescue_runs() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 48);
        // Low alignment: the spine misses often, so runner-up branches get
        // their chance to rescue rounds.
        let (mut world, _) = build_head(0.3, 32, PipeInferConfig::tree_micro());
        let record = drive(&mut world);
        assert_eq!(
            record.tokens[..32].to_vec(),
            truth[1..33].to_vec(),
            "tree micro-batches must preserve greedy output"
        );
        assert!(record.tree_rounds > 0, "tree stats must be recorded");
        assert_eq!(record.tree_shapes.len(), record.tree_rounds);
        // Partition blocks are recycled, not leaked.
        assert!(world.head.partition_pool().in_use() <= 32);
    }

    #[test]
    fn branch_rescue_accepts_tokens_without_extra_runs() {
        // With hedged trees and a poorly aligned draft, some rounds must be
        // saved by a sibling branch (rescue) — and whole-run invalidation of
        // the same configuration must cancel strictly more runs.
        let (mut world, _) = build_head(0.2, 40, PipeInferConfig::tree_micro());
        let branch = drive(&mut world);
        let (mut world_whole, _) = build_head(
            0.2,
            40,
            PipeInferConfig::tree_micro().whole_run_invalidation(),
        );
        let whole = drive(&mut world_whole);
        assert_eq!(branch.tokens, whole.tokens, "streams never differ");
        assert!(
            branch.runs_rescued > 0,
            "hedged trees must rescue some rounds at 20% alignment"
        );
        assert_eq!(whole.runs_rescued, 0, "whole-run mode never rescues");
    }

    #[test]
    fn dedicated_draft_rank_reproduces_the_stream() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 40);
        for alignment in [0.3, 0.9] {
            let (mut world, _) = build_head(alignment, 24, PipeInferConfig::dedicated_draft_rank());
            let record = drive(&mut world);
            assert_eq!(
                record.tokens[..24].to_vec(),
                truth[1..25].to_vec(),
                "remote drafting must preserve greedy output (alignment {alignment})"
            );
            assert!(record.draft_requests > 0, "head must send draft requests");
            let node = world.draft_node.as_ref().unwrap();
            assert!(node.requests_served > 0);
        }
    }

    #[test]
    fn low_alignment_triggers_cancellations() {
        let (mut world, _) = build_head(0.1, 24, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(
            record.runs_cancelled > 0,
            "poor speculation must cancel runs"
        );
        assert!(record.acceptance_rate() < 0.5);
    }

    #[test]
    fn high_alignment_accepts_most_drafts() {
        let (mut world, _) = build_head(1.0, 24, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(
            record.acceptance_rate() > 0.9,
            "rate {}",
            record.acceptance_rate()
        );
        assert_eq!(record.runs_cancelled, 0);
    }

    #[test]
    fn record_is_written_to_the_output_handle() {
        let (mut world, out) = build_head(0.8, 12, PipeInferConfig::default());
        let record = drive(&mut world);
        let stored = out.lock().unwrap().clone().unwrap();
        assert_eq!(stored.tokens, record.tokens);
        assert!(stored.prompt_done_at > 0.0);
        assert!(stored.finished_at >= stored.prompt_done_at);
        assert_eq!(stored.accept_times.len(), stored.tokens.len());
    }

    #[test]
    fn ablation_without_continuous_speculation_still_produces_correct_output() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 20);
        let (mut world, _) = build_head(0.8, 16, PipeInferConfig::no_continuous_speculation());
        let record = drive(&mut world);
        assert_eq!(record.tokens[..16].to_vec(), truth[1..17].to_vec());
    }

    #[test]
    fn ablation_without_cancellation_sends_no_cancel_messages() {
        let (mut world, _) = build_head(0.0, 12, PipeInferConfig::no_cancellation());
        let record = drive(&mut world);
        // Runs are still *marked* invalidated in the tracker (results ignored)…
        assert!(record.runs_cancelled > 0);
        // …but no cancellation signal is back-propagated.
        assert_eq!(world.cancel_messages, 0);
        // …and the generation is still correct.
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 14);
        assert_eq!(record.tokens[..12].to_vec(), truth[1..13].to_vec());
    }

    #[test]
    fn cancellation_enabled_sends_cancel_messages_under_poor_alignment() {
        let (mut world, _) = build_head(0.0, 16, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(record.runs_cancelled > 0);
        assert!(
            world.cancel_messages > 0,
            "cancellation signals must be back-propagated when enabled"
        );
    }

    #[test]
    fn partitions_are_recycled_not_leaked() {
        let config = PipeInferConfig {
            n_seq_partitions: 4,
            ..PipeInferConfig::default()
        };
        let (mut world, _) = build_head(0.7, 40, config);
        let record = drive(&mut world);
        assert!(record.tokens.len() >= 40);
        // After completion every partition must be back in the pool or still
        // assigned to an in-flight (now abandoned) run — never double-freed
        // (the pool panics on double free, so reaching this point is the
        // assertion).
        assert!(world.head.partition_pool().available() <= 4);
    }

    #[test]
    fn pipeinfer_launches_fewer_target_runs_than_tokens_when_aligned() {
        let (mut world, _) = build_head(0.95, 32, PipeInferConfig::default());
        let record = drive(&mut world);
        // Speculative batching must amortise runs: far fewer runs than the
        // iterative baseline's one-per-token.
        assert!(
            record.runs_launched < 32,
            "runs {} for 32 tokens",
            record.runs_launched
        );
    }
}
