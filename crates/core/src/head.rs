//! The PipeInfer head rank.
//!
//! Following the paper's deployment (Fig. 3), the head rank hosts the
//! *speculative model* and the sampling/verification logic, while the target
//! model is split across the remaining ranks — the target pipeline is
//! therefore one node shorter than under iterative inference, which is why
//! the paper sometimes measures *lower* TTFT than the iterative baseline.
//! The head owns the whole orchestration described in §IV:
//!
//! * it embeds each batch and hands it to the first target stage,
//! * it drafts speculative micro-batches with its local draft model whenever
//!   probing finds no returned logits waiting (Asynchronous + Continuous
//!   Speculation — the drafting happens while the target pipeline keeps
//!   working),
//! * it dispatches speculative verification runs without waiting for earlier
//!   runs to complete, tracking them in a FIFO ([`RunTracker`]),
//! * it assigns each speculative run a private KV-cache sequence partition
//!   and pipelines the cache-copy / cache-remove commands that implement the
//!   multibuffering "buffer swap" (§IV-C),
//! * it verifies returning runs with the SpecInfer greedy rule, detects
//!   invalidated runs and back-propagates cancellation signals (§IV-D).
//!
//! ## Differences from the paper's implementation
//!
//! Speculative runs here never overlap in token positions (each micro-batch
//! covers a fresh slice of the hypothesis), so the paper's "superfluous run"
//! case cannot arise — only invalidation triggers cancellation.  The paper's
//! mid-evaluation cancellation probing is approximated by checking the
//! cancellation set when a decode transaction arrives at a worker; a cancel
//! signal can therefore save an entire stage evaluation but not a fraction
//! of one.  Both simplifications are conservative (they can only understate
//! PipeInfer's benefit).

use crate::continuous::SpeculationController;
use crate::multibuffer::{SeqPartitionPool, CANONICAL_SEQ};
use crate::run_tracker::{RunInfo, RunTracker};
use crate::PipeInferConfig;
use pi_cluster::{NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::{Batch, Pos, SeqId, Token};
use pi_spec::deploy::RecordHandle;
use pi_spec::message::tags;
use pi_spec::{
    ActivationPayload, CacheOp, Drafter, GenConfig, GenerationRecord, HeadEngine, PipeMsg,
    PipelineRoute, RunId, RunKind,
};
use std::collections::VecDeque;

/// The PipeInfer head rank state machine.
pub struct PipeInferHead {
    route: PipelineRoute,
    engine: Box<dyn HeadEngine>,
    drafter: Box<dyn Drafter>,
    gen_config: GenConfig,
    config: PipeInferConfig,
    controller: SpeculationController,
    pool: SeqPartitionPool,
    tracker: RunTracker,

    /// Accepted tokens (prompt included).  The last element may still be
    /// unevaluated (the pending token).
    accepted: Vec<Token>,
    /// Accepted tokens followed by every dispatched, unresolved speculative
    /// token — the head's current best guess of the generation.
    hypothesis: Vec<Token>,
    /// The target's known-true token for position `accepted.len()`, once the
    /// run covering the last accepted token has returned.
    expected: Option<Token>,
    prompt_done: bool,

    next_run_id: RunId,
    record: GenerationRecord,
    output: RecordHandle,
    finished: bool,
    /// Results produced locally when the head is the only pipeline stage.
    local_results: VecDeque<(RunId, ActivationPayload)>,
}

impl PipeInferHead {
    /// Creates the head rank.
    ///
    /// * `route` — the target-pipeline route; the head is stage 0 and
    ///   typically holds an *empty* layer range (the draft model lives here
    ///   instead).
    /// * `engine` — embedding / output-head / stage-0 evaluation engine.
    /// * `drafter` — the local speculative model front-end.
    /// * `gen_config` / `config` — generation parameters and PipeInfer
    ///   tuning/ablation switches.
    /// * `output` — handle the final [`GenerationRecord`] is written to.
    pub fn new(
        route: PipelineRoute,
        engine: Box<dyn HeadEngine>,
        drafter: Box<dyn Drafter>,
        gen_config: GenConfig,
        config: PipeInferConfig,
        output: RecordHandle,
    ) -> Self {
        let controller = SpeculationController::new(&config, gen_config.confidence_cutoff);
        let pool = SeqPartitionPool::new(config.n_seq_partitions);
        Self {
            route,
            engine,
            drafter,
            gen_config,
            config,
            controller,
            pool,
            tracker: RunTracker::new(),
            accepted: Vec::new(),
            hypothesis: Vec::new(),
            expected: None,
            prompt_done: false,
            next_run_id: 0,
            record: GenerationRecord::default(),
            output,
            finished: false,
            local_results: VecDeque::new(),
        }
    }

    /// The record accumulated so far.
    pub fn record(&self) -> &GenerationRecord {
        &self.record
    }

    /// The sequence-partition pool (exposed for invariants in tests).
    pub fn partition_pool(&self) -> &SeqPartitionPool {
        &self.pool
    }

    // ----- dispatch helpers -------------------------------------------------

    fn make_batch(tokens: &[Token], base_pos: Pos, seq: SeqId) -> Batch {
        let mut batch = Batch::new();
        for (i, &tok) in tokens.iter().enumerate() {
            batch.push(tok, base_pos + i as Pos, vec![seq], true);
        }
        batch
    }

    fn send_cache_op(&mut self, op: CacheOp, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let cost = self.engine.apply_cache_op(&op);
        ctx.elapse(cost);
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tags::CACHE, PipeMsg::Cache(op));
        }
    }

    fn dispatch_run(
        &mut self,
        tokens: Vec<Token>,
        base_pos: Pos,
        kind: RunKind,
        seq: SeqId,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        self.record.runs_launched += 1;
        let batch = Self::make_batch(&tokens, base_pos, seq);
        let (payload, cost) = self.engine.eval_first_stage(&batch);
        ctx.elapse(cost);
        self.tracker
            .push(RunInfo::chain(run_id, kind, &tokens, base_pos, seq));
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(
                next,
                tags::DECODE,
                PipeMsg::Decode {
                    run_id,
                    kind,
                    batch,
                    payload,
                    // Continuous micro-batches are degenerate single-branch
                    // trees; their topology is implicit in batch order.
                    tree: None,
                },
            );
        } else {
            self.local_results.push_back((run_id, payload));
        }
    }

    /// Dispatches a speculative micro-batch covering the next positions of
    /// the hypothesis.
    fn dispatch_spec_chunk(&mut self, tokens: Vec<Token>, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if tokens.is_empty() {
            return;
        }
        let Some(seq) = self.pool.alloc() else {
            // No free partition: drop the speculation (it will be re-drafted
            // later if still useful).
            return;
        };
        // Give the new partition the shared prefix: the latest in-flight
        // speculative partition already holds canonical + all prior
        // speculated entries; fall back to the canonical sequence.
        let src = self
            .tracker
            .latest_speculative_seq()
            .unwrap_or(CANONICAL_SEQ);
        self.send_cache_op(
            CacheOp::SeqCp {
                src,
                dst: seq,
                p0: 0,
                p1: Pos::MAX,
            },
            ctx,
        );
        let base = self.hypothesis.len() as Pos;
        self.record.drafted += tokens.len();
        self.hypothesis.extend(tokens.iter().copied());
        self.dispatch_run(tokens, base, RunKind::Speculative, seq, ctx);
    }

    /// One iteration of continuous speculation: probe-found-nothing ⇒ draft a
    /// micro-batch with the local speculative model and dispatch it.
    /// Returns `true` if a chunk was dispatched.
    fn try_speculate(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        if self.finished || !self.prompt_done {
            return false;
        }
        let ahead = self.hypothesis.len() - self.accepted.len();
        if !self.controller.should_request(
            ahead,
            self.tracker.active_speculative(),
            self.pool.available(),
        ) {
            return false;
        }
        let (chain, cost) = self.drafter.draft(
            &self.hypothesis,
            &[],
            self.controller.batch_size(),
            self.controller.cutoff(),
        );
        ctx.elapse(cost);
        if chain.is_empty() {
            // The draft model is not confident enough under the current
            // cutoff gradient: stop speculating until verification catches
            // up (a run completion resets the cutoff).
            return false;
        }
        self.controller.on_iteration();
        let tokens: Vec<Token> = chain.into_iter().map(|(t, _)| t).collect();
        self.dispatch_spec_chunk(tokens, ctx);
        true
    }

    /// Accepts `token` as the new pending token (correction or anticipated
    /// bonus), records it, and dispatches the non-speculative run evaluating
    /// it.
    fn accept_new_pending(&mut self, token: Token, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.accepted.push(token);
        self.hypothesis = self.accepted.clone();
        if self.prompt_done {
            self.record.tokens.push(token);
            self.record.accept_times.push(ctx.now());
        }
        self.expected = None;
        let base = (self.accepted.len() - 1) as Pos;
        self.dispatch_run(
            vec![token],
            base,
            RunKind::NonSpeculative,
            CANONICAL_SEQ,
            ctx,
        );
    }

    /// Invalidates every in-flight speculative run covering positions at or
    /// after `pos` and back-propagates cancellation signals.
    fn invalidate_from(&mut self, pos: Pos, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let cancelled = self.tracker.invalidate_from(pos);
        self.record.runs_cancelled += cancelled.len();
        if self.config.enable_cancellation && self.route.n_stages() > 1 {
            for run_id in cancelled {
                ctx.send(self.route.last(), tags::CANCEL, PipeMsg::Cancel { run_id });
            }
        }
        self.controller.on_failure_while_idle();
        self.hypothesis.truncate(self.accepted.len());
    }

    /// Handles a newly learned true token `e` for position `accepted.len()`:
    /// either an in-flight speculation already covers it (and will be
    /// verified when it returns), or speculation diverged (invalidate), or
    /// nothing covers it (accept it immediately and keep the pipeline busy
    /// with its non-speculative run).
    fn resolve_expected(&mut self, e: Token, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.expected = Some(e);
        let pos = self.accepted.len();
        if self.hypothesis.len() > pos {
            if self.hypothesis[pos] != e {
                self.invalidate_from(pos as Pos, ctx);
                self.accept_new_pending(e, ctx);
            } else {
                // The token is already speculated and its verification run is
                // in flight — but it is the target's own choice, so it is
                // *known correct* right now.  Accept it immediately (the
                // paper's "anticipated" token, §II-A2): this is what keeps
                // PipeInfer's TTFT at iterative levels.  The covering run
                // will later supply the expectation for the positions after
                // it and its KV entries.
                self.accepted.push(e);
                if self.prompt_done {
                    self.record.tokens.push(e);
                    self.record.accept_times.push(ctx.now());
                }
                self.controller.on_accept();
                self.expected = None;
            }
        } else {
            self.accept_new_pending(e, ctx);
        }
    }

    // ----- result handling --------------------------------------------------

    fn handle_result(
        &mut self,
        run_id: RunId,
        payload: ActivationPayload,
        ctx: &mut dyn NodeCtx<PipeMsg>,
    ) {
        if self.finished {
            return;
        }
        let info = self.tracker.pop_expect(run_id);
        if info.cancelled {
            if info.kind == RunKind::Speculative {
                self.release_partition(info.seq, ctx);
            }
            return;
        }
        let run_tokens = info.tokens();
        // Prompt completion.
        if !self.prompt_done {
            let batch = Self::make_batch(&run_tokens, info.base_pos, info.seq);
            let (greedy, cost) = self.engine.finalize(&batch, &payload, &[]);
            ctx.elapse(cost);
            self.prompt_done = true;
            self.record.prompt_done_at = ctx.now();
            self.accepted = run_tokens.clone();
            // The token sampled from prompt processing is not counted as
            // generated (paper TTFT definition) but becomes the pending
            // token.
            let pending = *greedy.last().expect("prompt batch is non-empty");
            self.accepted.push(pending);
            self.hypothesis = self.accepted.clone();
            let base = (self.accepted.len() - 1) as Pos;
            self.dispatch_run(
                vec![pending],
                base,
                RunKind::NonSpeculative,
                CANONICAL_SEQ,
                ctx,
            );
            return;
        }

        let context = &self.accepted[..info.base_pos as usize];
        let batch = Self::make_batch(&run_tokens, info.base_pos, info.seq);
        let (greedy, cost) = self.engine.finalize(&batch, &payload, context);
        ctx.elapse(cost);

        match info.kind {
            RunKind::NonSpeculative => {
                let e = greedy[0];
                self.resolve_expected(e, ctx);
            }
            RunKind::Speculative => {
                // `exp` holds the target's true token at the verification
                // frontier.  A chunk may start with tokens that were already
                // accepted in anticipation (see `resolve_expected`); those
                // are confirmed rather than re-accepted, and their greedy
                // outputs re-establish the expectation.
                let mut exp = if (info.base_pos as usize) >= self.accepted.len() {
                    self.expected
                } else {
                    None
                };
                let mut confirmed = 0usize;
                let mut mismatch: Option<Token> = None;
                for (j, &tok) in run_tokens.iter().enumerate() {
                    let pos = info.base_pos as usize + j;
                    if pos < self.accepted.len() {
                        debug_assert_eq!(tok, self.accepted[pos], "pre-accepted token mismatch");
                        confirmed += 1;
                        exp = Some(greedy[j]);
                        continue;
                    }
                    let expected_tok = exp.expect(
                        "speculative result arrived before its expectation was established",
                    );
                    if tok == expected_tok {
                        self.accepted.push(tok);
                        self.record.tokens.push(tok);
                        self.record.accept_times.push(ctx.now());
                        confirmed += 1;
                        exp = Some(greedy[j]);
                    } else {
                        mismatch = Some(expected_tok);
                        break;
                    }
                }
                self.record.accepted_drafts += confirmed;
                // Buffer swap: copy the accepted entries into the canonical
                // sequence, then release the partition.
                if confirmed > 0 {
                    self.send_cache_op(
                        CacheOp::SeqCp {
                            src: info.seq,
                            dst: CANONICAL_SEQ,
                            p0: info.base_pos,
                            p1: info.base_pos + confirmed as Pos,
                        },
                        ctx,
                    );
                    self.controller.on_accept();
                }
                self.release_partition(info.seq, ctx);

                match mismatch {
                    None => {
                        let e = exp.expect("non-empty chunk always yields an expectation");
                        self.resolve_expected(e, ctx);
                    }
                    Some(correction) => {
                        // Mismatch inside the chunk: everything speculated
                        // past the accepted prefix is invalid.
                        self.invalidate_from(self.accepted.len() as Pos, ctx);
                        self.accept_new_pending(correction, ctx);
                    }
                }
            }
        }

        if self.record.tokens.len() >= self.gen_config.n_generate {
            self.finish(ctx);
        }
    }

    fn release_partition(&mut self, seq: SeqId, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.send_cache_op(
            CacheOp::SeqRm {
                seq,
                p0: 0,
                p1: Pos::MAX,
            },
            ctx,
        );
        self.pool.free(seq);
    }

    fn drain_local_results(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        while let Some((run_id, payload)) = self.local_results.pop_front() {
            if self.finished {
                break;
            }
            self.handle_result(run_id, payload, ctx);
        }
    }

    fn finish(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if self.finished {
            return;
        }
        self.record.finished_at = ctx.now();
        if let Some(next) = self.route.next_after(self.route.head()) {
            ctx.send(next, tags::SHUTDOWN, PipeMsg::Shutdown);
        }
        *self.output.lock().unwrap() = Some(self.record.clone());
        self.finished = true;
    }
}

impl NodeBehavior<PipeMsg> for PipeInferHead {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        let prompt = self.gen_config.prompt.clone();
        assert!(!prompt.is_empty(), "prompt must not be empty");
        self.dispatch_run(prompt, 0, RunKind::NonSpeculative, CANONICAL_SEQ, ctx);
        self.drain_local_results(ctx);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let PipeMsg::RunResult { run_id, payload } = msg {
            self.handle_result(run_id, payload, ctx);
        }
        self.drain_local_results(ctx);
    }

    fn on_idle(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        // "The idle state is determined by probing for an incoming logits
        // transfer transaction … otherwise, the node generates another
        // speculation tree" (§IV-B).
        let worked = self.try_speculate(ctx);
        self.drain_local_results(ctx);
        worked && !self.finished
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{ModelConfig, OracleDraft, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_spec::drafter::OracleDrafter;
    use pi_spec::engine::{SimHeadEngine, SimStageEngine};
    use pi_tensor::QuantKind;
    use std::sync::{Arc, Mutex};

    /// A test context that collects sent messages.
    struct TestCtx {
        rank: Rank,
        sent: Vec<(Rank, PipeMsg)>,
        now: f64,
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            self.rank
        }
        fn world_size(&self) -> usize {
            2
        }
        fn now(&self) -> f64 {
            self.now
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.now += seconds;
        }
    }

    const ORACLE_SEED: u64 = 77;
    const VOCAB: u32 = 32000;

    /// A two-rank test world: rank 0 = head (drafts locally, no layers),
    /// rank 1 = a single pipeline worker holding every target layer.
    struct TestWorld {
        head: PipeInferHead,
        worker: pi_spec::PipelineWorker,
        cancel_messages: usize,
    }

    fn build_head(
        alignment: f64,
        n_generate: usize,
        config: PipeInferConfig,
    ) -> (TestWorld, RecordHandle) {
        let output: RecordHandle = Arc::new(Mutex::new(None));
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let route = PipelineRoute::baseline(2);
        let target_cost = ModelCost::new(ModelConfig::llama2_70b(), QuantKind::Q3K);
        let node = NodeSpec::xeon_gold_6140_dual();
        let drafter = OracleDrafter::new(
            oracle,
            OracleDraft::new(ORACLE_SEED + 1, VOCAB, alignment),
            CostModel::new(node.clone()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        );
        let head = PipeInferHead::new(
            route.clone(),
            Box::new(SimHeadEngine::new(
                CostModel::new(node.clone()),
                target_cost.clone(),
                0,
                oracle,
            )),
            Box::new(drafter),
            GenConfig::small_test(vec![3, 1, 4, 1, 5], n_generate),
            config,
            output.clone(),
        );
        let worker = pi_spec::PipelineWorker::new(
            1,
            route,
            Box::new(SimStageEngine::new(CostModel::new(node), target_cost, 80)),
        );
        (
            TestWorld {
                head,
                worker,
                cancel_messages: 0,
            },
            output,
        )
    }

    /// Runs the world to completion by shuttling messages round by round,
    /// letting the head perform idle speculation between rounds.
    fn drive(world: &mut TestWorld) -> GenerationRecord {
        let mut head_ctx = TestCtx {
            rank: 0,
            sent: Vec::new(),
            now: 0.0,
        };
        let mut worker_ctx = TestCtx {
            rank: 1,
            sent: Vec::new(),
            now: 0.0,
        };
        world.head.on_start(&mut head_ctx);
        let mut safety = 0;
        while !world.head.is_finished() {
            safety += 1;
            assert!(safety < 50_000, "head did not converge");
            // Let the head speculate while the pipeline is busy (a couple of
            // probes per round keeps several runs in flight).
            for _ in 0..2 {
                if !world.head.on_idle(&mut head_ctx) {
                    break;
                }
            }
            // Deliver the head's outgoing traffic to the worker.
            let outgoing: Vec<(Rank, PipeMsg)> = head_ctx.sent.drain(..).collect();
            let mut progressed = false;
            for (dst, msg) in outgoing {
                if matches!(msg, PipeMsg::Cancel { .. }) {
                    world.cancel_messages += 1;
                }
                if dst == 1 {
                    world.worker.on_message(0, 0, msg, &mut worker_ctx);
                    progressed = true;
                }
            }
            // Deliver the worker's results back to the head.
            let results: Vec<(Rank, PipeMsg)> = worker_ctx.sent.drain(..).collect();
            for (dst, msg) in results {
                if dst == 0 && !world.head.is_finished() {
                    head_ctx.now += 1e-4;
                    world.head.on_message(1, 0, msg, &mut head_ctx);
                    progressed = true;
                }
            }
            if !progressed && !world.head.on_idle(&mut head_ctx) {
                panic!("deadlock: head idle with nothing in flight");
            }
        }
        world.head.record().clone()
    }

    #[test]
    fn output_matches_target_continuation_for_all_alignments() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 40);
        for alignment in [0.0, 0.5, 0.9, 1.0] {
            let (mut world, _) = build_head(alignment, 24, PipeInferConfig::default());
            let record = drive(&mut world);
            assert!(record.tokens.len() >= 24, "alignment {alignment}");
            assert_eq!(
                record.tokens[..24].to_vec(),
                truth[1..25].to_vec(),
                "PipeInfer must preserve greedy output exactly (alignment {alignment})"
            );
        }
    }

    #[test]
    fn low_alignment_triggers_cancellations() {
        let (mut world, _) = build_head(0.1, 24, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(
            record.runs_cancelled > 0,
            "poor speculation must cancel runs"
        );
        assert!(record.acceptance_rate() < 0.5);
    }

    #[test]
    fn high_alignment_accepts_most_drafts() {
        let (mut world, _) = build_head(1.0, 24, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(
            record.acceptance_rate() > 0.9,
            "rate {}",
            record.acceptance_rate()
        );
        assert_eq!(record.runs_cancelled, 0);
    }

    #[test]
    fn record_is_written_to_the_output_handle() {
        let (mut world, out) = build_head(0.8, 12, PipeInferConfig::default());
        let record = drive(&mut world);
        let stored = out.lock().unwrap().clone().unwrap();
        assert_eq!(stored.tokens, record.tokens);
        assert!(stored.prompt_done_at > 0.0);
        assert!(stored.finished_at >= stored.prompt_done_at);
        assert_eq!(stored.accept_times.len(), stored.tokens.len());
    }

    #[test]
    fn ablation_without_continuous_speculation_still_produces_correct_output() {
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 20);
        let (mut world, _) = build_head(0.8, 16, PipeInferConfig::no_continuous_speculation());
        let record = drive(&mut world);
        assert_eq!(record.tokens[..16].to_vec(), truth[1..17].to_vec());
    }

    #[test]
    fn ablation_without_cancellation_sends_no_cancel_messages() {
        let (mut world, _) = build_head(0.0, 12, PipeInferConfig::no_cancellation());
        let record = drive(&mut world);
        // Runs are still *marked* invalidated in the tracker (results ignored)…
        assert!(record.runs_cancelled > 0);
        // …but no cancellation signal is back-propagated.
        assert_eq!(world.cancel_messages, 0);
        // …and the generation is still correct.
        let oracle = OracleTarget::new(ORACLE_SEED, VOCAB);
        let truth = oracle.generate(&[3, 1, 4, 1, 5], 14);
        assert_eq!(record.tokens[..12].to_vec(), truth[1..13].to_vec());
    }

    #[test]
    fn cancellation_enabled_sends_cancel_messages_under_poor_alignment() {
        let (mut world, _) = build_head(0.0, 16, PipeInferConfig::default());
        let record = drive(&mut world);
        assert!(record.runs_cancelled > 0);
        assert!(
            world.cancel_messages > 0,
            "cancellation signals must be back-propagated when enabled"
        );
    }

    #[test]
    fn partitions_are_recycled_not_leaked() {
        let config = PipeInferConfig {
            n_seq_partitions: 4,
            ..PipeInferConfig::default()
        };
        let (mut world, _) = build_head(0.7, 40, config);
        let record = drive(&mut world);
        assert!(record.tokens.len() >= 40);
        // After completion every partition must be back in the pool or still
        // assigned to an in-flight (now abandoned) run — never double-freed
        // (the pool panics on double free, so reaching this point is the
        // assertion).
        assert!(world.head.partition_pool().available() <= 4);
    }

    #[test]
    fn pipeinfer_launches_fewer_target_runs_than_tokens_when_aligned() {
        let (mut world, _) = build_head(0.95, 32, PipeInferConfig::default());
        let record = drive(&mut world);
        // Speculative batching must amortise runs: far fewer runs than the
        // iterative baseline's one-per-token.
        assert!(
            record.runs_launched < 32,
            "runs {} for 32 tokens",
            record.runs_launched
        );
    }
}
