//! The dedicated speculative (draft) rank.
//!
//! PipeInfer moves the speculative model onto its own rank so drafting runs
//! concurrently with target-pipeline inference (Asynchronous Speculation,
//! §IV-A).  The rank is a simple request/response server: the head sends its
//! current hypothesis and a micro-batch size, the draft rank runs its model
//! and returns the proposed tokens with their confidences.

use pi_cluster::{NodeBehavior, NodeCtx, Rank, Tag};
use pi_spec::message::tags;
use pi_spec::{Drafter, PipeMsg};

/// The draft rank state machine.
pub struct DraftNode {
    head_rank: Rank,
    drafter: Box<dyn Drafter>,
    finished: bool,
    /// Number of draft requests served.
    pub requests_served: u64,
    /// Total tokens drafted.
    pub tokens_drafted: u64,
}

impl DraftNode {
    /// Creates the draft rank; responses are sent to `head_rank`.
    pub fn new(head_rank: Rank, drafter: Box<dyn Drafter>) -> Self {
        Self {
            head_rank,
            drafter,
            finished: false,
            requests_served: 0,
            tokens_drafted: 0,
        }
    }
}

impl NodeBehavior<PipeMsg> for DraftNode {
    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        match msg {
            PipeMsg::DraftRequest {
                context,
                max_tokens,
                confidence_cutoff,
            } => {
                let (tokens, cost) =
                    self.drafter
                        .draft(&context, &[], max_tokens, confidence_cutoff);
                ctx.elapse(cost);
                self.requests_served += 1;
                self.tokens_drafted += tokens.len() as u64;
                ctx.send(
                    self.head_rank,
                    tags::DRAFT,
                    PipeMsg::DraftResponse {
                        tokens,
                        context_len: context.len(),
                    },
                );
            }
            PipeMsg::Shutdown => {
                self.finished = true;
            }
            // The draft rank is not part of the target pipeline; any other
            // traffic is a routing mistake and is ignored.
            _ => {}
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{ModelConfig, OracleDraft, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_spec::drafter::OracleDrafter;
    use pi_tensor::QuantKind;

    struct TestCtx {
        sent: Vec<(Rank, PipeMsg)>,
        elapsed: f64,
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            1
        }
        fn world_size(&self) -> usize {
            4
        }
        fn now(&self) -> f64 {
            0.0
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.elapsed += seconds;
        }
    }

    fn node(alignment: f64) -> DraftNode {
        let drafter = OracleDrafter::new(
            OracleTarget::new(1, 32000),
            OracleDraft::new(2, 32000, alignment),
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        );
        DraftNode::new(0, Box::new(drafter))
    }

    #[test]
    fn serves_draft_requests() {
        let mut n = node(0.9);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            elapsed: 0.0,
        };
        n.on_message(
            0,
            tags::DRAFT,
            PipeMsg::DraftRequest {
                context: vec![1, 2, 3, 4],
                max_tokens: 3,
                confidence_cutoff: 0.0,
            },
            &mut ctx,
        );
        assert_eq!(n.requests_served, 1);
        assert!(n.tokens_drafted >= 1 && n.tokens_drafted <= 3);
        assert!(ctx.elapsed > 0.0, "draft cost must be charged");
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 0);
        match &ctx.sent[0].1 {
            PipeMsg::DraftResponse {
                tokens,
                context_len,
            } => {
                assert_eq!(*context_len, 4);
                assert!(!tokens.is_empty());
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn shutdown_finishes_the_rank() {
        let mut n = node(0.5);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            elapsed: 0.0,
        };
        assert!(!n.is_finished());
        n.on_message(0, tags::SHUTDOWN, PipeMsg::Shutdown, &mut ctx);
        assert!(n.is_finished());
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn ignores_pipeline_traffic() {
        let mut n = node(0.5);
        let mut ctx = TestCtx {
            sent: Vec::new(),
            elapsed: 0.0,
        };
        n.on_message(0, tags::CANCEL, PipeMsg::Cancel { run_id: 1 }, &mut ctx);
        assert!(ctx.sent.is_empty());
        assert!(!n.is_finished());
    }
}
