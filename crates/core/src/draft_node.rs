//! The dedicated speculative (draft) rank.
//!
//! PipeInfer moves the speculative model onto its own rank so drafting runs
//! concurrently with target-pipeline inference (Asynchronous Speculation,
//! §IV-A; the paper's Fig. 3 hosts it on rank 1).  The rank is a
//! request/response server: the head sends its current hypothesis plus a
//! width×depth tree shape, the draft rank runs its model and returns the
//! proposed token tree with per-node confidences and topology.
//!
//! Requests are **not** served in arrival order.  Incoming requests are
//! buffered and answered from the idle loop, and the rank only ever serves
//! the *latest* pending request: any earlier buffered request speculates
//! from a hypothesis the head has since extended or abandoned, so serving it
//! FIFO would burn draft-model time on an answer the head is guaranteed to
//! discard.  An out-of-band [`PipeMsg::DraftCancel`] raises a high-water
//! mark that additionally drops stale requests still in flight on the wire
//! (the head sends it when an invalidation makes a pending hypothesis
//! worthless).  Every dropped request counts as a saved draft evaluation in
//! the driver statistics.

use pi_cluster::{trace_if, EventKind, NodeBehavior, NodeCtx, Rank, Tag};
use pi_model::Token;
use pi_spec::message::tags;
use pi_spec::{Drafter, PipeMsg, TreeTopology};
use std::collections::VecDeque;

/// Orphan detection window: with no traffic from the head for this long the
/// draft rank shuts itself down.  Fault-free runs always end with an explicit
/// [`PipeMsg::Shutdown`] long before this, but a fault schedule can drop the
/// shutdown (or every head message) on the wire — without the self-shutdown
/// the rank would block forever and turn a drop schedule into a deadlock.
/// Virtual seconds under the simulator (where the deadline is driven by
/// [`NodeCtx::request_wake`], honored only while faults are armed),
/// wall-clock under the threaded driver.
const ORPHAN_SHUTDOWN_S: f64 = 30.0;

/// One buffered draft request.
#[derive(Debug, Clone)]
struct PendingDraft {
    request_id: u64,
    context: Vec<Token>,
    width: usize,
    max_tokens: usize,
    confidence_cutoff: f32,
}

/// The draft rank state machine.
pub struct DraftNode {
    head_rank: Rank,
    drafter: Box<dyn Drafter>,
    /// Buffered requests, oldest first; only the newest is ever served.
    pending: VecDeque<PendingDraft>,
    /// Highest request id cancelled by the head; requests at or below it are
    /// dropped even if they arrive after the cancellation signal.
    cancelled_up_to: Option<u64>,
    finished: bool,
    /// Time of the last message from the head (orphan-detection clock).
    last_activity: f64,
    /// Number of draft requests served.
    pub requests_served: u64,
    /// Number of draft requests dropped unserved (superseded by a newer
    /// hypothesis or cancelled by the head).
    pub requests_dropped: u64,
    /// Total tokens drafted.
    pub tokens_drafted: u64,
}

impl DraftNode {
    /// Creates the draft rank; responses are sent to `head_rank`.
    pub fn new(head_rank: Rank, drafter: Box<dyn Drafter>) -> Self {
        Self {
            head_rank,
            drafter,
            pending: VecDeque::new(),
            cancelled_up_to: None,
            finished: false,
            last_activity: 0.0,
            requests_served: 0,
            requests_dropped: 0,
            tokens_drafted: 0,
        }
    }

    fn drop_stale(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        if let Some(up_to) = self.cancelled_up_to {
            let before = self.pending.len();
            self.pending.retain(|p| p.request_id > up_to);
            let dropped = (before - self.pending.len()) as u64;
            if dropped > 0 {
                self.requests_dropped += dropped;
                ctx.record_cancellation_saved(dropped);
                trace_if(ctx, || EventKind::DraftDropped { n: dropped as u32 });
            }
        }
    }

    /// Serves the newest pending request, dropping every older one.
    fn serve_latest(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        self.drop_stale(ctx);
        let Some(req) = self.pending.pop_back() else {
            return false;
        };
        let superseded = self.pending.len() as u64;
        if superseded > 0 {
            // Older hypotheses are stale by construction: the head only
            // re-requests after extending or correcting its hypothesis.
            self.requests_dropped += superseded;
            ctx.record_cancellation_saved(superseded);
            trace_if(ctx, || EventKind::DraftDropped {
                n: superseded as u32,
            });
            self.pending.clear();
        }
        let (tree, cost) = self.drafter.draft_tree(
            &req.context,
            &[],
            req.width,
            req.max_tokens,
            req.confidence_cutoff,
        );
        ctx.elapse(cost);
        trace_if(ctx, || EventKind::DraftServe {
            request: req.request_id,
            n_nodes: tree.len() as u32,
            dur: cost,
        });
        self.requests_served += 1;
        self.tokens_drafted += tree.len() as u64;
        let nodes: Vec<(Token, f32)> = tree.nodes().iter().map(|n| (n.token, n.prob)).collect();
        let topology = TreeTopology::from_tree(&tree);
        ctx.send(
            self.head_rank,
            tags::DRAFT,
            PipeMsg::DraftResponse {
                request_id: req.request_id,
                nodes,
                topology,
                context_len: req.context.len(),
            },
        );
        true
    }
}

impl NodeBehavior<PipeMsg> for DraftNode {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.last_activity = ctx.now();
        ctx.request_wake(self.last_activity + ORPHAN_SHUTDOWN_S);
    }

    fn on_message(&mut self, _src: Rank, _tag: Tag, msg: PipeMsg, ctx: &mut dyn NodeCtx<PipeMsg>) {
        self.last_activity = ctx.now();
        ctx.request_wake(self.last_activity + ORPHAN_SHUTDOWN_S);
        match msg {
            PipeMsg::DraftRequest {
                request_id,
                context,
                width,
                max_tokens,
                confidence_cutoff,
            } => {
                self.pending.push_back(PendingDraft {
                    request_id,
                    context,
                    width,
                    max_tokens,
                    confidence_cutoff,
                });
                // Served from the idle loop so that cancellations and newer
                // requests already queued behind this message win first.
                self.drop_stale(ctx);
            }
            PipeMsg::DraftCancel { up_to } => {
                self.cancelled_up_to = Some(self.cancelled_up_to.map_or(up_to, |c| c.max(up_to)));
                self.drop_stale(ctx);
            }
            PipeMsg::Shutdown => {
                self.finished = true;
            }
            // The draft rank is not part of the target pipeline; any other
            // traffic is a routing mistake and is ignored.
            _ => {}
        }
    }

    fn on_idle(&mut self, ctx: &mut dyn NodeCtx<PipeMsg>) -> bool {
        if self.finished {
            return false;
        }
        if self.serve_latest(ctx) {
            ctx.request_wake(ctx.now() + ORPHAN_SHUTDOWN_S);
            return true;
        }
        if ctx.now() >= self.last_activity + ORPHAN_SHUTDOWN_S {
            // Nothing from the head for the whole window: it is gone or
            // unreachable.  Finish so the run halts cleanly instead of
            // deadlocking on a shutdown that will never arrive.
            self.finished = true;
            return false;
        }
        ctx.request_wake(self.last_activity + ORPHAN_SHUTDOWN_S);
        false
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_model::{ModelConfig, OracleDraft, OracleTarget};
    use pi_perf::{CostModel, ModelCost, NodeSpec};
    use pi_spec::drafter::OracleDrafter;
    use pi_tensor::QuantKind;

    struct TestCtx {
        sent: Vec<(Rank, PipeMsg)>,
        elapsed: f64,
        saved: u64,
    }
    impl TestCtx {
        fn new() -> Self {
            Self {
                sent: Vec::new(),
                elapsed: 0.0,
                saved: 0,
            }
        }
    }
    impl NodeCtx<PipeMsg> for TestCtx {
        fn rank(&self) -> Rank {
            1
        }
        fn world_size(&self) -> usize {
            4
        }
        fn now(&self) -> f64 {
            0.0
        }
        fn send(&mut self, dst: Rank, _tag: Tag, msg: PipeMsg) {
            self.sent.push((dst, msg));
        }
        fn elapse(&mut self, seconds: f64) {
            self.elapsed += seconds;
        }
        fn record_cancellation_saved(&mut self, n: u64) {
            self.saved += n;
        }
    }

    fn node(alignment: f64) -> DraftNode {
        let drafter = OracleDrafter::new(
            OracleTarget::new(1, 32000),
            OracleDraft::new(2, 32000, alignment),
            CostModel::new(NodeSpec::xeon_gold_6140_dual()),
            ModelCost::new(ModelConfig::tinyllama_1_1b(), QuantKind::Q4K),
        );
        DraftNode::new(0, Box::new(drafter))
    }

    fn request(id: u64, context: Vec<Token>, width: usize, max_tokens: usize) -> PipeMsg {
        PipeMsg::DraftRequest {
            request_id: id,
            context,
            width,
            max_tokens,
            confidence_cutoff: 0.0,
        }
    }

    #[test]
    fn serves_draft_requests_from_the_idle_loop() {
        let mut n = node(0.9);
        let mut ctx = TestCtx::new();
        n.on_message(0, tags::DRAFT, request(1, vec![1, 2, 3, 4], 1, 3), &mut ctx);
        assert!(ctx.sent.is_empty(), "requests are buffered, not served");
        assert!(n.on_idle(&mut ctx));
        assert_eq!(n.requests_served, 1);
        assert!(n.tokens_drafted >= 1 && n.tokens_drafted <= 3);
        assert!(ctx.elapsed > 0.0, "draft cost must be charged");
        assert_eq!(ctx.sent.len(), 1);
        assert_eq!(ctx.sent[0].0, 0);
        match &ctx.sent[0].1 {
            PipeMsg::DraftResponse {
                request_id,
                nodes,
                topology,
                context_len,
            } => {
                assert_eq!(*request_id, 1);
                assert_eq!(*context_len, 4);
                assert!(!nodes.is_empty());
                assert_eq!(topology.parents.len(), nodes.len());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(!n.on_idle(&mut ctx), "queue drained");
    }

    #[test]
    fn tree_requests_return_topology_with_runner_up_roots() {
        let mut n = node(0.5);
        let mut ctx = TestCtx::new();
        n.on_message(0, tags::DRAFT, request(3, vec![5, 6, 7], 3, 4), &mut ctx);
        assert!(n.on_idle(&mut ctx));
        match &ctx.sent[0].1 {
            PipeMsg::DraftResponse {
                nodes, topology, ..
            } => {
                let roots = topology.parents.iter().filter(|p| p.is_none()).count();
                assert!(roots >= 2, "width 3 must hedge with extra roots");
                assert!(nodes.len() < 4 + 3, "at most depth + width - 1 nodes");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn only_the_latest_pending_request_is_served() {
        let mut n = node(0.9);
        let mut ctx = TestCtx::new();
        n.on_message(0, tags::DRAFT, request(1, vec![1], 1, 2), &mut ctx);
        n.on_message(0, tags::DRAFT, request(2, vec![1, 9], 1, 2), &mut ctx);
        n.on_message(0, tags::DRAFT, request(3, vec![1, 9, 9], 1, 2), &mut ctx);
        assert!(n.on_idle(&mut ctx));
        assert_eq!(n.requests_served, 1);
        assert_eq!(n.requests_dropped, 2, "older hypotheses are stale");
        assert_eq!(ctx.saved, 2);
        assert_eq!(ctx.sent.len(), 1);
        match &ctx.sent[0].1 {
            PipeMsg::DraftResponse {
                request_id,
                context_len,
                ..
            } => {
                assert_eq!(*request_id, 3);
                assert_eq!(*context_len, 3);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn cancellation_drops_pending_and_late_arriving_requests() {
        let mut n = node(0.9);
        let mut ctx = TestCtx::new();
        n.on_message(0, tags::DRAFT, request(4, vec![1], 1, 2), &mut ctx);
        // Out-of-band cancel overtakes request 5 on the wire.
        n.on_message(0, tags::CANCEL, PipeMsg::DraftCancel { up_to: 5 }, &mut ctx);
        assert_eq!(n.requests_dropped, 1, "buffered request 4 dropped");
        n.on_message(0, tags::DRAFT, request(5, vec![1, 2], 1, 2), &mut ctx);
        assert_eq!(n.requests_dropped, 2, "late request 5 dropped on arrival");
        assert!(!n.on_idle(&mut ctx), "nothing left to serve");
        assert_eq!(n.requests_served, 0);
        assert_eq!(ctx.saved, 2);
        // A fresh request above the high-water mark is served normally.
        n.on_message(0, tags::DRAFT, request(6, vec![1, 2, 3], 1, 2), &mut ctx);
        assert!(n.on_idle(&mut ctx));
        assert_eq!(n.requests_served, 1);
    }

    #[test]
    fn shutdown_finishes_the_rank() {
        let mut n = node(0.5);
        let mut ctx = TestCtx::new();
        assert!(!n.is_finished());
        n.on_message(0, tags::SHUTDOWN, PipeMsg::Shutdown, &mut ctx);
        assert!(n.is_finished());
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn ignores_pipeline_traffic() {
        let mut n = node(0.5);
        let mut ctx = TestCtx::new();
        n.on_message(0, tags::CANCEL, PipeMsg::Cancel { run_id: 1 }, &mut ctx);
        assert!(ctx.sent.is_empty());
        assert!(!n.is_finished());
    }
}
