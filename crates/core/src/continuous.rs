//! Continuous-speculation control (§IV-B).
//!
//! The head keeps the dedicated draft rank busy by issuing micro-batch draft
//! requests whenever verification work would otherwise leave it idle.  The
//! [`SpeculationController`] decides *whether* another request should be
//! issued, with *what* confidence cutoff, and in *what shape*:
//!
//! * the paper's reactive speculation gradient — every successful
//!   continuous-speculation iteration raises the cutoff by the *recovery
//!   factor* (so speculation gets harder the further it runs ahead), a
//!   completed accepted run resets it, and a failed speculation with nothing
//!   waiting to be sampled lowers it by the *decay factor* (so an idle
//!   system speculates more aggressively);
//! * with `micro_width > 1`, a per-iteration **width×depth tree shape**
//!   chosen by the same windowed-acceptance expected-value model the tree
//!   strategy uses ([`pi_spec::AdaptiveShape`]): deep chains while the draft
//!   model tracks the target, wide shallow hedges when it struggles, always
//!   inside the `micro_batch` node budget.  Width 1 degenerates to the
//!   pre-tree chain micro-batches exactly.

use crate::PipeInferConfig;
use pi_spec::{AdaptiveShape, TreeConfig};

/// Starting acceptance estimate of the shape model: optimistic, so a fresh
/// generation begins with a pure chain and only widens on evidence (matching
/// `pi_spec::tree`'s prior).
const SHAPE_PRIOR: f64 = 0.8;

/// Reactive continuous-speculation controller.
#[derive(Debug, Clone)]
pub struct SpeculationController {
    base_cutoff: f32,
    cutoff: f32,
    recovery: f32,
    decay: f32,
    micro_batch: usize,
    max_ahead: usize,
    continuous: bool,
    ablation_batch: usize,
    /// Present iff `micro_width > 1`: the windowed acceptance model re-
    /// splitting the micro-batch budget between width and depth.
    shape: Option<AdaptiveShape>,
}

impl SpeculationController {
    /// Creates a controller from the run configuration and the base
    /// speculation cutoff.
    pub fn new(config: &PipeInferConfig, base_cutoff: f32) -> Self {
        let shape = (config.micro_width > 1).then(|| {
            AdaptiveShape::new(
                TreeConfig {
                    max_width: config.micro_width,
                    max_depth: config.micro_batch.max(1),
                    window: config.shape_window.max(1),
                },
                config.micro_batch.max(1),
                SHAPE_PRIOR,
            )
        });
        Self {
            base_cutoff,
            cutoff: base_cutoff,
            recovery: config.recovery_factor,
            decay: config.decay_factor,
            micro_batch: config.micro_batch.max(1),
            max_ahead: config.max_speculation_ahead.max(1),
            continuous: config.enable_continuous_speculation,
            ablation_batch: config.ablation_batch.max(1),
            shape,
        }
    }

    /// The current confidence cutoff to send with the next draft request.
    pub fn cutoff(&self) -> f32 {
        self.cutoff
    }

    /// The number of tokens to request per draft.
    pub fn batch_size(&self) -> usize {
        if self.continuous {
            self.micro_batch
        } else {
            self.ablation_batch
        }
    }

    /// The `(width, depth)` of the next micro-batch: `(1, batch_size())`
    /// for chain micro-batches, the adaptive shape model's argmax inside
    /// the node budget otherwise.
    pub fn shape(&self) -> (usize, usize) {
        match &self.shape {
            Some(model) if self.continuous => model.shape(),
            _ => (1, self.batch_size()),
        }
    }

    /// Records one resolved speculative run's outcome for the shape model:
    /// the accepted prefix of the *primary spine* out of a tree spanning
    /// `span` positions.  A no-op for chain micro-batches.
    pub fn observe_shape(&mut self, spine_accepted: usize, span: usize) {
        if let Some(model) = &mut self.shape {
            model.observe(spine_accepted, span);
        }
    }

    /// Whether another draft request should be issued right now.
    ///
    /// * `speculated_ahead` — tokens speculated and dispatched but not yet
    ///   resolved.
    /// * `active_speculative_runs` — non-cancelled speculative runs in
    ///   flight.
    /// * `partitions_available` — free KV sequence partitions.
    pub fn should_request(
        &self,
        speculated_ahead: usize,
        active_speculative_runs: usize,
        partitions_available: usize,
    ) -> bool {
        if partitions_available == 0 {
            return false;
        }
        if !self.continuous {
            // Ablation: a single speculation burst at a time.
            return active_speculative_runs == 0 && speculated_ahead == 0;
        }
        if speculated_ahead >= self.max_ahead {
            return false;
        }
        // A cutoff above 1.0 means no token can satisfy it: the gradient has
        // climbed far enough that further speculation is judged wasteful.
        self.cutoff <= 1.0
    }

    /// Called after each dispatched continuous-speculation iteration: raises
    /// the cutoff by the recovery factor.
    pub fn on_iteration(&mut self) {
        if self.continuous {
            self.cutoff = (self.cutoff + self.recovery).min(1.5);
        }
    }

    /// Called when a run completes with at least one accepted token: resets
    /// the cutoff to its base value.
    pub fn on_accept(&mut self) {
        self.cutoff = self.base_cutoff;
    }

    /// Called when speculation fails (an invalidation) while nothing is
    /// waiting to be sampled: lowers the cutoff by the decay factor.
    pub fn on_failure_while_idle(&mut self) {
        self.cutoff = (self.cutoff - self.decay).max(0.05);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> SpeculationController {
        SpeculationController::new(&PipeInferConfig::default(), 0.4)
    }

    #[test]
    fn cutoff_rises_with_iterations_and_resets_on_accept() {
        let mut c = controller();
        let start = c.cutoff();
        c.on_iteration();
        c.on_iteration();
        assert!(c.cutoff() > start);
        c.on_accept();
        assert!((c.cutoff() - start).abs() < 1e-6);
    }

    #[test]
    fn cutoff_decays_on_idle_failure_with_floor() {
        let mut c = controller();
        for _ in 0..100 {
            c.on_failure_while_idle();
        }
        assert!(c.cutoff() >= 0.05);
        assert!(c.cutoff() < 0.4);
    }

    #[test]
    fn requests_stop_when_partitions_exhausted() {
        let c = controller();
        assert!(!c.should_request(0, 0, 0));
        assert!(c.should_request(0, 0, 4));
    }

    #[test]
    fn requests_stop_at_max_ahead() {
        let cfg = PipeInferConfig {
            max_speculation_ahead: 4,
            ..PipeInferConfig::default()
        };
        let c = SpeculationController::new(&cfg, 0.4);
        assert!(c.should_request(3, 2, 8));
        assert!(!c.should_request(4, 2, 8));
    }

    #[test]
    fn requests_stop_when_cutoff_exceeds_one() {
        let cfg = PipeInferConfig {
            recovery_factor: 0.3,
            ..PipeInferConfig::default()
        };
        let mut c = SpeculationController::new(&cfg, 0.9);
        assert!(c.should_request(0, 0, 4));
        c.on_iteration();
        assert!(!c.should_request(1, 1, 4), "cutoff {}", c.cutoff());
    }

    #[test]
    fn ablation_mode_allows_single_burst_with_larger_batch() {
        let cfg = PipeInferConfig::no_continuous_speculation();
        let c = SpeculationController::new(&cfg, 0.4);
        assert_eq!(c.batch_size(), cfg.ablation_batch);
        assert!(c.should_request(0, 0, 8));
        assert!(!c.should_request(0, 1, 8));
        assert!(!c.should_request(3, 0, 8));
    }

    #[test]
    fn continuous_mode_uses_micro_batches() {
        let c = controller();
        assert_eq!(c.batch_size(), PipeInferConfig::default().micro_batch);
    }

    #[test]
    fn width_one_shape_is_the_plain_chain() {
        let c = controller();
        assert_eq!(c.shape(), (1, c.batch_size()));
        let abl = SpeculationController::new(&PipeInferConfig::no_continuous_speculation(), 0.4);
        assert_eq!(abl.shape(), (1, abl.batch_size()));
    }

    #[test]
    fn tree_micro_shape_adapts_within_the_budget() {
        let cfg = PipeInferConfig::tree_micro();
        let mut c = SpeculationController::new(&cfg, 0.4);
        // Optimistic prior: starts as a pure chain at full depth.
        assert_eq!(c.shape(), (1, cfg.micro_batch));
        // Sustained rejection widens while preserving the node budget.
        for _ in 0..2 * cfg.shape_window {
            c.observe_shape(0, cfg.micro_batch);
        }
        let (w, d) = c.shape();
        assert!(w > 1, "width must grow under rejection, got {w}");
        assert!(w <= cfg.micro_width);
        assert_eq!(w + d - 1, cfg.micro_batch, "budget must be preserved");
        // Recovery narrows back to the chain.
        for _ in 0..2 * cfg.shape_window {
            c.observe_shape(cfg.micro_batch, cfg.micro_batch);
        }
        assert_eq!(c.shape(), (1, cfg.micro_batch));
    }

    #[test]
    fn observe_shape_is_a_no_op_for_chains() {
        let mut c = controller();
        for _ in 0..16 {
            c.observe_shape(0, 2);
        }
        assert_eq!(c.shape(), (1, c.batch_size()));
    }
}
