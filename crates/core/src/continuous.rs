//! Continuous-speculation control (§IV-B).
//!
//! The head keeps the dedicated draft rank busy by issuing micro-batch draft
//! requests whenever verification work would otherwise leave it idle.  The
//! [`SpeculationController`] decides *whether* another request should be
//! issued and with *what* confidence cutoff, implementing the paper's
//! reactive speculation: every successful continuous-speculation iteration
//! raises the cutoff by the *recovery factor* (so speculation gets harder the
//! further it runs ahead), a completed accepted run resets it, and a failed
//! speculation with nothing waiting to be sampled lowers it by the *decay
//! factor* (so an idle system speculates more aggressively).

use crate::PipeInferConfig;

/// Reactive continuous-speculation controller.
#[derive(Debug, Clone)]
pub struct SpeculationController {
    base_cutoff: f32,
    cutoff: f32,
    recovery: f32,
    decay: f32,
    micro_batch: usize,
    max_ahead: usize,
    continuous: bool,
    ablation_batch: usize,
}

impl SpeculationController {
    /// Creates a controller from the run configuration and the base
    /// speculation cutoff.
    pub fn new(config: &PipeInferConfig, base_cutoff: f32) -> Self {
        Self {
            base_cutoff,
            cutoff: base_cutoff,
            recovery: config.recovery_factor,
            decay: config.decay_factor,
            micro_batch: config.micro_batch.max(1),
            max_ahead: config.max_speculation_ahead.max(1),
            continuous: config.enable_continuous_speculation,
            ablation_batch: config.ablation_batch.max(1),
        }
    }

    /// The current confidence cutoff to send with the next draft request.
    pub fn cutoff(&self) -> f32 {
        self.cutoff
    }

    /// The number of tokens to request per draft.
    pub fn batch_size(&self) -> usize {
        if self.continuous {
            self.micro_batch
        } else {
            self.ablation_batch
        }
    }

    /// Whether another draft request should be issued right now.
    ///
    /// * `speculated_ahead` — tokens speculated and dispatched but not yet
    ///   resolved.
    /// * `active_speculative_runs` — non-cancelled speculative runs in
    ///   flight.
    /// * `partitions_available` — free KV sequence partitions.
    pub fn should_request(
        &self,
        speculated_ahead: usize,
        active_speculative_runs: usize,
        partitions_available: usize,
    ) -> bool {
        if partitions_available == 0 {
            return false;
        }
        if !self.continuous {
            // Ablation: a single speculation burst at a time.
            return active_speculative_runs == 0 && speculated_ahead == 0;
        }
        if speculated_ahead >= self.max_ahead {
            return false;
        }
        // A cutoff above 1.0 means no token can satisfy it: the gradient has
        // climbed far enough that further speculation is judged wasteful.
        self.cutoff <= 1.0
    }

    /// Called after each dispatched continuous-speculation iteration: raises
    /// the cutoff by the recovery factor.
    pub fn on_iteration(&mut self) {
        if self.continuous {
            self.cutoff = (self.cutoff + self.recovery).min(1.5);
        }
    }

    /// Called when a run completes with at least one accepted token: resets
    /// the cutoff to its base value.
    pub fn on_accept(&mut self) {
        self.cutoff = self.base_cutoff;
    }

    /// Called when speculation fails (an invalidation) while nothing is
    /// waiting to be sampled: lowers the cutoff by the decay factor.
    pub fn on_failure_while_idle(&mut self) {
        self.cutoff = (self.cutoff - self.decay).max(0.05);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> SpeculationController {
        SpeculationController::new(&PipeInferConfig::default(), 0.4)
    }

    #[test]
    fn cutoff_rises_with_iterations_and_resets_on_accept() {
        let mut c = controller();
        let start = c.cutoff();
        c.on_iteration();
        c.on_iteration();
        assert!(c.cutoff() > start);
        c.on_accept();
        assert!((c.cutoff() - start).abs() < 1e-6);
    }

    #[test]
    fn cutoff_decays_on_idle_failure_with_floor() {
        let mut c = controller();
        for _ in 0..100 {
            c.on_failure_while_idle();
        }
        assert!(c.cutoff() >= 0.05);
        assert!(c.cutoff() < 0.4);
    }

    #[test]
    fn requests_stop_when_partitions_exhausted() {
        let c = controller();
        assert!(!c.should_request(0, 0, 0));
        assert!(c.should_request(0, 0, 4));
    }

    #[test]
    fn requests_stop_at_max_ahead() {
        let cfg = PipeInferConfig {
            max_speculation_ahead: 4,
            ..PipeInferConfig::default()
        };
        let c = SpeculationController::new(&cfg, 0.4);
        assert!(c.should_request(3, 2, 8));
        assert!(!c.should_request(4, 2, 8));
    }

    #[test]
    fn requests_stop_when_cutoff_exceeds_one() {
        let cfg = PipeInferConfig {
            recovery_factor: 0.3,
            ..PipeInferConfig::default()
        };
        let mut c = SpeculationController::new(&cfg, 0.9);
        assert!(c.should_request(0, 0, 4));
        c.on_iteration();
        assert!(!c.should_request(1, 1, 4), "cutoff {}", c.cutoff());
    }

    #[test]
    fn ablation_mode_allows_single_burst_with_larger_batch() {
        let cfg = PipeInferConfig::no_continuous_speculation();
        let c = SpeculationController::new(&cfg, 0.4);
        assert_eq!(c.batch_size(), cfg.ablation_batch);
        assert!(c.should_request(0, 0, 8));
        assert!(!c.should_request(0, 1, 8));
        assert!(!c.should_request(3, 0, 8));
    }

    #[test]
    fn continuous_mode_uses_micro_batches() {
        let c = controller();
        assert_eq!(c.batch_size(), PipeInferConfig::default().micro_batch);
    }
}
