//! Sequence-partition pool for Pipelined KV Cache Multibuffering (§IV-C).
//!
//! PipeInfer partitions the KV cache into the *canonical sequence*
//! (sequence 0, holding only accepted tokens) and a set of per-run sequence
//! partitions handed out on a FIFO policy.  While a speculative run is in
//! flight its partition acts as a private "back buffer"; on acceptance the
//! accepted entries are copied (metadata-only) into the canonical sequence
//! — the "buffer swap" — and the partition returns to the free queue.

use pi_model::SeqId;
use std::collections::VecDeque;

/// The canonical sequence id holding accepted tokens.
pub const CANONICAL_SEQ: SeqId = 0;

/// FIFO pool of speculative sequence partitions.
#[derive(Debug, Clone)]
pub struct SeqPartitionPool {
    free: VecDeque<SeqId>,
    total: usize,
}

impl SeqPartitionPool {
    /// Creates a pool of `n` partitions using sequence ids `1..=n`
    /// (sequence 0 is reserved for the canonical sequence).
    pub fn new(n: usize) -> Self {
        Self {
            free: (1..=n as SeqId).collect(),
            total: n,
        }
    }

    /// Allocates the next free partition (FIFO), or `None` if every partition
    /// is currently assigned to an in-flight run.
    pub fn alloc(&mut self) -> Option<SeqId> {
        self.free.pop_front()
    }

    /// Allocates `n` partitions with *consecutive* sequence ids — the block
    /// a tree micro-batch's leaves occupy, so the pipelined
    /// `BranchCommit`/`BranchRollback` operations can name the whole run as
    /// `first .. first + n`.  Returns the first id of the block, or `None`
    /// when no block of `n` consecutive ids is free.
    ///
    /// `n == 1` delegates to [`SeqPartitionPool::alloc`], preserving the
    /// FIFO hand-out order of chain micro-batches exactly.
    pub fn alloc_block(&mut self, n: usize) -> Option<SeqId> {
        match n {
            0 => None,
            1 => self.alloc(),
            _ => {
                let mut free: Vec<SeqId> = self.free.iter().copied().collect();
                free.sort_unstable();
                let first = free
                    .windows(n)
                    .find(|w| w[n - 1] == w[0] + n as SeqId - 1)
                    .map(|w| w[0])?;
                self.free.retain(|&s| s < first || s >= first + n as SeqId);
                Some(first)
            }
        }
    }

    /// Returns a block of `n` consecutive partitions to the pool.
    pub fn free_block(&mut self, first: SeqId, n: usize) {
        for seq in first..first + n as SeqId {
            self.free(seq);
        }
    }

    /// Returns a partition to the pool.
    ///
    /// Panics on double-free or on freeing the canonical sequence — both
    /// indicate a bookkeeping bug that would corrupt the KV cache.
    pub fn free(&mut self, seq: SeqId) {
        assert_ne!(seq, CANONICAL_SEQ, "the canonical sequence is never pooled");
        assert!(
            seq as usize <= self.total,
            "sequence {seq} does not belong to this pool"
        );
        assert!(
            !self.free.contains(&seq),
            "double free of sequence partition {seq}"
        );
        self.free.push_back(seq);
    }

    /// Number of partitions currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Number of partitions currently assigned to runs.
    pub fn in_use(&self) -> usize {
        self.total - self.free.len()
    }

    /// Total number of partitions in the pool.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_fifo() {
        let mut p = SeqPartitionPool::new(3);
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), Some(2));
        p.free(1);
        assert_eq!(p.alloc(), Some(3));
        // 1 was freed before 3 was allocated, but FIFO means it re-emerges
        // only after the ids queued ahead of it.
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), None);
    }

    #[test]
    fn accounting() {
        let mut p = SeqPartitionPool::new(4);
        assert_eq!(p.available(), 4);
        assert_eq!(p.in_use(), 0);
        let a = p.alloc().unwrap();
        assert_eq!(p.in_use(), 1);
        p.free(a);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn block_allocation_is_contiguous() {
        let mut p = SeqPartitionPool::new(6);
        let a = p.alloc_block(3).unwrap();
        assert_eq!(a, 1, "first block starts at the lowest free id");
        let b = p.alloc_block(2).unwrap();
        assert_eq!(b, 4);
        assert_eq!(p.available(), 1);
        // Fragmentation: free 1 and 3 (not adjacent to each other), then 6.
        p.free_block(a, 3);
        p.free_block(b, 2);
        let _ = p.alloc(); // takes 6 (FIFO order: 6 was never freed... )
        assert!(p.alloc_block(3).is_some());
    }

    #[test]
    fn block_allocation_respects_fragmentation() {
        let mut p = SeqPartitionPool::new(4);
        let a = p.alloc().unwrap(); // 1
        let _b = p.alloc().unwrap(); // 2
        let c = p.alloc().unwrap(); // 3
        p.free(a);
        p.free(c);
        // Free set {1, 3, 4}: no 3-block, but {3, 4} is a 2-block.
        assert_eq!(p.alloc_block(3), None);
        assert_eq!(p.alloc_block(2), Some(3));
        assert_eq!(p.available(), 1);
        assert_eq!(p.alloc_block(0), None);
    }

    #[test]
    fn single_block_preserves_fifo_order() {
        let mut a = SeqPartitionPool::new(3);
        let mut b = SeqPartitionPool::new(3);
        assert_eq!(a.alloc(), b.alloc_block(1));
        assert_eq!(a.alloc(), b.alloc_block(1));
        a.free(1);
        b.free_block(1, 1);
        assert_eq!(a.alloc(), b.alloc_block(1));
        assert_eq!(a.alloc(), b.alloc_block(1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = SeqPartitionPool::new(1);
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_none());
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = SeqPartitionPool::new(2);
        let a = p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic]
    fn freeing_canonical_panics() {
        let mut p = SeqPartitionPool::new(2);
        p.free(CANONICAL_SEQ);
    }

    #[test]
    fn never_hands_out_canonical() {
        let mut p = SeqPartitionPool::new(8);
        while let Some(s) = p.alloc() {
            assert_ne!(s, CANONICAL_SEQ);
        }
    }
}
