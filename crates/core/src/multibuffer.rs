//! Sequence-partition pool for Pipelined KV Cache Multibuffering (§IV-C).
//!
//! PipeInfer partitions the KV cache into the *canonical sequence*
//! (sequence 0, holding only accepted tokens) and a set of per-run sequence
//! partitions handed out on a FIFO policy.  While a speculative run is in
//! flight its partition acts as a private "back buffer"; on acceptance the
//! accepted entries are copied (metadata-only) into the canonical sequence
//! — the "buffer swap" — and the partition returns to the free queue.

use pi_model::SeqId;
use std::collections::VecDeque;

/// The canonical sequence id holding accepted tokens.
pub const CANONICAL_SEQ: SeqId = 0;

/// FIFO pool of speculative sequence partitions.
#[derive(Debug, Clone)]
pub struct SeqPartitionPool {
    free: VecDeque<SeqId>,
    total: usize,
}

impl SeqPartitionPool {
    /// Creates a pool of `n` partitions using sequence ids `1..=n`
    /// (sequence 0 is reserved for the canonical sequence).
    pub fn new(n: usize) -> Self {
        Self {
            free: (1..=n as SeqId).collect(),
            total: n,
        }
    }

    /// Allocates the next free partition (FIFO), or `None` if every partition
    /// is currently assigned to an in-flight run.
    pub fn alloc(&mut self) -> Option<SeqId> {
        self.free.pop_front()
    }

    /// Returns a partition to the pool.
    ///
    /// Panics on double-free or on freeing the canonical sequence — both
    /// indicate a bookkeeping bug that would corrupt the KV cache.
    pub fn free(&mut self, seq: SeqId) {
        assert_ne!(seq, CANONICAL_SEQ, "the canonical sequence is never pooled");
        assert!(
            seq as usize <= self.total,
            "sequence {seq} does not belong to this pool"
        );
        assert!(
            !self.free.contains(&seq),
            "double free of sequence partition {seq}"
        );
        self.free.push_back(seq);
    }

    /// Number of partitions currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Number of partitions currently assigned to runs.
    pub fn in_use(&self) -> usize {
        self.total - self.free.len()
    }

    /// Total number of partitions in the pool.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_fifo() {
        let mut p = SeqPartitionPool::new(3);
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), Some(2));
        p.free(1);
        assert_eq!(p.alloc(), Some(3));
        // 1 was freed before 3 was allocated, but FIFO means it re-emerges
        // only after the ids queued ahead of it.
        assert_eq!(p.alloc(), Some(1));
        assert_eq!(p.alloc(), None);
    }

    #[test]
    fn accounting() {
        let mut p = SeqPartitionPool::new(4);
        assert_eq!(p.available(), 4);
        assert_eq!(p.in_use(), 0);
        let a = p.alloc().unwrap();
        assert_eq!(p.in_use(), 1);
        p.free(a);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = SeqPartitionPool::new(1);
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_none());
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = SeqPartitionPool::new(2);
        let a = p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic]
    fn freeing_canonical_panics() {
        let mut p = SeqPartitionPool::new(2);
        p.free(CANONICAL_SEQ);
    }

    #[test]
    fn never_hands_out_canonical() {
        let mut p = SeqPartitionPool::new(8);
        while let Some(s) = p.alloc() {
            assert_ne!(s, CANONICAL_SEQ);
        }
    }
}
