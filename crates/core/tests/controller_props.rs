//! Property tests for the continuous-speculation controller's cutoff
//! dynamics (§IV-B2) and for branch-granular invalidation.
//!
//! The reactive cutoff gradient is the paper's throttle on runaway
//! speculation: recovery must monotonically *raise* the cutoff while the
//! head runs ahead, decay must *lower* it when the system idles, an accepted
//! run must reset it to its base value, and under arbitrary interleavings of
//! those events the cutoff must stay inside its clamp band — in particular,
//! every cutoff actually *sent with a draft request* (i.e. while
//! `should_request` still returns `true`) lies within `[0, 1]`.
//!
//! Branch-granular invalidation is pinned to its safety property: a sweep
//! never cancels a run whose sibling branch lies on the accepted path, and
//! with rescue disabled (or for chain runs) it reduces to whole-run
//! invalidation exactly.

use pipeinfer_core::{PipeInferConfig, RunInfo, RunTracker, SpeculationController};
use proptest::prelude::*;

use pi_model::TokenTree;

/// The controller's clamp band: decay floors at 0.05, recovery ceilings at
/// 1.5 (cutoffs above 1.0 are the "stop speculating" sentinel that
/// `should_request` refuses to send).
const FLOOR: f32 = 0.05;
const CEILING: f32 = 1.5;

fn apply_event(c: &mut SpeculationController, event: u32) {
    match event % 3 {
        0 => c.on_iteration(),
        1 => c.on_accept(),
        _ => c.on_failure_while_idle(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recovery monotonically raises the cutoff while speculation runs
    /// ahead; decay monotonically lowers it when idle; an accepted run
    /// resets it to the base value exactly.
    #[test]
    fn prop_cutoff_gradient_directions(
        base in 0.05f32..1.0,
        recovery in 0.0f32..0.3,
        decay in 0.0f32..0.3,
        n_events in 1usize..20,
    ) {
        let cfg = PipeInferConfig {
            recovery_factor: recovery,
            decay_factor: decay,
            ..PipeInferConfig::default()
        };
        let mut c = SpeculationController::new(&cfg, base);
        // Recovery: never decreasing.
        let mut prev = c.cutoff();
        for _ in 0..n_events {
            c.on_iteration();
            prop_assert!(c.cutoff() >= prev, "recovery lowered the cutoff");
            prev = c.cutoff();
        }
        // Reset on accepted run.
        c.on_accept();
        prop_assert!((c.cutoff() - base).abs() < 1e-6);
        // Decay: never increasing.
        let mut prev = c.cutoff();
        for _ in 0..n_events {
            c.on_failure_while_idle();
            prop_assert!(c.cutoff() <= prev, "decay raised the cutoff");
            prev = c.cutoff();
        }
    }

    /// Under arbitrary event sequences the cutoff stays within the clamp
    /// band, and any cutoff the controller is still willing to send with a
    /// draft request lies within [0, 1].
    #[test]
    fn prop_cutoff_bounded_under_arbitrary_events(
        base in 0.05f32..1.0,
        recovery in 0.0f32..0.5,
        decay in 0.0f32..0.5,
        events in proptest::collection::vec(0u32..3, 0..64),
    ) {
        let cfg = PipeInferConfig {
            recovery_factor: recovery,
            decay_factor: decay,
            ..PipeInferConfig::default()
        };
        let mut c = SpeculationController::new(&cfg, base);
        for &e in &events {
            apply_event(&mut c, e);
            let cut = c.cutoff();
            prop_assert!(cut.is_finite());
            prop_assert!((FLOOR..=CEILING).contains(&cut), "cutoff {cut} escaped the band");
            // The request gate: a cutoff above 1.0 means "stop" — so every
            // cutoff that would actually accompany a request is in [0, 1].
            if c.should_request(0, 0, 8) {
                prop_assert!((0.0..=1.0).contains(&cut), "requestable cutoff {cut} outside [0,1]");
            } else if c.batch_size() == cfg.micro_batch {
                // In continuous mode with free partitions and no backlog the
                // only reason to refuse is the sentinel.
                prop_assert!(cut > 1.0);
            }
        }
    }

    /// Whatever happened before, an accepted run restores the base cutoff —
    /// the gradient carries no hidden state across resets.
    #[test]
    fn prop_accept_always_resets(
        base in 0.05f32..1.0,
        events in proptest::collection::vec(0u32..3, 0..40),
    ) {
        let mut c = SpeculationController::new(&PipeInferConfig::default(), base);
        for &e in &events {
            apply_event(&mut c, e);
        }
        c.on_accept();
        prop_assert!((c.cutoff() - base).abs() < 1e-6);
    }

    /// The tree-shape model never exceeds the micro-batch node budget or the
    /// configured width cap, for any observation history.
    #[test]
    fn prop_shape_stays_inside_the_budget(
        observations in proptest::collection::vec(0usize..6, 0..32),
        width_cap in 2usize..6,
        budget in 2usize..8,
    ) {
        let cfg = PipeInferConfig {
            micro_batch: budget,
            micro_width: width_cap,
            ..PipeInferConfig::default()
        };
        let mut c = SpeculationController::new(&cfg, 0.4);
        for &acc in &observations {
            let span = budget.min(acc.max(1));
            c.observe_shape(acc.min(span), span);
            let (w, d) = c.shape();
            prop_assert!(w >= 1 && d >= 1);
            prop_assert!(w <= width_cap, "width {w} over cap {width_cap}");
            prop_assert!(w + d - 1 <= budget, "shape {w}x{d} over budget {budget}");
        }
    }

    /// Branch-granular invalidation never cancels a run lying on the
    /// accepted path: if a run based at the divergence position holds a
    /// root-level branch carrying the accepted token, it survives the sweep;
    /// every other speculative run at or past the divergence is cancelled,
    /// and runs before it are untouched.
    #[test]
    fn prop_rescue_never_cancels_runs_on_the_accepted_path(
        bases in proptest::collection::vec(0u32..12, 1..8),
        widths in proptest::collection::vec(1usize..4, 1..8),
        cut_idx in 0usize..8,
        accepted_tok in 100u32..104,
        hit in 0u32..2,
    ) {
        // Build a FIFO of runs at strictly increasing bases; each run's
        // spine root is a token that never equals the accepted one, and
        // (when `hit == 1` and the run is hedged) one runner-up branch
        // carries the accepted token.
        let mut tracker = RunTracker::new();
        let mut base = 0i32;
        let n = bases.len().min(widths.len());
        let mut run_meta = Vec::new();
        for i in 0..n {
            base += 1 + bases[i] as i32 % 4;
            let width = widths[i];
            let mut tree = TokenTree::new();
            let root = tree.add(None, 10 + i as u32, 0.9);
            tree.add(Some(root), 50 + i as u32, 0.8);
            let mut carries = false;
            for w in 1..width {
                let tok = if hit == 1 && w == 1 {
                    carries = true;
                    accepted_tok
                } else {
                    200 + (i * 8 + w) as u32
                };
                tree.add(None, tok, 0.5);
            }
            tracker.push(RunInfo::tree(i as u64, tree, base, 1 + 4 * i as u32));
            run_meta.push((i as u64, base, carries));
        }
        let cut = run_meta[cut_idx % run_meta.len()].1;
        let outcome = tracker.invalidate_from(cut, Some(accepted_tok));
        for &(id, run_base, carries) in &run_meta {
            let run = tracker.iter().find(|r| r.run_id == id).unwrap();
            if run_base < cut {
                prop_assert!(!run.cancelled, "run {id} before the divergence was cancelled");
            } else if run_base == cut && carries {
                prop_assert!(!run.cancelled, "run {id} on the accepted path was cancelled");
                prop_assert_eq!(outcome.rescued, Some(id));
            } else {
                prop_assert!(run.cancelled, "run {id} off the accepted path survived");
            }
        }
        // Whole-run invalidation cancels everything at or past the cut.
        let mut whole = RunTracker::new();
        let mut base = 0i32;
        for (i, &b) in bases.iter().take(n).enumerate() {
            base += 1 + b as i32 % 4;
            let mut tree = TokenTree::new();
            tree.add(None, 10 + i as u32, 0.9);
            tree.add(None, accepted_tok, 0.5);
            whole.push(RunInfo::tree(i as u64, tree, base, 1 + 2 * i as u32));
        }
        let out = whole.invalidate_from(cut, None);
        prop_assert_eq!(out.rescued, None);
        for run in whole.iter() {
            prop_assert_eq!(run.cancelled, run.base_pos >= cut);
        }
    }
}
