//! Paged-pool byte-identity matrix: generation through the shared KV page
//! pool — prefix attach, copy-on-write, prefill skip — must reproduce the
//! flat per-request caches bit-for-bit across every PipeInfer layout
//! (head-hosted / dedicated draft rank × chain / tree micro-batches), tree
//! speculation, both execution modes and multiple seeds.
//!
//! Each case runs the flat baseline once, then two pooled runs over one
//! shared pool: the first commits the prompt chain, the second must match
//! the committed prefix (a genuine share hit) and still emit the identical
//! token stream.

use pi_model::{KvPagePool, KvPoolConfig, Model, ModelConfig};
use pi_perf::{ClusterSpec, ModelPair};
use pi_spec::deploy::{Deployment, ExecutionMode};
use pi_spec::{GenConfig, TreeSpeculationStrategy};
use pipeinfer_core::{DraftPlacement, PipeInferConfig, PipeInferStrategy};
use std::sync::Arc;

fn sim_mode(oracle_seed: u64, n_nodes: usize) -> ExecutionMode {
    ExecutionMode::Sim {
        pair: ModelPair::dolphin_tinyllama(),
        cluster: ClusterSpec::cluster_c(n_nodes),
        oracle_seed,
    }
}

fn real_mode(seed: u64) -> ExecutionMode {
    let cfg = ModelConfig::tiny_llama(64, 4);
    let target = Arc::new(Model::random(cfg.clone(), seed));
    let draft = Arc::new(Model::new(cfg, target.weights().perturbed(0.02, seed + 1)));
    ExecutionMode::Real { target, draft }
}

/// Flat baseline, then two runs over one pool: both must match the baseline
/// byte-for-byte and the second must hit the committed prefix.
fn assert_pooled_matches_flat(
    deployment: &Deployment,
    mode: &ExecutionMode,
    n_nodes: usize,
    config: &GenConfig,
    label: &str,
) {
    let baseline = deployment.prepare(mode, n_nodes).run(config);
    assert!(baseline.completed, "{label}: baseline must complete");
    let pool = KvPagePool::new(KvPoolConfig {
        tokens_per_page: 4,
        n_pages: 64,
    });
    let pooled = deployment
        .prepare(mode, n_nodes)
        .with_kv_pool(Arc::clone(&pool));
    let first = pooled.run(config);
    let second = pooled.run(config);
    assert!(first.completed && second.completed, "{label}");
    assert_eq!(
        first.record.tokens, baseline.record.tokens,
        "{label}: first pooled run diverged from flat caches"
    );
    assert_eq!(
        second.record.tokens, baseline.record.tokens,
        "{label}: prefix-cached run diverged from flat caches"
    );
    assert!(
        pool.stats().share_hits > 0,
        "{label}: second run must match the committed prefix ({:?})",
        pool.stats()
    );
}

fn pipeinfer_layouts() -> Vec<(&'static str, PipeInferConfig)> {
    vec![
        ("head-hosted / chain", PipeInferConfig::paper_default()),
        ("head-hosted / tree", PipeInferConfig::tree_micro()),
        ("dedicated / chain", PipeInferConfig::dedicated_draft_rank()),
        (
            "dedicated / tree",
            PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
        ),
    ]
}

#[test]
fn sim_pooled_generation_is_byte_identical_across_layouts_and_seeds() {
    let config = GenConfig {
        prompt: vec![5; 16],
        n_generate: 24,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 4096,
    };
    for oracle_seed in [42, 7] {
        let mode = sim_mode(oracle_seed, 8);
        for (label, layout) in pipeinfer_layouts() {
            let deployment = Deployment::new(PipeInferStrategy::new(layout));
            assert_pooled_matches_flat(
                &deployment,
                &mode,
                8,
                &config,
                &format!("sim {label} seed {oracle_seed}"),
            );
        }
        let tree = Deployment::new(TreeSpeculationStrategy::default());
        assert_pooled_matches_flat(
            &tree,
            &mode,
            8,
            &config,
            &format!("sim tree-speculation seed {oracle_seed}"),
        );
    }
}

#[test]
fn real_pooled_generation_is_byte_identical_across_layouts() {
    // Threaded driver over real tiny models: the attached prefix pages must
    // hold bitwise-identical K/V to recomputation on every pipeline stage.
    let config = GenConfig::small_test(vec![9, 8, 7, 6, 5, 4, 3, 2], 8);
    for seed in [17, 31] {
        let mode = real_mode(seed);
        for (label, layout) in [
            ("head-hosted / chain", PipeInferConfig::paper_default()),
            (
                "dedicated / tree",
                PipeInferConfig::tree_micro().with_placement(DraftPlacement::DedicatedRank),
            ),
        ] {
            let deployment = Deployment::new(PipeInferStrategy::new(layout));
            assert_pooled_matches_flat(
                &deployment,
                &mode,
                3,
                &config,
                &format!("real {label} seed {seed}"),
            );
        }
    }
}
