//! Chrome trace-event / Perfetto JSON export.
//!
//! [`PerfettoTrace`] serializes one or more [`Trace`]s into the Chrome
//! trace-event JSON format (the `{"traceEvents": [...]}` envelope), which
//! `ui.perfetto.dev` and `chrome://tracing` load directly:
//!
//! * every rank becomes a **thread track** (`tid` = rank) inside the
//!   process (`pid`) the trace was pushed under — push several runs under
//!   different pids to compare layouts side by side;
//! * span events ([`EventKind::dur`] = `Some`) become `"X"` complete events
//!   with microsecond `ts`/`dur`;
//! * instants become `"i"` thread-scoped instant events;
//! * a derived `runs_inflight` counter track (`"C"` events) plots the
//!   number of speculative runs in the pipeline over time;
//! * [`push_bubbles`](PerfettoTrace::push_bubbles) adds one extra track per
//!   rank painting the analyzer's busy/blocked/idle intervals with their
//!   causes.
//!
//! [`validate_json`] checks an emitted document against the subset of the
//! schema the tools require — the envelope, required keys per phase, and
//! monotone per-track timestamps — using a self-contained JSON parser (no
//! external crates), and is what the CI trace-smoke step runs.

use crate::bubble::{BubbleReport, State};
use crate::buffer::Trace;
use crate::event::{Event, EventKind};

const SECONDS_TO_US: f64 = 1e6;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 for JSON (finite values only).
fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "trace timestamps must be finite");
    format!("{x:?}")
}

/// An in-progress Chrome trace-event document.
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    /// Serialized JSON objects, one per trace event.
    events: Vec<String>,
}

impl PerfettoTrace {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn meta(&mut self, pid: u32, tid: u32, which: &str, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{which}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Adds every event of `trace` under process `pid` named `process_name`,
    /// one thread track per rank, plus the derived in-flight-runs counter.
    pub fn push(&mut self, pid: u32, process_name: &str, trace: &Trace) {
        self.meta(pid, 0, "process_name", process_name);
        for rank in 0..trace.n_ranks() as u32 {
            self.meta(pid, rank, "thread_name", &format!("rank {rank}"));
        }
        // Per-track (per-rank) events sorted by *start* time so the
        // validator's monotone check holds.
        for rank in 0..trace.n_ranks() as u32 {
            let mut evs: Vec<&Event> = trace.events().iter().filter(|e| e.rank == rank).collect();
            evs.sort_by(|a, b| a.start().total_cmp(&b.start()));
            for e in evs {
                self.push_event(pid, rank, e);
            }
        }
        // Derived counter: speculative runs in flight over time.
        let mut inflight: i64 = 0;
        let mut open: Vec<u64> = Vec::new();
        for e in trace.events() {
            let delta = match e.kind {
                EventKind::RunInflight { run } => {
                    open.push(run);
                    1
                }
                EventKind::RunVerified { run, .. } | EventKind::RunInvalidated { run } => {
                    if let Some(i) = open.iter().position(|&r| r == run) {
                        open.swap_remove(i);
                        -1
                    } else {
                        0
                    }
                }
                _ => 0,
            };
            if delta != 0 {
                inflight += delta;
                self.events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":900,\"name\":\"runs_inflight\",\
                     \"ts\":{},\"args\":{{\"runs\":{inflight}}}}}",
                    num(e.ts * SECONDS_TO_US)
                ));
            }
        }
    }

    fn push_event(&mut self, pid: u32, tid: u32, e: &Event) {
        let name = e.kind.name();
        let args = match e.kind {
            EventKind::StageForward {
                run,
                layer_lo,
                layer_hi,
                batch,
                cohort,
                ..
            } => format!(
                "{{\"run\":{run},\"layers\":\"[{layer_lo},{layer_hi})\",\"batch\":{batch},\
                 \"cohort\":{cohort}}}"
            ),
            EventKind::DraftServe {
                request, n_nodes, ..
            } => format!("{{\"request\":{request},\"n_nodes\":{n_nodes}}}"),
            EventKind::RunSpawned {
                run,
                speculative,
                n_nodes,
                width,
                depth,
            } => format!(
                "{{\"run\":{run},\"speculative\":{speculative},\"n_nodes\":{n_nodes},\
                 \"width\":{width},\"depth\":{depth}}}"
            ),
            EventKind::RunInflight { run }
            | EventKind::RunInvalidated { run }
            | EventKind::RunRescued { run }
            | EventKind::RunSkipped { run } => format!("{{\"run\":{run}}}"),
            EventKind::RunVerified { run, accepted } => {
                format!("{{\"run\":{run},\"accepted\":{accepted}}}")
            }
            EventKind::DraftRequested {
                request,
                context_len,
            } => format!("{{\"request\":{request},\"context_len\":{context_len}}}"),
            EventKind::DraftResponded { request, n_nodes } => {
                format!("{{\"request\":{request},\"n_nodes\":{n_nodes}}}")
            }
            EventKind::DraftCancelled { up_to } => format!("{{\"up_to\":{up_to}}}"),
            EventKind::DraftDropped { n } => format!("{{\"n\":{n}}}"),
            EventKind::BranchCommit { first, n_seqs }
            | EventKind::BranchRollback { first, n_seqs } => {
                format!("{{\"first\":{first},\"n_seqs\":{n_seqs}}}")
            }
            EventKind::WireSend {
                dst,
                tag,
                bytes,
                draft,
            } => format!("{{\"dst\":{dst},\"tag\":{tag},\"bytes\":{bytes},\"draft\":{draft}}}"),
            EventKind::WireRecv { src, tag, bytes } => {
                format!("{{\"src\":{src},\"tag\":{tag},\"bytes\":{bytes}}}")
            }
            _ => "{}".to_string(),
        };
        match e.kind.dur() {
            Some(dur) => self.events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\
                 \"cat\":\"pipeinfer\",\"ts\":{},\"dur\":{},\"args\":{args}}}",
                num(e.start() * SECONDS_TO_US),
                num(dur.max(0.0) * SECONDS_TO_US)
            )),
            None => self.events.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\
                 \"cat\":\"pipeinfer\",\"ts\":{},\"s\":\"t\",\"args\":{args}}}",
                num(e.ts * SECONDS_TO_US)
            )),
        }
    }

    /// Adds one extra track per rank (tid `1000 + rank`) painting the bubble
    /// analyzer's intervals, so busy/blocked/idle attribution is visible as
    /// colored blocks next to the raw events.
    pub fn push_bubbles(&mut self, pid: u32, report: &BubbleReport) {
        for t in &report.ranks {
            if t.end <= 0.0 {
                continue;
            }
            let tid = 1000 + t.rank;
            self.meta(pid, tid, "thread_name", &format!("rank {} bubbles", t.rank));
            for iv in &t.intervals {
                let name = match iv.state {
                    State::Busy => "busy".to_string(),
                    State::Blocked(c) => format!("blocked:{}", c.name()),
                    State::Idle(c) => format!("idle:{}", c.name()),
                };
                self.events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
                     \"cat\":\"bubbles\",\"ts\":{},\"dur\":{},\"args\":{{}}}}",
                    escape(&name),
                    num(iv.t0 * SECONDS_TO_US),
                    num(iv.len().max(0.0) * SECONDS_TO_US)
                ));
            }
        }
    }

    /// Serializes the document.  The output loads directly in
    /// `ui.perfetto.dev` (Open trace file) or `chrome://tracing`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser + schema validator
// ---------------------------------------------------------------------------

/// A parsed JSON value (just enough for validation).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }
}

/// Validates a Chrome trace-event JSON document:
///
/// * parses as JSON with a top-level `traceEvents` array;
/// * every event is an object whose `ph` is one of `X`, `i`, `M`, `C`, with
///   string `name`, numeric `pid`/`tid`, numeric `ts` (except `M`), and a
///   non-negative numeric `dur` for `X` events;
/// * per `(pid, tid)` track, `ts` is monotone non-decreasing in document
///   order.
///
/// Returns `Ok(n_events)` or the first violation.
pub fn validate_json(doc: &str) -> Result<usize, String> {
    let root = Parser::new(doc).parse()?;
    let events = root.get("traceEvents").ok_or("missing traceEvents key")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut last_ts: Vec<((f64, f64), f64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string ph"))?;
        if !matches!(ph, "X" | "i" | "M" | "C") {
            return Err(at(&format!("unsupported ph {ph:?}")));
        }
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string name"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric tid"))?;
        if ph == "M" {
            continue;
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing numeric ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(at("ts must be finite and non-negative"));
        }
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Json::as_num)
                .ok_or_else(|| at("X event missing numeric dur"))?;
            if !dur.is_finite() || dur < 0.0 {
                return Err(at("dur must be finite and non-negative"));
            }
        }
        let key = (pid, tid);
        match last_ts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(at(&format!(
                        "ts {ts} goes backwards on track pid={pid} tid={tid} (last {last})"
                    )));
                }
                *last = ts;
            }
            None => last_ts.push((key, ts)),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{ClockDomain, TraceBuffer};

    fn sample_trace() -> Trace {
        let mut head = TraceBuffer::new(0, 64);
        head.push(0.5, EventKind::Compute { dur: 0.5 });
        head.push(
            0.5,
            EventKind::RunSpawned {
                run: 0,
                speculative: true,
                n_nodes: 4,
                width: 2,
                depth: 3,
            },
        );
        head.push(0.5, EventKind::RunInflight { run: 0 });
        head.push(
            0.6,
            EventKind::WireSend {
                dst: 1,
                tag: 2,
                bytes: 2048,
                draft: false,
            },
        );
        head.push(
            1.5,
            EventKind::RunVerified {
                run: 0,
                accepted: 3,
            },
        );
        let mut worker = TraceBuffer::new(1, 64);
        worker.push(
            0.7,
            EventKind::WireRecv {
                src: 0,
                tag: 2,
                bytes: 2048,
            },
        );
        worker.push(
            1.2,
            EventKind::StageForward {
                run: 0,
                layer_lo: 0,
                layer_hi: 40,
                batch: 4,
                cohort: 1,
                dur: 0.5,
            },
        );
        worker.push(1.3, EventKind::RankFinished);
        Trace::assemble(vec![head, worker], ClockDomain::Virtual)
    }

    #[test]
    fn export_validates_and_carries_both_processes() {
        let trace = sample_trace();
        let mut doc = PerfettoTrace::new();
        doc.push(1, "head-hosted", &trace);
        doc.push(2, "dedicated", &trace);
        doc.push_bubbles(1, &BubbleReport::analyze(&trace));
        let json = doc.to_json();
        let n = validate_json(&json).expect("emitted trace must validate");
        assert!(n > 10);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("head-hosted"));
        assert!(json.contains("stage_forward"));
        assert!(json.contains("runs_inflight"));
        assert!(json.contains("bubbles"));
    }

    #[test]
    fn validator_rejects_missing_keys_and_backwards_time() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let no_ph = r#"{"traceEvents":[{"pid":1,"tid":0,"name":"x","ts":1}]}"#;
        assert!(validate_json(no_ph).unwrap_err().contains("ph"));
        let bad_dur = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":0,"name":"x","ts":1,"dur":-2}]}"#;
        assert!(validate_json(bad_dur).unwrap_err().contains("dur"));
        let backwards = r#"{"traceEvents":[
            {"ph":"i","pid":1,"tid":0,"name":"a","ts":5,"s":"t"},
            {"ph":"i","pid":1,"tid":0,"name":"b","ts":4,"s":"t"}]}"#;
        assert!(validate_json(backwards).unwrap_err().contains("backwards"));
        // Different tracks may interleave timestamps freely.
        let two_tracks = r#"{"traceEvents":[
            {"ph":"i","pid":1,"tid":0,"name":"a","ts":5,"s":"t"},
            {"ph":"i","pid":1,"tid":1,"name":"b","ts":4,"s":"t"}]}"#;
        assert_eq!(validate_json(two_tracks).unwrap(), 2);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = r#"{"traceEvents":[
            {"ph":"M","pid":3,"tid":7,"name":"thread_name",
             "args":{"name":"rank \"0\" → head\n"}}]}"#;
        assert_eq!(validate_json(doc).unwrap(), 1);
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd";
        let doc = format!(
            "{{\"traceEvents\":[{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"name\":\"{}\",\"args\":{{}}}}]}}",
            escape(nasty)
        );
        let parsed = Parser::new(&doc).parse().unwrap();
        let Json::Arr(events) = parsed.get("traceEvents").unwrap().clone() else {
            panic!("array expected");
        };
        assert_eq!(events[0].get("name").unwrap().as_str().unwrap(), nasty);
    }
}
