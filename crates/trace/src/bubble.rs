//! Pipeline-bubble accounting.
//!
//! PipeInfer's central claim is that asynchronous pipelined speculation
//! shrinks *pipeline bubbles* — intervals where a rank has nothing useful to
//! do.  This module reconstructs, from a raw [`Trace`], a per-rank timeline
//! of [`Busy`](State::Busy) / [`Blocked`](State::Blocked) /
//! [`Idle`](State::Idle) intervals that **exactly tile** `[0, end]` for each
//! rank, and attributes every non-busy interval to a cause:
//!
//! * [`Cause::AwaitingDraft`] — a draft request was outstanding (the head is
//!   waiting for the speculative model; the synchronous-drafting bubble).
//! * [`Cause::AwaitingVerify`] — verification runs were in flight (the rank
//!   is waiting for the target pipeline to come back).
//! * [`Cause::CancelledWork`] — the rank skipped cancelled work during the
//!   interval (the bubble left behind by an invalidated speculation).
//! * [`Cause::SchedulingGap`] — none of the above: dead time between
//!   scheduled work.
//!
//! `Blocked` vs `Idle` is the driver's distinction: `Blocked` intervals come
//! from recorded [`EventKind::Blocked`] spans (the rank sat in a receive),
//! `Idle` is the remaining uncovered time.  Both count toward the
//! [bubble fraction](RankTimeline::bubble_fraction).

use crate::buffer::Trace;
use crate::event::{Event, EventKind};

/// Why a rank was not busy during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// A draft request was outstanding at the draft rank.
    AwaitingDraft,
    /// Speculative/non-speculative runs were in flight in the pipeline.
    AwaitingVerify,
    /// The rank skipped cancelled work in this interval.
    CancelledWork,
    /// Nothing was in flight: a scheduling gap.
    SchedulingGap,
}

impl Cause {
    /// Stable lowercase label.
    pub fn name(&self) -> &'static str {
        match self {
            Cause::AwaitingDraft => "awaiting_draft",
            Cause::AwaitingVerify => "awaiting_verify",
            Cause::CancelledWork => "cancelled_work",
            Cause::SchedulingGap => "scheduling_gap",
        }
    }
}

/// The classification of one timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// The rank was computing (covered by a recorded compute span).
    Busy,
    /// The rank sat in a blocking receive.
    Blocked(Cause),
    /// No recorded activity at all.
    Idle(Cause),
}

impl State {
    /// True for both flavors of not-busy.
    pub fn is_bubble(&self) -> bool {
        !matches!(self, State::Busy)
    }
}

/// One half-open interval `[t0, t1)` of a rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub t0: f64,
    pub t1: f64,
    pub state: State,
}

impl Interval {
    /// Interval length in seconds.
    pub fn len(&self) -> f64 {
        self.t1 - self.t0
    }

    /// True when the interval is degenerate.
    pub fn is_empty(&self) -> bool {
        self.t1 <= self.t0
    }
}

/// One rank's reconstructed timeline: intervals tiling `[0, end]`.
#[derive(Debug, Clone)]
pub struct RankTimeline {
    pub rank: u32,
    /// The rank's last event timestamp — the timeline's right edge.
    pub end: f64,
    /// Contiguous intervals: `intervals[0].t0 == 0.0`,
    /// `intervals[i].t1 == intervals[i+1].t0`, last `t1 == end`.
    pub intervals: Vec<Interval>,
    /// Total busy seconds.
    pub busy: f64,
    /// Total blocked seconds.
    pub blocked: f64,
    /// Total idle seconds.
    pub idle: f64,
}

impl RankTimeline {
    /// The fraction of the rank's timeline spent not computing.
    pub fn bubble_fraction(&self) -> f64 {
        if self.end <= 0.0 {
            0.0
        } else {
            (self.blocked + self.idle) / self.end
        }
    }

    /// Seconds of non-busy time attributed to `cause`.
    pub fn cause_time(&self, cause: Cause) -> f64 {
        self.intervals
            .iter()
            .filter(|iv| matches!(iv.state, State::Blocked(c) | State::Idle(c) if c == cause))
            .map(Interval::len)
            .sum()
    }
}

/// Busy/blocked/idle accounting for every rank in a trace.
#[derive(Debug, Clone)]
pub struct BubbleReport {
    pub ranks: Vec<RankTimeline>,
}

/// Merges possibly-overlapping `(start, end)` spans into a disjoint,
/// ascending list.
fn merge_spans(mut spans: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    spans.retain(|&(a, b)| b > a);
    spans.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
    for (a, b) in spans {
        match merged.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// True when `t` lies inside one of the disjoint ascending `spans`.
fn covers(spans: &[(f64, f64)], t: f64) -> bool {
    let idx = spans.partition_point(|&(a, _)| a <= t);
    idx > 0 && t < spans[idx - 1].1
}

/// Step function over time built from +1/-1 deltas: `at(t)` = number of
/// intervals open at `t`.
struct OpenCount {
    /// (ts, running count after applying all deltas at or before ts).
    steps: Vec<(f64, i64)>,
}

impl OpenCount {
    fn new(mut deltas: Vec<(f64, i64)>) -> Self {
        deltas.sort_by(|x, y| x.0.total_cmp(&y.0));
        let mut steps: Vec<(f64, i64)> = Vec::with_capacity(deltas.len());
        let mut acc = 0i64;
        for (ts, d) in deltas {
            acc += d;
            match steps.last_mut() {
                Some(last) if last.0 == ts => last.1 = acc,
                _ => steps.push((ts, acc)),
            }
        }
        Self { steps }
    }

    fn at(&self, t: f64) -> i64 {
        let idx = self.steps.partition_point(|&(ts, _)| ts <= t);
        if idx == 0 {
            0
        } else {
            self.steps[idx - 1].1
        }
    }
}

impl BubbleReport {
    /// Reconstructs per-rank timelines from a trace.
    pub fn analyze(trace: &Trace) -> Self {
        let events = trace.events();

        // Global context for cause attribution -------------------------------
        // Outstanding draft requests: DraftRequested opens, DraftResponded /
        // DraftCancelled (covers every id ≤ up_to) closes.
        let mut draft_deltas: Vec<(f64, i64)> = Vec::new();
        let mut open_drafts: Vec<u64> = Vec::new();
        // In-flight runs: RunInflight opens, RunVerified/RunInvalidated
        // closes.
        let mut run_deltas: Vec<(f64, i64)> = Vec::new();
        let mut open_runs: Vec<u64> = Vec::new();
        for e in events {
            match e.kind {
                EventKind::DraftRequested { request, .. } => {
                    open_drafts.push(request);
                    draft_deltas.push((e.ts, 1));
                }
                EventKind::DraftResponded { request, .. } => {
                    if let Some(i) = open_drafts.iter().position(|&r| r == request) {
                        open_drafts.swap_remove(i);
                        draft_deltas.push((e.ts, -1));
                    }
                }
                EventKind::DraftCancelled { up_to } => {
                    let before = open_drafts.len();
                    open_drafts.retain(|&r| r > up_to);
                    let closed = (before - open_drafts.len()) as i64;
                    if closed > 0 {
                        draft_deltas.push((e.ts, -closed));
                    }
                }
                EventKind::RunInflight { run } => {
                    open_runs.push(run);
                    run_deltas.push((e.ts, 1));
                }
                EventKind::RunVerified { run, .. } | EventKind::RunInvalidated { run } => {
                    if let Some(i) = open_runs.iter().position(|&r| r == run) {
                        open_runs.swap_remove(i);
                        run_deltas.push((e.ts, -1));
                    }
                }
                _ => {}
            }
        }
        let drafts_open = OpenCount::new(draft_deltas);
        let runs_open = OpenCount::new(run_deltas);

        // Per-rank timelines --------------------------------------------------
        let n_ranks = trace.n_ranks().max(
            events
                .iter()
                .map(|e| e.rank as usize + 1)
                .max()
                .unwrap_or(0),
        );
        let mut ranks = Vec::with_capacity(n_ranks);
        for rank in 0..n_ranks as u32 {
            let rank_events: Vec<&Event> = events.iter().filter(|e| e.rank == rank).collect();
            ranks.push(Self::analyze_rank(
                rank,
                &rank_events,
                &drafts_open,
                &runs_open,
            ));
        }
        Self { ranks }
    }

    fn analyze_rank(
        rank: u32,
        events: &[&Event],
        drafts_open: &OpenCount,
        runs_open: &OpenCount,
    ) -> RankTimeline {
        let end = events.iter().map(|e| e.ts).fold(0.0f64, f64::max);
        if end <= 0.0 {
            return RankTimeline {
                rank,
                end: 0.0,
                intervals: Vec::new(),
                busy: 0.0,
                blocked: 0.0,
                idle: 0.0,
            };
        }
        let clamp = |t: f64| t.clamp(0.0, end);
        let mut busy_spans = Vec::new();
        let mut blocked_spans = Vec::new();
        let mut skips: Vec<f64> = Vec::new();
        for e in events {
            match e.kind {
                EventKind::Compute { .. }
                | EventKind::StageForward { .. }
                | EventKind::DraftServe { .. } => {
                    busy_spans.push((clamp(e.start()), clamp(e.ts)));
                }
                EventKind::Blocked { .. } => {
                    blocked_spans.push((clamp(e.start()), clamp(e.ts)));
                }
                EventKind::RunSkipped { .. } => skips.push(e.ts),
                _ => {}
            }
        }
        let busy = merge_spans(busy_spans);
        let blocked = merge_spans(blocked_spans);

        // Elementary boundary sweep: every span edge plus the timeline's own
        // edges, classified by midpoint membership.  Busy wins over blocked;
        // uncovered time is idle.  Adjacent equal-state segments merge, so
        // the result tiles [0, end] exactly by construction.
        let mut bounds: Vec<f64> = vec![0.0, end];
        for &(a, b) in busy.iter().chain(blocked.iter()) {
            bounds.push(a);
            bounds.push(b);
        }
        bounds.sort_by(|x, y| x.total_cmp(y));
        bounds.dedup();

        let mut intervals: Vec<Interval> = Vec::new();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b <= a {
                continue;
            }
            let mid = a + (b - a) / 2.0;
            let state = if covers(&busy, mid) {
                State::Busy
            } else {
                let cause = if skips.iter().any(|&ts| ts >= a && ts <= b) {
                    Cause::CancelledWork
                } else if drafts_open.at(mid) > 0 {
                    Cause::AwaitingDraft
                } else if runs_open.at(mid) > 0 {
                    Cause::AwaitingVerify
                } else {
                    Cause::SchedulingGap
                };
                if covers(&blocked, mid) {
                    State::Blocked(cause)
                } else {
                    State::Idle(cause)
                }
            };
            match intervals.last_mut() {
                Some(last) if last.state == state && last.t1 == a => last.t1 = b,
                _ => intervals.push(Interval {
                    t0: a,
                    t1: b,
                    state,
                }),
            }
        }

        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        for iv in &intervals {
            match iv.state {
                State::Busy => sums.0 += iv.len(),
                State::Blocked(_) => sums.1 += iv.len(),
                State::Idle(_) => sums.2 += iv.len(),
            }
        }
        RankTimeline {
            rank,
            end,
            intervals,
            busy: sums.0,
            blocked: sums.1,
            idle: sums.2,
        }
    }

    /// The timeline for `rank`, if the trace covers it.
    pub fn rank(&self, rank: u32) -> Option<&RankTimeline> {
        self.ranks.iter().find(|t| t.rank == rank)
    }

    /// Mean bubble fraction over every rank with a non-empty timeline.
    pub fn mean_bubble_fraction(&self) -> f64 {
        self.mean_bubble_fraction_of_iter(self.ranks.iter())
    }

    /// Mean bubble fraction over the chosen ranks (e.g. the target-pipeline
    /// ranks, excluding a dedicated draft rank whose idle time is by-design).
    pub fn mean_bubble_fraction_of(&self, ranks: &[u32]) -> f64 {
        self.mean_bubble_fraction_of_iter(self.ranks.iter().filter(|t| ranks.contains(&t.rank)))
    }

    fn mean_bubble_fraction_of_iter<'a>(
        &self,
        iter: impl Iterator<Item = &'a RankTimeline>,
    ) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for t in iter.filter(|t| t.end > 0.0) {
            sum += t.bubble_fraction();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// A human-readable per-rank table with a cause breakdown.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>7} {:>8} {:>7} {:>8}  cause breakdown",
            "rank", "end(s)", "busy%", "blocked%", "idle%", "bubble%"
        );
        for t in &self.ranks {
            if t.end <= 0.0 {
                let _ = writeln!(out, "r{:<5} (no events)", t.rank);
                continue;
            }
            let pct = |x: f64| (100.0 * x / t.end).max(0.0);
            let causes = [
                Cause::AwaitingDraft,
                Cause::AwaitingVerify,
                Cause::CancelledWork,
                Cause::SchedulingGap,
            ];
            let breakdown = causes
                .iter()
                .map(|&c| format!("{}={:.1}%", c.name(), pct(t.cause_time(c))))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "r{:<5} {:>9.4} {:>6.1}% {:>7.1}% {:>6.1}% {:>7.1}%  {}",
                t.rank,
                t.end,
                pct(t.busy),
                pct(t.blocked),
                pct(t.idle),
                100.0 * t.bubble_fraction(),
                breakdown
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{ClockDomain, TraceBuffer};

    fn trace(buffers: Vec<TraceBuffer>) -> Trace {
        Trace::assemble(buffers, ClockDomain::Virtual)
    }

    /// Asserts the timeline tiles `[0, end]` with no gaps or overlaps.
    fn assert_tiles(t: &RankTimeline) {
        if t.end <= 0.0 {
            return;
        }
        assert_eq!(t.intervals.first().unwrap().t0, 0.0);
        assert_eq!(t.intervals.last().unwrap().t1, t.end);
        for w in t.intervals.windows(2) {
            assert_eq!(w[0].t1, w[1].t0, "intervals must be contiguous");
            assert_ne!(w[0].state, w[1].state, "adjacent intervals are merged");
        }
        let total: f64 = t.intervals.iter().map(Interval::len).sum();
        assert!((total - t.end).abs() < 1e-9);
        assert!((t.busy + t.blocked + t.idle - t.end).abs() < 1e-9);
    }

    #[test]
    fn busy_blocked_idle_tile_the_timeline() {
        let mut buf = TraceBuffer::new(0, 64);
        buf.push(1.0, EventKind::Compute { dur: 1.0 }); // busy [0,1)
        buf.push(2.0, EventKind::Blocked { dur: 1.0 }); // blocked [1,2)
        buf.push(4.0, EventKind::Compute { dur: 1.0 }); // idle [2,3), busy [3,4)
        let report = BubbleReport::analyze(&trace(vec![buf]));
        let t = report.rank(0).unwrap();
        assert_eq!(t.end, 4.0);
        assert_tiles(t);
        assert_eq!(t.busy, 2.0);
        assert_eq!(t.blocked, 1.0);
        assert_eq!(t.idle, 1.0);
        assert_eq!(t.bubble_fraction(), 0.5);
        assert_eq!(t.intervals.len(), 4);
        assert_eq!(t.intervals[0].state, State::Busy);
        assert!(matches!(t.intervals[1].state, State::Blocked(_)));
        assert!(matches!(t.intervals[2].state, State::Idle(_)));
        assert_eq!(t.intervals[3].state, State::Busy);
    }

    #[test]
    fn busy_wins_overlaps_with_blocked() {
        let mut buf = TraceBuffer::new(0, 64);
        buf.push(4.0, EventKind::Blocked { dur: 4.0 }); // blocked [0,4)
        buf.push(3.0, EventKind::Compute { dur: 2.0 }); // busy [1,3) overlaps
        let report = BubbleReport::analyze(&trace(vec![buf]));
        let t = report.rank(0).unwrap();
        assert_tiles(t);
        assert_eq!(t.busy, 2.0);
        assert_eq!(t.blocked, 2.0);
        assert_eq!(t.idle, 0.0);
    }

    #[test]
    fn causes_are_attributed_from_global_context() {
        // Rank 0 (head): requests a draft at t=1, response lands t=3; then a
        // run is in flight from t=4 to t=6.  Rank 1 blocks throughout.
        let mut head = TraceBuffer::new(0, 64);
        head.push(1.0, EventKind::Compute { dur: 1.0 });
        head.push(
            1.0,
            EventKind::DraftRequested {
                request: 0,
                context_len: 4,
            },
        );
        head.push(
            3.0,
            EventKind::DraftResponded {
                request: 0,
                n_nodes: 3,
            },
        );
        head.push(4.0, EventKind::Compute { dur: 1.0 });
        head.push(4.0, EventKind::RunInflight { run: 0 });
        head.push(
            6.0,
            EventKind::RunVerified {
                run: 0,
                accepted: 2,
            },
        );
        head.push(7.0, EventKind::Compute { dur: 1.0 });
        head.push(8.0, EventKind::RankFinished);
        let report = BubbleReport::analyze(&trace(vec![head]));
        let t = report.rank(0).unwrap();
        assert_tiles(t);
        // [1,3): draft outstanding; [4,6) minus busy: run in flight; [6,?]
        // nothing in flight.
        assert!(t.cause_time(Cause::AwaitingDraft) >= 2.0 - 1e-9);
        assert!(t.cause_time(Cause::AwaitingVerify) >= 1.0 - 1e-9);
        assert!(t.cause_time(Cause::SchedulingGap) >= 1.0 - 1e-9);
    }

    #[test]
    fn skipped_work_marks_cancelled_bubbles() {
        let mut buf = TraceBuffer::new(1, 64);
        buf.push(1.0, EventKind::Compute { dur: 1.0 });
        buf.push(1.5, EventKind::RunSkipped { run: 9 });
        buf.push(2.0, EventKind::RankFinished);
        let report = BubbleReport::analyze(&trace(vec![TraceBuffer::new(0, 4), buf]));
        let t = report.rank(1).unwrap();
        assert_tiles(t);
        assert_eq!(t.cause_time(Cause::CancelledWork), 1.0);
    }

    #[test]
    fn mean_bubble_fraction_subsets_ranks() {
        let mut r0 = TraceBuffer::new(0, 8);
        r0.push(2.0, EventKind::Compute { dur: 2.0 }); // fully busy
        let mut r1 = TraceBuffer::new(1, 8);
        r1.push(1.0, EventKind::Compute { dur: 1.0 });
        r1.push(2.0, EventKind::RankFinished); // half idle
        let report = BubbleReport::analyze(&trace(vec![r0, r1]));
        assert_eq!(report.mean_bubble_fraction_of(&[0]), 0.0);
        assert_eq!(report.mean_bubble_fraction_of(&[1]), 0.5);
        assert_eq!(report.mean_bubble_fraction(), 0.25);
        let rendered = report.render();
        assert!(rendered.contains("bubble%"));
        assert!(rendered.contains("scheduling_gap"));
    }

    #[test]
    fn empty_rank_yields_empty_timeline() {
        let report = BubbleReport::analyze(&trace(vec![TraceBuffer::new(0, 4)]));
        let t = report.rank(0).unwrap();
        assert_eq!(t.end, 0.0);
        assert!(t.intervals.is_empty());
        assert_eq!(t.bubble_fraction(), 0.0);
    }
}
