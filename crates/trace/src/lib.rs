//! `pi_trace` — structured cross-rank tracing for PipeInfer.
//!
//! PipeInfer's thesis (Butler et al., SC 2024) is about *time*: asynchronous
//! pipelined speculation shrinks pipeline bubbles and inter-token latency.
//! Aggregate counters cannot show where a rank idled, why a run was
//! cancelled, or how long verification stalled behind a draft.  This crate
//! records, analyzes, and exports the timeline itself:
//!
//! * [`Event`] / [`EventKind`] — a typed vocabulary covering the full
//!   speculation lifecycle: run spawned / inflight / verified / invalidated /
//!   rescued, draft request / response / cancel, stage forwards with layer
//!   range and batch shape, KV branch commit / rollback, and wire send /
//!   recv with byte counts.
//! * [`TraceBuffer`] — one bounded ring per rank: no locks on the hot path,
//!   drop-oldest on overflow with an explicit dropped-events counter.  A
//!   *disabled* recorder costs a single predictable branch per event site
//!   (the drivers' `trace_enabled()` guard) — benchmarked at well under 5 ns.
//! * [`Clock`] — the unified timestamp source: [`MonotonicClock`] wall time
//!   for the threaded driver, virtual `SimTime` (via the sim driver's own
//!   scheduler, surfaced as [`ClockDomain::Virtual`]) for deterministic,
//!   byte-reproducible traces.
//! * [`BubbleReport`] — reconstructs per-rank busy / blocked / idle
//!   intervals that exactly tile each rank's timeline and attributes every
//!   bubble to a cause (awaiting draft, awaiting verify, cancelled work,
//!   scheduling gap).
//! * [`PerfettoTrace`] — Chrome trace-event JSON export, plus
//!   [`validate_json`] for CI.
//!
//! # Recording a trace
//!
//! Recording is off by default.  Ask a driver (or a
//! `PreparedDeployment`) for it:
//!
//! ```ignore
//! use pipeinfer::prelude::*;
//! use pi_trace::{BubbleReport, PerfettoTrace, TraceConfig};
//!
//! let prepared = Deployment::new(strategy, mode).prepare()?;
//! let out = prepared.run_traced(&gen_config, TraceConfig::default())?;
//! let trace = out.trace.as_ref().unwrap();
//!
//! // 1. Bubble accounting: where did each rank's time go?
//! println!("{}", BubbleReport::analyze(trace).render());
//!
//! // 2. Perfetto: open the file at https://ui.perfetto.dev
//! let mut doc = PerfettoTrace::new();
//! doc.push(1, "pipeinfer", trace);
//! doc.push_bubbles(1, &BubbleReport::analyze(trace));
//! std::fs::write("pipeinfer.trace.json", doc.to_json())?;
//! ```
//!
//! # Perfetto workflow
//!
//! 1. Run `cargo run --release --example trace_viz` — it writes
//!    `target/trace_viz/pipeinfer.trace.json` comparing the four layouts
//!    (head-hosted / dedicated draft rank × chain / tree) as four processes.
//! 2. Open <https://ui.perfetto.dev> → *Open trace file* → pick the JSON.
//! 3. Each process is one run; each rank is a thread track.  `compute` /
//!    `stage_forward` / `draft_serve` spans show busy time, instants mark
//!    the speculation lifecycle, `runs_inflight` plots pipeline occupancy,
//!    and the `rank N bubbles` tracks paint the analyzer's attribution —
//!    the Fig. 3 bubble-reduction claim is directly visible by comparing
//!    the head-hosted and dedicated processes.
//!
//! # Determinism
//!
//! Sim-driver traces are stamped in virtual time and are byte-reproducible:
//! the same deployment and seed produce a [`Trace::to_log`] that is
//! byte-identical across hosts, `PIPEINFER_THREADS` settings, and repeated
//! runs.  The reproducibility property tests pin this.

mod bubble;
mod buffer;
mod clock;
mod event;
mod perfetto;

pub use bubble::{BubbleReport, Cause, Interval, RankTimeline, State};
pub use buffer::{ClockDomain, Trace, TraceBuffer, TraceConfig};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{Event, EventKind, FaultKind};
pub use perfetto::{validate_json, PerfettoTrace};
