//! Per-rank ring buffers and the assembled [`Trace`].
//!
//! Each rank (one OS thread under the threaded driver, one virtual rank under
//! the sim driver) records into its own [`TraceBuffer`]: no locks on the hot
//! path, bounded memory, drop-oldest on overflow with an explicit
//! dropped-events counter.  When the driver finishes, the per-rank buffers
//! are merged into a single time-sorted [`Trace`].

use crate::event::{Event, EventKind};
use std::collections::VecDeque;

/// Recording configuration handed to a driver's `with_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity per rank, in events.  When full the **oldest**
    /// event is dropped (and counted) — the tail of a run is always kept.
    pub capacity_per_rank: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity_per_rank: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// A config with the given per-rank capacity.
    pub fn with_capacity(capacity_per_rank: usize) -> Self {
        Self { capacity_per_rank }
    }
}

/// One rank's bounded event ring.
#[derive(Debug)]
pub struct TraceBuffer {
    rank: u32,
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring for `rank` holding at most `cap` events.
    pub fn new(rank: u32, cap: usize) -> Self {
        Self {
            rank,
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The rank this buffer records for.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Records one event; drops (and counts) the oldest when full.
    pub fn push(&mut self, ts: f64, kind: EventKind) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            ts,
            rank: self.rank,
            kind,
        });
    }

    /// Events recorded so far (oldest first).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Which clock domain a trace's timestamps live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Virtual `SimTime` from the discrete-event sim driver: deterministic,
    /// byte-reproducible across hosts and thread counts.
    Virtual,
    /// Monotonic wall time from the threaded driver.
    Monotonic,
}

/// A completed recording: every rank's events merged into one time-sorted
/// stream, plus per-rank drop counters and the clock domain.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    /// Events dropped per rank (index = rank).
    dropped: Vec<u64>,
    domain: ClockDomain,
}

impl Trace {
    /// Merges per-rank buffers (indexed by rank) into one trace.  Events are
    /// stably sorted by timestamp with rank as the tie-break, so each rank's
    /// own recording order is preserved at equal timestamps.
    pub fn assemble(buffers: Vec<TraceBuffer>, domain: ClockDomain) -> Self {
        let mut dropped = vec![0u64; buffers.len()];
        let mut events = Vec::with_capacity(buffers.iter().map(|b| b.len()).sum());
        for buf in buffers {
            dropped[buf.rank as usize] = buf.dropped;
            events.extend(buf.events);
        }
        events.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.rank.cmp(&b.rank)));
        Self {
            events,
            dropped,
            domain,
        }
    }

    /// The merged event stream, time-sorted.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Per-rank dropped-event counters (index = rank).
    pub fn dropped(&self) -> &[u64] {
        &self.dropped
    }

    /// Total events dropped across all ranks.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// The number of ranks the trace covers.
    pub fn n_ranks(&self) -> usize {
        self.dropped.len()
    }

    /// The clock domain timestamps live in.
    pub fn domain(&self) -> ClockDomain {
        self.domain
    }

    /// A stable, line-oriented text serialization.  Two traces are
    /// behaviorally identical iff their logs are byte-identical — the
    /// reproducibility tests compare sim-driver logs across thread counts
    /// and hosts.  (f64 timestamps print as shortest-roundtrip decimals, so
    /// equal bits ⇒ equal text.)
    pub fn to_log(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# domain={:?} ranks={} dropped={:?}",
            self.domain,
            self.dropped.len(),
            self.dropped
        );
        for e in &self.events {
            let _ = writeln!(out, "[{:?}] r{} {:?}", e.ts, e.rank, e.kind);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut buf = TraceBuffer::new(2, 3);
        for i in 0..5 {
            buf.push(i as f64, EventKind::RunInflight { run: i });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let trace = Trace::assemble(
            vec![TraceBuffer::new(0, 4), TraceBuffer::new(1, 4), buf],
            ClockDomain::Virtual,
        );
        // The oldest two events (runs 0 and 1) are gone; the tail survives.
        let runs: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::RunInflight { run } => run,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(runs, vec![2, 3, 4]);
        assert_eq!(trace.dropped(), &[0, 0, 2]);
        assert_eq!(trace.dropped_total(), 2);
    }

    #[test]
    fn assemble_merges_time_sorted_with_rank_tiebreak() {
        let mut a = TraceBuffer::new(0, 8);
        let mut b = TraceBuffer::new(1, 8);
        a.push(2.0, EventKind::RankFinished);
        a.push(2.0, EventKind::RunInflight { run: 7 });
        b.push(1.0, EventKind::RankFinished);
        b.push(2.0, EventKind::RankFinished);
        let trace = Trace::assemble(vec![a, b], ClockDomain::Virtual);
        let order: Vec<(f64, u32)> = trace.events().iter().map(|e| (e.ts, e.rank)).collect();
        // ts first; at equal ts rank 0 precedes rank 1, and rank 0's own
        // insertion order is preserved.
        assert_eq!(order, vec![(1.0, 1), (2.0, 0), (2.0, 0), (2.0, 1)]);
        assert!(matches!(
            trace.events()[2].kind,
            EventKind::RunInflight { run: 7 }
        ));
    }

    #[test]
    fn log_round_trips_identical_traces_to_identical_bytes() {
        let build = || {
            let mut buf = TraceBuffer::new(0, 8);
            buf.push(0.125, EventKind::Compute { dur: 0.0625 });
            buf.push(
                0.25,
                EventKind::WireSend {
                    dst: 1,
                    tag: 3,
                    bytes: 4096,
                    draft: false,
                },
            );
            Trace::assemble(vec![buf], ClockDomain::Virtual)
        };
        assert_eq!(build().to_log(), build().to_log());
        assert!(build().to_log().contains("wire_send") || build().to_log().contains("WireSend"));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut buf = TraceBuffer::new(0, 0);
        buf.push(0.0, EventKind::RankFinished);
        buf.push(1.0, EventKind::RankFinished);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
    }
}
