//! The unified clock behind every trace timestamp.
//!
//! PipeInfer runs on two very different drivers: the threaded driver executes
//! ranks on real OS threads (wall time), while the sim driver executes them
//! under a conservative discrete-event scheduler (virtual [`SimTime`]).  For
//! traces from either driver to be analyzable by the same tooling, both stamp
//! events through the same [`Clock`] trait:
//!
//! * [`MonotonicClock`] — monotonic wall time in seconds since construction
//!   (the threaded driver's default).
//! * [`ManualClock`] — an externally driven clock (`set`/`advance`); the sim
//!   driver stamps events with its virtual time through one of these, and
//!   tests use it to make wall-clocked components deterministic.
//!
//! [`SimTime`]: https://docs.rs/pi-cluster

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone source of timestamps in **seconds** (f64).
///
/// Implementations must be cheap (`now` sits on hot paths) and thread-safe:
/// the threaded driver shares one clock across every rank thread.
pub trait Clock: Send + Sync {
    /// The current time, in seconds.  Monotone non-decreasing.
    fn now(&self) -> f64;
}

/// Monotonic wall time, measured in seconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// An externally driven clock: time moves only when `set` or `advance` is
/// called.  Reads and writes are atomic (f64 bits in an `AtomicU64`), so the
/// clock can be shared across threads without locks.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start` seconds.
    pub fn new(start: f64) -> Self {
        Self {
            bits: AtomicU64::new(start.to_bits()),
        }
    }

    /// Jumps the clock to `t` seconds.
    pub fn set(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::Release);
    }

    /// Advances the clock by `dt` seconds.
    pub fn advance(&self, dt: f64) {
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + dt).to_bits();
            match self
                .bits
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_driven() {
        let c = ManualClock::new(1.5);
        assert_eq!(c.now(), 1.5);
        c.advance(0.25);
        assert_eq!(c.now(), 1.75);
        c.set(10.0);
        assert_eq!(c.now(), 10.0);
        assert_eq!(c.now(), 10.0, "time does not pass on its own");
    }

    #[test]
    fn manual_clock_default_starts_at_zero() {
        assert_eq!(ManualClock::default().now(), 0.0);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> = vec![
            Box::new(MonotonicClock::new()),
            Box::new(ManualClock::new(3.0)),
        ];
        assert_eq!(clocks[1].now(), 3.0);
    }
}
