//! The typed event vocabulary.
//!
//! Every event carries the rank that recorded it and a timestamp from the
//! driver's [`Clock`](crate::Clock).  Two families exist:
//!
//! * **Spans** — intervals with a duration.  Spans are recorded at their
//!   *end*: `ts` is the end time and the start is `ts - dur`.  (Recording at
//!   the end means a single buffer push per span and no id matching.)
//! * **Instants** — point events (`dur() == None`).
//!
//! The vocabulary covers the full speculation lifecycle: run
//! spawned/inflight/verified/invalidated/rescued, draft
//! request/response/cancel, stage forwards with layer range and batch shape,
//! KV branch commit/rollback, and wire send/recv with byte counts.

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Timestamp in seconds (span **end** for span kinds).
    pub ts: f64,
    /// The rank that recorded the event.
    pub rank: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The category of an injected fault, carried by
/// [`EventKind::FaultInjected`] so bubble accounting can attribute stalls
/// caused by a chaos schedule to their cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped in transit.
    Drop,
    /// A message was delivered with extra injected latency.
    Delay,
    /// A message was delivered twice.
    Duplicate,
    /// A message was allowed to overtake earlier traffic on its link.
    Reorder,
    /// The rank was paused (straggler window).
    Pause,
    /// The rank was killed.
    Kill,
}

impl FaultKind {
    /// A short, stable name for labels and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Pause => "pause",
            FaultKind::Kill => "kill",
        }
    }
}

/// What happened.  See the module docs for the span/instant split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    // ----- spans (recorded at span end; start = ts - dur) -------------------
    /// Modeled computation charged through `NodeCtx::elapse` — the canonical
    /// "this rank was busy" signal both drivers emit.
    Compute { dur: f64 },
    /// The rank sat in a blocking receive for `dur` seconds (threaded: the
    /// poll loop; sim: the virtual wait for the next deliverable message).
    Blocked { dur: f64 },
    /// A pipeline worker evaluated one decode micro-batch through its layer
    /// slice `[layer_lo, layer_hi)`.  `batch` is the number of rows in the
    /// micro-batch; `cohort` is the number of requests (batch lanes) fused
    /// into it — 1 for thread-per-request serving, the in-flight cohort
    /// width under iteration-level batching.
    StageForward {
        run: u64,
        layer_lo: u32,
        layer_hi: u32,
        batch: u32,
        cohort: u32,
        dur: f64,
    },
    /// The dedicated draft rank served one draft request.
    DraftServe {
        request: u64,
        n_nodes: u32,
        dur: f64,
    },

    // ----- run lifecycle ----------------------------------------------------
    /// The head created a run and pushed it into the tracker.
    RunSpawned {
        run: u64,
        speculative: bool,
        n_nodes: u32,
        width: u32,
        depth: u32,
    },
    /// The run's micro-batch entered the target pipeline.
    RunInflight { run: u64 },
    /// A speculative run returned and was verified; `accepted` tokens of its
    /// tree survived the walk.
    RunVerified { run: u64, accepted: u32 },
    /// The run was invalidated by a mispredicted token and cancelled.
    RunInvalidated { run: u64 },
    /// The run survived an invalidation sweep because a sibling branch
    /// carries the accepted token (branch-granular rescue).
    RunRescued { run: u64 },
    /// A worker skipped an already-cancelled run's evaluation.
    RunSkipped { run: u64 },

    // ----- draft transactions (dedicated draft rank) ------------------------
    /// The head asked the draft rank to speculate on a `context_len`-token
    /// hypothesis.
    DraftRequested { request: u64, context_len: u32 },
    /// The draft rank's response reached the head.
    DraftResponded { request: u64, n_nodes: u32 },
    /// The head cancelled every outstanding request up to an id.
    DraftCancelled { up_to: u64 },
    /// The draft rank dropped `n` requests unserved (superseded or
    /// cancelled).
    DraftDropped { n: u32 },

    // ----- KV multibuffering ------------------------------------------------
    /// Accepted branch committed into the canonical sequence; the partition
    /// block `[first, first + n_seqs)` is released.
    BranchCommit { first: u32, n_seqs: u32 },
    /// Nothing survived; the partition block rolled back wholesale.
    BranchRollback { first: u32, n_seqs: u32 },

    // ----- paged KV pool ----------------------------------------------------
    /// A paged cache materialised `n` private pages on first write.
    PageAlloc { n: u32 },
    /// A request attached `n` committed pool pages instead of recomputing
    /// the prefix they hold (prefix-cache hit).
    PageShareHit { n: u32 },
    /// `n` shared pages were cloned copy-on-write at a divergence point.
    PageCow { n: u32 },
    /// The pool evicted `n` refcount-0 pages (LRU) to admit a request, or a
    /// cache released `n` fully-free pages at page granularity.
    PageEvict { n: u32 },

    // ----- wire -------------------------------------------------------------
    /// A message left this rank.
    WireSend {
        dst: u32,
        tag: u32,
        bytes: u64,
        draft: bool,
    },
    /// A message was delivered to this rank.
    WireRecv { src: u32, tag: u32, bytes: u64 },

    /// The rank's behavior reported completion and its loop exited.
    RankFinished,

    // ----- fault injection and recovery -------------------------------------
    /// A fault-injection schedule perturbed this rank: a message on the link
    /// to `peer` was dropped/delayed/duplicated/reordered, or the rank itself
    /// was paused or killed (`peer` echoes the rank for non-link faults).
    FaultInjected { fault: FaultKind, peer: u32 },
    /// A draft request's deadline expired without a response reaching the
    /// head.
    DraftTimeout { request: u64 },
    /// The head abandoned the remote draft rank and failed over to its local
    /// fallback drafter (or, with no fallback, degraded to non-speculative
    /// decoding) after `timeouts` consecutive timeouts/refusals.
    DraftFailover { timeouts: u32 },
    /// The rank was killed by a fault schedule; it delivers and sends nothing
    /// from this point on.
    RankKilled,
}

impl EventKind {
    /// The span duration, or `None` for instants.
    pub fn dur(&self) -> Option<f64> {
        match *self {
            EventKind::Compute { dur }
            | EventKind::Blocked { dur }
            | EventKind::StageForward { dur, .. }
            | EventKind::DraftServe { dur, .. } => Some(dur),
            _ => None,
        }
    }

    /// A short, stable name (used for Perfetto track labels and logs).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Compute { .. } => "compute",
            EventKind::Blocked { .. } => "blocked",
            EventKind::StageForward { .. } => "stage_forward",
            EventKind::DraftServe { .. } => "draft_serve",
            EventKind::RunSpawned { .. } => "run_spawned",
            EventKind::RunInflight { .. } => "run_inflight",
            EventKind::RunVerified { .. } => "run_verified",
            EventKind::RunInvalidated { .. } => "run_invalidated",
            EventKind::RunRescued { .. } => "run_rescued",
            EventKind::RunSkipped { .. } => "run_skipped",
            EventKind::DraftRequested { .. } => "draft_requested",
            EventKind::DraftResponded { .. } => "draft_responded",
            EventKind::DraftCancelled { .. } => "draft_cancelled",
            EventKind::DraftDropped { .. } => "draft_dropped",
            EventKind::BranchCommit { .. } => "branch_commit",
            EventKind::BranchRollback { .. } => "branch_rollback",
            EventKind::PageAlloc { .. } => "page_alloc",
            EventKind::PageShareHit { .. } => "page_share_hit",
            EventKind::PageCow { .. } => "page_cow",
            EventKind::PageEvict { .. } => "page_evict",
            EventKind::WireSend { .. } => "wire_send",
            EventKind::WireRecv { .. } => "wire_recv",
            EventKind::RankFinished => "rank_finished",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::DraftTimeout { .. } => "draft_timeout",
            EventKind::DraftFailover { .. } => "draft_failover",
            EventKind::RankKilled => "rank_killed",
        }
    }
}

impl Event {
    /// The span start (`ts - dur`), or `ts` for instants.
    pub fn start(&self) -> f64 {
        self.ts - self.kind.dur().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_report_durations_and_starts() {
        let e = Event {
            ts: 2.5,
            rank: 1,
            kind: EventKind::Compute { dur: 0.5 },
        };
        assert_eq!(e.kind.dur(), Some(0.5));
        assert_eq!(e.start(), 2.0);
        let i = Event {
            ts: 1.0,
            rank: 0,
            kind: EventKind::RunSpawned {
                run: 3,
                speculative: true,
                n_nodes: 5,
                width: 2,
                depth: 4,
            },
        };
        assert_eq!(i.kind.dur(), None);
        assert_eq!(i.start(), 1.0);
    }

    #[test]
    fn fault_events_are_instants_with_stable_names() {
        let kinds = [
            EventKind::FaultInjected {
                fault: FaultKind::Drop,
                peer: 1,
            },
            EventKind::DraftTimeout { request: 3 },
            EventKind::DraftFailover { timeouts: 2 },
            EventKind::RankKilled,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "fault_injected",
                "draft_timeout",
                "draft_failover",
                "rank_killed"
            ]
        );
        assert!(kinds.iter().all(|k| k.dur().is_none()));
        assert_eq!(FaultKind::Kill.name(), "kill");
        assert_ne!(FaultKind::Delay, FaultKind::Reorder);
    }

    #[test]
    fn page_events_are_instants_with_stable_names() {
        let kinds = [
            EventKind::PageAlloc { n: 1 },
            EventKind::PageShareHit { n: 2 },
            EventKind::PageCow { n: 1 },
            EventKind::PageEvict { n: 3 },
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["page_alloc", "page_share_hit", "page_cow", "page_evict"]
        );
        assert!(kinds.iter().all(|k| k.dur().is_none()));
    }

    #[test]
    fn names_are_stable_and_distinct_per_family() {
        assert_eq!(EventKind::RankFinished.name(), "rank_finished");
        assert_eq!(
            EventKind::StageForward {
                run: 0,
                layer_lo: 0,
                layer_hi: 4,
                batch: 1,
                cohort: 1,
                dur: 0.1
            }
            .name(),
            "stage_forward"
        );
    }
}
