//! Block quantization formats modelled after the GGML "K-quant" family.
//!
//! The paper evaluates GGUF models quantized to `Q2_K`, `Q3_K_M`, `Q4_K_M`
//! and similar formats (Tables I and III).  Quantization matters to the
//! reproduction in two ways:
//!
//! 1. **Memory footprint** — the per-node memory figures (Fig. 7a) and the
//!    roofline cost model (weight-streaming time) depend on bytes per weight,
//!    which differs per format.  [`QuantKind::bits_per_weight`] encodes the
//!    effective storage cost of each format including block scale overhead.
//! 2. **Functional path** — the real tiny-model engine can run with quantized
//!    weight matrices ([`QuantizedMatrix`]), exercising
//!    quantize→dequantize→matmul exactly where llama.cpp would.
//!
//! The formats implemented here are simplified relative to GGML (symmetric
//! per-block scaling, no super-block mins) but preserve the storage cost and
//! round-trip error characteristics that the experiments rely on.

use crate::{ops, Result, Tensor, TensorError};
use rayon::prelude::*;

/// Number of weights in a quantization block.
pub const BLOCK_SIZE: usize = 32;

/// Fused unscaled dot of one full activation chunk against one block's
/// integer weights.  Four independent accumulators (same fixed order as
/// `ops::dot_scalar`) let the widen-and-multiply loop autovectorise while
/// keeping results deterministic; the compile-time trip count lets it unroll
/// completely.
#[inline]
fn dot_q_full(x: &[f32; BLOCK_SIZE], q: &[i8; BLOCK_SIZE]) -> f32 {
    let mut acc = [0.0f32; 4];
    for i in 0..BLOCK_SIZE / 4 {
        acc[0] += x[4 * i] * q[4 * i] as f32;
        acc[1] += x[4 * i + 1] * q[4 * i + 1] as f32;
        acc[2] += x[4 * i + 2] * q[4 * i + 2] as f32;
        acc[3] += x[4 * i + 3] * q[4 * i + 3] as f32;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Fused unscaled dot of the short final chunk of a row whose length is not
/// a multiple of the block size: same 4-lane accumulation order as
/// [`dot_q_full`], dynamic bound.  Like the main loop, this returns the
/// **unscaled** sum — the caller applies the block scale exactly once, after
/// the element loop.
#[inline]
fn dot_q_tail(x: &[f32], q: &[i8; BLOCK_SIZE]) -> f32 {
    let n = x.len();
    debug_assert!(n < BLOCK_SIZE);
    let main = n - n % 4;
    let mut acc = [0.0f32; 4];
    let mut i = 0;
    while i < main {
        acc[0] += x[i] * q[i] as f32;
        acc[1] += x[i + 1] * q[i + 1] as f32;
        acc[2] += x[i + 2] * q[i + 2] as f32;
        acc[3] += x[i + 3] * q[i + 3] as f32;
        i += 4;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail += x[i] * q[i] as f32;
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Scalar fused dot of a full activation row against one quantized weight
/// row: full blocks via `chunks_exact`, then the ragged tail block — with
/// the per-block scale multiply hoisted out of both element loops
/// symmetrically (one multiply per block, main loop and tail alike).  This
/// is the ground truth the SIMD row kernel is property-tested against.
#[inline]
fn fused_row_dot_scalar(xrow: &[f32], row_blocks: &[Block]) -> f32 {
    let mut acc = 0.0f32;
    let mut chunks = xrow.chunks_exact(BLOCK_SIZE);
    for (xchunk, block) in (&mut chunks).zip(row_blocks.iter()) {
        let xchunk: &[f32; BLOCK_SIZE] = xchunk.try_into().unwrap();
        acc += dot_q_full(xchunk, &block.q) * block.scale;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let block = &row_blocks[xrow.len() / BLOCK_SIZE];
        acc += dot_q_tail(rem, &block.q) * block.scale;
    }
    acc
}

/// Supported quantization formats.
///
/// `F32` and `F16` are included so model presets can describe unquantized
/// checkpoints; the `Q*` variants mirror the GGML K-quant naming used in the
/// paper's model tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// 32-bit floats (no quantization).
    F32,
    /// 16-bit floats (storage-only halving; dequantizes losslessly here).
    F16,
    /// 8-bit symmetric block quantization (GGML `Q8_0`).
    Q8_0,
    /// ~5.5 bit K-quant (GGML `Q5_K_M`).
    Q5K,
    /// ~4.5 bit K-quant (GGML `Q4_K_M`).
    Q4K,
    /// ~3.4 bit K-quant (GGML `Q3_K_M`).
    Q3K,
    /// ~2.6 bit K-quant (GGML `Q2_K`).
    Q2K,
}

impl QuantKind {
    /// Effective storage cost in bits per weight, including block metadata.
    ///
    /// Values follow the GGML documentation / llama.cpp `ggml_type_size`
    /// ratios closely enough for memory accounting.
    pub fn bits_per_weight(self) -> f64 {
        match self {
            QuantKind::F32 => 32.0,
            QuantKind::F16 => 16.0,
            QuantKind::Q8_0 => 8.5,
            QuantKind::Q5K => 5.5,
            QuantKind::Q4K => 4.5,
            QuantKind::Q3K => 3.4375,
            QuantKind::Q2K => 2.5625,
        }
    }

    /// Bytes needed to store `n` weights in this format.
    pub fn bytes_for(self, n: u64) -> u64 {
        ((n as f64) * self.bits_per_weight() / 8.0).ceil() as u64
    }

    /// The number of integer quantization levels used by the functional
    /// implementation in this crate (0 means "not quantized").
    fn levels(self) -> i32 {
        match self {
            QuantKind::F32 | QuantKind::F16 => 0,
            QuantKind::Q8_0 => 127,
            QuantKind::Q5K => 15,
            QuantKind::Q4K => 7,
            QuantKind::Q3K => 3,
            QuantKind::Q2K => 1,
        }
    }

    /// Parses the GGUF-style names used in the paper's tables
    /// (e.g. `"Q4_K_M"`, `"Q3_K_M"`, `"Q2_K"`, `"Q5_K"`).
    pub fn parse(name: &str) -> Option<Self> {
        let up = name.to_ascii_uppercase();
        let up = up.trim();
        Some(match up {
            "F32" | "FP32" => QuantKind::F32,
            "F16" | "FP16" => QuantKind::F16,
            "Q8_0" | "Q8" => QuantKind::Q8_0,
            s if s.starts_with("Q5") => QuantKind::Q5K,
            s if s.starts_with("Q4") => QuantKind::Q4K,
            s if s.starts_with("Q3") => QuantKind::Q3K,
            s if s.starts_with("Q2") => QuantKind::Q2K,
            _ => return None,
        })
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            QuantKind::F32 => "F32",
            QuantKind::F16 => "F16",
            QuantKind::Q8_0 => "Q8_0",
            QuantKind::Q5K => "Q5_K",
            QuantKind::Q4K => "Q4_K_M",
            QuantKind::Q3K => "Q3_K_M",
            QuantKind::Q2K => "Q2_K",
        }
    }
}

/// A single quantized block: `BLOCK_SIZE` weights stored as signed integers
/// plus one f32 scale.  Crate-visible so the `simd` module's fused
/// dequant-dot kernel can widen the integers in-register.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Block {
    pub(crate) scale: f32,
    pub(crate) q: [i8; BLOCK_SIZE],
}

/// A weight matrix stored in block-quantized form.
///
/// Shape is `[rows, cols]` with `cols` padded up to a multiple of
/// [`BLOCK_SIZE`] internally; dequantization and matmul ignore the padding.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    kind: QuantKind,
    rows: usize,
    cols: usize,
    blocks_per_row: usize,
    blocks: Vec<Block>,
}

impl QuantizedMatrix {
    /// Quantizes a 2-D tensor (interpreted as `[rows, cols]`) into blocks.
    ///
    /// `F32`/`F16` kinds are stored losslessly by using a per-block scale
    /// equal to the maximum magnitude with 127 levels — i.e. they fall back
    /// to `Q8_0` storage functionally, but report their own byte costs.
    pub fn quantize(t: &Tensor, kind: QuantKind) -> Result<Self> {
        if t.rank() > 2 {
            return Err(TensorError::IncompatibleShapes(
                "quantize expects a rank-1 or rank-2 tensor".to_string(),
            ));
        }
        let rows = t.rows();
        let cols = t.cols();
        let blocks_per_row = cols.div_ceil(BLOCK_SIZE);
        let levels = if kind.levels() == 0 {
            127
        } else {
            kind.levels()
        } as f32;
        let mut blocks = Vec::with_capacity(rows * blocks_per_row);
        for r in 0..rows {
            let row = t.row(r)?;
            for b in 0..blocks_per_row {
                let start = b * BLOCK_SIZE;
                let end = (start + BLOCK_SIZE).min(cols);
                let chunk = &row[start..end];
                let amax = chunk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = if amax > 0.0 { amax / levels } else { 0.0 };
                let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
                let mut q = [0i8; BLOCK_SIZE];
                for (i, &v) in chunk.iter().enumerate() {
                    let quantized = (v * inv).round().clamp(-levels, levels);
                    q[i] = quantized as i8;
                }
                blocks.push(Block { scale, q });
            }
        }
        Ok(Self {
            kind,
            rows,
            cols,
            blocks_per_row,
            blocks,
        })
    }

    /// The quantization format of this matrix.
    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reported storage footprint in bytes (per the format's nominal bit
    /// cost, not the in-memory representation of this functional model).
    pub fn nominal_bytes(&self) -> u64 {
        self.kind.bytes_for((self.rows * self.cols) as u64)
    }

    /// Dequantizes the matrix back to a dense tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for b in 0..self.blocks_per_row {
                let block = &self.blocks[r * self.blocks_per_row + b];
                let start = b * BLOCK_SIZE;
                let end = (start + BLOCK_SIZE).min(self.cols);
                for i in start..end {
                    data[r * self.cols + i] = block.q[i - start] as f32 * block.scale;
                }
            }
        }
        Tensor::from_vec(data, &[self.rows, self.cols]).expect("shape is consistent")
    }

    /// Computes `x · wᵀ` against the quantized weights with a **fused**
    /// kernel: integer weights are consumed in place (no dequantized copy),
    /// the per-block scale is applied once per block, and output rows /
    /// column blocks are distributed over the persistent worker pool.
    ///
    /// The input row is walked with `chunks(BLOCK_SIZE)` zipped against the
    /// weight row's blocks, so the per-block `(start..end)` bounds re-check
    /// the old kernel paid per element is hoisted out entirely; the final
    /// (possibly short) chunk pairs with the final block because blocks
    /// cover exactly `cols` elements (debug-asserted below).
    pub fn matmul_t(&self, x: &Tensor) -> Result<Tensor> {
        if x.cols() != self.cols {
            return Err(TensorError::IncompatibleShapes(format!(
                "quantized matmul: x has {} cols, w has {}",
                x.cols(),
                self.cols
            )));
        }
        debug_assert_eq!(
            self.blocks_per_row,
            self.cols.div_ceil(BLOCK_SIZE),
            "blocks must cover exactly the {} columns of a row",
            self.cols
        );
        debug_assert_eq!(self.blocks.len(), self.rows * self.blocks_per_row);
        let m = x.rows();
        let n = self.rows;
        let k = self.cols;
        let xd = x.data();
        let mut out = vec![0.0f32; m * n];
        if m == 1 {
            self.gemv_into(xd, &mut out);
        } else if m * n * k < ops::PAR_DISPATCH_MULADDS {
            for (i, orow) in out.chunks_mut(n).enumerate() {
                self.row_into(&xd[i * k..(i + 1) * k], orow);
            }
        } else {
            out.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
                self.row_into(&xd[i * k..(i + 1) * k], orow);
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Single-row fused product, dispatched through the same serial-below-
    /// threshold / column-block-parallel skeleton as the dense decode kernel
    /// (`ops::gemv_dispatch`).
    fn gemv_into(&self, x: &[f32], out: &mut [f32]) {
        ops::gemv_dispatch(self.cols, out, |j| self.fused_row_dot(j, x));
    }

    /// Fills `out[j] = x · w_jᵀ` for every output feature `j`.
    fn row_into(&self, xrow: &[f32], out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.fused_row_dot(j, xrow);
        }
    }

    /// The blocks making up quantized weight row `j`.
    #[inline]
    fn row_blocks(&self, j: usize) -> &[Block] {
        &self.blocks[j * self.blocks_per_row..(j + 1) * self.blocks_per_row]
    }

    /// Fused dot of `xrow` against quantized weight row `j`: one multiply by
    /// the block scale per block, integer weights widened in the inner loop
    /// (in-register with the `simd` feature — dense `f32` rows are never
    /// materialised either way).
    #[inline]
    fn fused_row_dot(&self, j: usize, xrow: &[f32]) -> f32 {
        #[cfg(feature = "simd")]
        {
            crate::simd::dot_q_row(xrow, self.row_blocks(j))
        }
        #[cfg(not(feature = "simd"))]
        {
            fused_row_dot_scalar(xrow, self.row_blocks(j))
        }
    }

    /// The fused kernel forced onto the scalar block-dot even when the
    /// `simd` feature is enabled — the "blocked" side of the kernels bench's
    /// q4 `simd_vs_blocked` comparison and the ground truth for the SIMD
    /// equivalence property tests.  Dispatches over the pool exactly like
    /// [`QuantizedMatrix::matmul_t`], so the two differ only in the row
    /// kernel.
    pub fn matmul_t_fused_scalar(&self, x: &Tensor) -> Result<Tensor> {
        if x.cols() != self.cols {
            return Err(TensorError::IncompatibleShapes(format!(
                "quantized matmul: x has {} cols, w has {}",
                x.cols(),
                self.cols
            )));
        }
        let m = x.rows();
        let n = self.rows;
        let k = self.cols;
        let xd = x.data();
        let mut out = vec![0.0f32; m * n];
        if m == 1 {
            ops::gemv_dispatch(k, &mut out, |j| {
                fused_row_dot_scalar(xd, self.row_blocks(j))
            });
        } else {
            for (i, orow) in out.chunks_mut(n).enumerate() {
                let xrow = &xd[i * k..(i + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = fused_row_dot_scalar(xrow, self.row_blocks(j));
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Reference fused product — the pre-optimisation serial kernel with its
    /// per-block slicing, kept as ground truth for the parallel kernel's
    /// equivalence property tests and the kernels bench's "before" side.
    pub fn matmul_t_reference(&self, x: &Tensor) -> Result<Tensor> {
        if x.cols() != self.cols {
            return Err(TensorError::IncompatibleShapes(format!(
                "quantized matmul: x has {} cols, w has {}",
                x.cols(),
                self.cols
            )));
        }
        let m = x.rows();
        let mut out = Tensor::zeros(&[m, self.rows]);
        for i in 0..m {
            let xrow = x.row(i)?.to_vec();
            for j in 0..self.rows {
                let mut acc = 0.0f32;
                for b in 0..self.blocks_per_row {
                    let block = &self.blocks[j * self.blocks_per_row + b];
                    let start = b * BLOCK_SIZE;
                    let end = (start + BLOCK_SIZE).min(self.cols);
                    let mut block_acc = 0.0f32;
                    for (xv, qv) in xrow[start..end].iter().zip(&block.q) {
                        block_acc += xv * *qv as f32;
                    }
                    acc += block_acc * block.scale;
                }
                out.set2(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Maximum absolute round-trip error versus the original tensor.
    pub fn max_abs_error(&self, original: &Tensor) -> f32 {
        let d = self.dequantize();
        d.data()
            .iter()
            .zip(original.data().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Convenience: relative matmul error introduced by quantizing `w` to `kind`.
///
/// Used by tests and by the perf model's documentation to justify which
/// formats remain usable for draft/target agreement.
pub fn quantization_matmul_error(x: &Tensor, w: &Tensor, kind: QuantKind) -> Result<f32> {
    let exact = ops::matmul_t(x, w)?;
    let q = QuantizedMatrix::quantize(w, kind)?;
    let approx = q.matmul_t(x)?;
    let mut num = 0.0f32;
    let mut den = 0.0f32;
    for (a, b) in exact.data().iter().zip(approx.data().iter()) {
        num += (a - b) * (a - b);
        den += a * a;
    }
    Ok(if den > 0.0 { (num / den).sqrt() } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(&mut rng, &[rows, cols], 1.0)
    }

    #[test]
    fn bits_per_weight_ordering() {
        assert!(QuantKind::F32.bits_per_weight() > QuantKind::F16.bits_per_weight());
        assert!(QuantKind::F16.bits_per_weight() > QuantKind::Q8_0.bits_per_weight());
        assert!(QuantKind::Q8_0.bits_per_weight() > QuantKind::Q5K.bits_per_weight());
        assert!(QuantKind::Q5K.bits_per_weight() > QuantKind::Q4K.bits_per_weight());
        assert!(QuantKind::Q4K.bits_per_weight() > QuantKind::Q3K.bits_per_weight());
        assert!(QuantKind::Q3K.bits_per_weight() > QuantKind::Q2K.bits_per_weight());
    }

    #[test]
    fn parse_gguf_names() {
        assert_eq!(QuantKind::parse("Q4_K_M"), Some(QuantKind::Q4K));
        assert_eq!(QuantKind::parse("Q3_K_M"), Some(QuantKind::Q3K));
        assert_eq!(QuantKind::parse("Q2_K"), Some(QuantKind::Q2K));
        assert_eq!(QuantKind::parse("q5_k"), Some(QuantKind::Q5K));
        assert_eq!(QuantKind::parse("f16"), Some(QuantKind::F16));
        assert_eq!(QuantKind::parse("bogus"), None);
    }

    #[test]
    fn bytes_for_70b_q3_is_about_30gb() {
        // 70e9 weights at ~3.44 bits ≈ 30 GB, matching the size class of the
        // Dolphin-70B Q3_K_M checkpoint used in the paper.
        let bytes = QuantKind::Q3K.bytes_for(70_000_000_000);
        let gb = bytes as f64 / 1e9;
        assert!(gb > 25.0 && gb < 35.0, "got {gb} GB");
    }

    #[test]
    fn q8_roundtrip_is_tight() {
        let w = random_matrix(8, 64, 1);
        let q = QuantizedMatrix::quantize(&w, QuantKind::Q8_0).unwrap();
        assert!(q.max_abs_error(&w) < 0.02);
    }

    #[test]
    fn q2_roundtrip_is_lossy_but_bounded() {
        let w = random_matrix(8, 64, 2);
        let q = QuantizedMatrix::quantize(&w, QuantKind::Q2K).unwrap();
        let err = q.max_abs_error(&w);
        assert!(err > 0.05, "Q2 should be visibly lossy, err={err}");
        assert!(
            err <= 1.0,
            "error bounded by block max magnitude, err={err}"
        );
    }

    #[test]
    fn error_increases_as_bits_decrease() {
        let w = random_matrix(16, 128, 3);
        let e8 = {
            let q = QuantizedMatrix::quantize(&w, QuantKind::Q8_0).unwrap();
            q.max_abs_error(&w)
        };
        let e4 = {
            let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
            q.max_abs_error(&w)
        };
        let e2 = {
            let q = QuantizedMatrix::quantize(&w, QuantKind::Q2K).unwrap();
            q.max_abs_error(&w)
        };
        assert!(e8 < e4 && e4 < e2, "e8={e8} e4={e4} e2={e2}");
    }

    #[test]
    fn quantized_matmul_approximates_exact() {
        let x = random_matrix(3, 64, 4);
        let w = random_matrix(5, 64, 5);
        let rel = quantization_matmul_error(&x, &w, QuantKind::Q8_0).unwrap();
        assert!(rel < 0.02, "relative error {rel}");
        let rel4 = quantization_matmul_error(&x, &w, QuantKind::Q4K).unwrap();
        assert!(rel4 < 0.2, "relative error {rel4}");
    }

    #[test]
    fn fused_matmul_matches_reference_kernel() {
        for (m, cols, seed) in [
            (1usize, 64usize, 10u64),
            (3, 50, 11),
            (5, 96, 12),
            (8, 33, 13),
        ] {
            let x = random_matrix(m, cols, seed);
            let w = random_matrix(7, cols, seed + 100);
            let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
            let fused = q.matmul_t(&x).unwrap();
            let reference = q.matmul_t_reference(&x).unwrap();
            assert_eq!(fused.shape(), reference.shape());
            for (a, b) in fused.data().iter().zip(reference.data().iter()) {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                    "m={m} cols={cols}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn quantized_matmul_shape_check() {
        let x = random_matrix(2, 32, 6);
        let w = random_matrix(4, 64, 7);
        let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
        assert!(q.matmul_t(&x).is_err());
    }

    #[test]
    fn non_multiple_of_block_size_columns() {
        let w = random_matrix(3, 50, 8);
        let q = QuantizedMatrix::quantize(&w, QuantKind::Q8_0).unwrap();
        let d = q.dequantize();
        assert_eq!(d.shape(), &[3, 50]);
        assert!(q.max_abs_error(&w) < 0.02);
    }

    #[test]
    fn nominal_bytes_scale_with_kind() {
        let w = random_matrix(8, 128, 9);
        let q4 = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
        let q8 = QuantizedMatrix::quantize(&w, QuantKind::Q8_0).unwrap();
        assert!(q4.nominal_bytes() < q8.nominal_bytes());
    }
}
