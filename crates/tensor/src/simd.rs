//! Explicit f32x8 SIMD kernels behind the `simd` feature.
//!
//! Every kernel exists in two implementations selected once per process by
//! `Isa::detect`:
//!
//! * **AVX2/FMA** (`core::arch::x86_64`) — 8-lane fused multiply-add inner
//!   loops for the dot products, in-register `i8 → f32` widening for the
//!   fused quantized kernel (weight rows are never materialised as dense
//!   `f32`), and 8-lane element-wise passes for RMSNorm / softmax / the
//!   SiLU-gate product (whose `exp` uses the Cephes polynomial, the same
//!   approximation llama.cpp ships).
//! * **Portable** — the identical loop structure over `[f32; 8]` arrays so
//!   the autovectoriser can still emit whatever the target offers; on a
//!   machine without AVX2 this is the fallback, and it is also what
//!   non-x86_64 builds compile to.
//!
//! The scalar kernels in [`crate::ops`] and [`crate::quant`] remain the
//! ground truth: `crates/tensor/tests/kernel_equivalence.rs` pins every SIMD
//! kernel to its scalar reference within 1e-4 relative error (the SIMD
//! accumulation order differs, so results are *close*, not bitwise equal, to
//! the scalar path — within one build the chosen path is fixed, so results
//! stay bitwise reproducible across runs and thread counts).

use crate::quant::{Block, BLOCK_SIZE};

/// Instruction set selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// `core::arch` AVX2 + FMA intrinsics.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// `[f32; 8]` lane arrays, autovectorised.
    Portable,
}

impl Isa {
    /// Runtime CPU detection, cached after the first call.
    fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static ISA: OnceLock<Isa> = OnceLock::new();
            *ISA.get_or_init(|| {
                if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                    Isa::Avx2Fma
                } else {
                    Isa::Portable
                }
            })
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Isa::Portable
        }
    }
}

/// Name of the active SIMD path (`"avx2+fma"` or `"portable-f32x8"`), for
/// bench/report labelling.
pub fn active_isa() -> &'static str {
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => "avx2+fma",
        Isa::Portable => "portable-f32x8",
    }
}

// ---------------------------------------------------------------------------
// Dot products
// ---------------------------------------------------------------------------

/// 8-lane dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { dot_avx2(a, b) },
        Isa::Portable => dot_portable(a, b),
    }
}

/// Four simultaneous 8-lane dots of `w` against `x0..x3`, streaming `w` once
/// (the tiled-GEMM inner kernel).
#[inline]
pub fn dot4(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
    let k = w.len();
    assert!(x0.len() == k && x1.len() == k && x2.len() == k && x3.len() == k);
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { dot4_avx2(w, x0, x1, x2, x3) },
        Isa::Portable => dot4_portable(w, x0, x1, x2, x3),
    }
}

/// Fused dot of an activation row against one quantized weight row.
///
/// Integer weights are widened in-register (never materialised as dense
/// `f32`), each block's scale is applied exactly once — in the main loop as
/// one fused multiply-add of the block accumulator, and hoisted out of the
/// ragged-tail element loop the same way.
#[inline]
pub(crate) fn dot_q_row(xrow: &[f32], blocks: &[Block]) -> f32 {
    debug_assert_eq!(blocks.len(), xrow.len().div_ceil(BLOCK_SIZE));
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { dot_q_row_avx2(xrow, blocks) },
        Isa::Portable => dot_q_row_portable(xrow, blocks),
    }
}

// ---------------------------------------------------------------------------
// Element-wise passes
// ---------------------------------------------------------------------------

/// Sum of squares (the RMSNorm reduction).
#[inline]
pub fn sum_squares(x: &[f32]) -> f32 {
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { sum_squares_avx2(x) },
        Isa::Portable => sum_squares_portable(x),
    }
}

/// RMSNorm application pass: `out[i] = x[i] * scale * w[i]`.
#[inline]
pub fn rmsnorm_apply(out: &mut [f32], x: &[f32], scale: f32, w: &[f32]) {
    debug_assert!(out.len() == x.len() && x.len() == w.len());
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { rmsnorm_apply_avx2(out, x, scale, w) },
        Isa::Portable => {
            for ((o, &v), &wv) in out.iter_mut().zip(x).zip(w) {
                *o = v * scale * wv;
            }
        }
    }
}

/// Maximum element (the softmax stabiliser).  Inputs are finite logits; NaN
/// handling matches `f32::max` only for finite data.
#[inline]
pub fn max_val(x: &[f32]) -> f32 {
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { max_avx2(x) },
        Isa::Portable => x.iter().copied().fold(f32::NEG_INFINITY, f32::max),
    }
}

/// Division pass of softmax normalisation: `x[i] /= d`.  IEEE division is
/// exact per element, so this is bitwise identical to the scalar loop.
#[inline]
pub fn div_inplace(x: &mut [f32], d: f32) {
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { div_avx2(x, d) },
        Isa::Portable => {
            for v in x.iter_mut() {
                *v /= d;
            }
        }
    }
}

/// Fused SwiGLU gate: `gate[i] = silu(gate[i]) * up[i]` in one pass.
///
/// The AVX2 path evaluates `exp` with the Cephes polynomial (~1e-7 relative
/// error); the portable path keeps the scalar `exp` but still fuses the two
/// loops the scalar code used to run.
#[inline]
pub fn silu_mul(gate: &mut [f32], up: &[f32]) {
    debug_assert_eq!(gate.len(), up.len());
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { silu_mul_avx2(gate, up) },
        Isa::Portable => {
            for (g, &u) in gate.iter_mut().zip(up) {
                *g = *g * (1.0 / (1.0 + (-*g).exp())) * u;
            }
        }
    }
}

/// Weighted accumulation `acc[i] += w * x[i]` (the attention value gather).
#[inline]
pub fn axpy(acc: &mut [f32], w: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    match Isa::detect() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => unsafe { axpy_avx2(acc, w, x) },
        Isa::Portable => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a += w * b;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable f32x8 implementations
// ---------------------------------------------------------------------------

/// Fixed reduction order shared by the portable kernels: pairwise over the 8
/// lanes, then the scalar tail.
#[inline]
fn hsum8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    let main = a.len() - a.len() % 8;
    let mut acc = [0.0f32; 8];
    for (av, bv) in a[..main].chunks_exact(8).zip(b[..main].chunks_exact(8)) {
        for l in 0..8 {
            acc[l] += av[l] * bv[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in a[main..].iter().zip(b[main..].iter()) {
        tail += x * y;
    }
    hsum8(acc) + tail
}

fn dot4_portable(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
    let k = w.len();
    let main = k - k % 8;
    let mut acc = [[0.0f32; 8]; 4];
    let mut i = 0;
    while i < main {
        for l in 0..8 {
            let wv = w[i + l];
            acc[0][l] += x0[i + l] * wv;
            acc[1][l] += x1[i + l] * wv;
            acc[2][l] += x2[i + l] * wv;
            acc[3][l] += x3[i + l] * wv;
        }
        i += 8;
    }
    let mut t = [0.0f32; 4];
    while i < k {
        t[0] += x0[i] * w[i];
        t[1] += x1[i] * w[i];
        t[2] += x2[i] * w[i];
        t[3] += x3[i] * w[i];
        i += 1;
    }
    [
        hsum8(acc[0]) + t[0],
        hsum8(acc[1]) + t[1],
        hsum8(acc[2]) + t[2],
        hsum8(acc[3]) + t[3],
    ]
}

fn dot_q_row_portable(xrow: &[f32], blocks: &[Block]) -> f32 {
    let full = xrow.len() / BLOCK_SIZE;
    let mut acc = [0.0f32; 8];
    for (b, block) in blocks.iter().enumerate().take(full) {
        let x = &xrow[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE];
        let mut bacc = [0.0f32; 8];
        for (xv, qv) in x.chunks_exact(8).zip(block.q.chunks_exact(8)) {
            for l in 0..8 {
                bacc[l] += xv[l] * qv[l] as f32;
            }
        }
        // One scale multiply per block, fused into the running accumulator.
        for l in 0..8 {
            acc[l] += bacc[l] * block.scale;
        }
    }
    let mut sum = hsum8(acc);
    let rem = xrow.len() % BLOCK_SIZE;
    if rem != 0 {
        // Ragged tail block: same structure — unscaled element loop, then one
        // scale multiply hoisted out of it.
        let block = &blocks[full];
        let x = &xrow[full * BLOCK_SIZE..];
        let mut bacc = 0.0f32;
        for (xv, qv) in x.iter().zip(block.q.iter()) {
            bacc += xv * *qv as f32;
        }
        sum += bacc * block.scale;
    }
    sum
}

fn sum_squares_portable(x: &[f32]) -> f32 {
    let main = x.len() - x.len() % 8;
    let mut acc = [0.0f32; 8];
    for xv in x[..main].chunks_exact(8) {
        for l in 0..8 {
            acc[l] += xv[l] * xv[l];
        }
    }
    let mut tail = 0.0f32;
    for v in &x[main..] {
        tail += v * v;
    }
    hsum8(acc) + tail
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Block, BLOCK_SIZE};
    use core::arch::x86_64::*;

    /// Horizontal sum of one 8-lane register (fixed reduction order).
    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let hi2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, hi2))
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut sum = hsum256(acc);
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// Each row accumulates in exactly [`dot_avx2`]'s order — four fmadd
    /// chains over 32-element chunks, an 8-wide cleanup into chain 0, the
    /// `(a0+a1)+(a2+a3)` reduction, then the scalar tail — so a value
    /// computed through the tiled path is bitwise identical to the per-row
    /// GEMV path.  Iteration-level batching depends on this: fusing
    /// requests into a forest batch regroups rows into different tiles, and
    /// the row results must not change with tile membership.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot4_avx2(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
        let k = w.len();
        let pw = w.as_ptr();
        let ps = [x0.as_ptr(), x1.as_ptr(), x2.as_ptr(), x3.as_ptr()];
        let mut acc = [[_mm256_setzero_ps(); 4]; 4];
        let mut i = 0;
        while i + 32 <= k {
            let w0 = _mm256_loadu_ps(pw.add(i));
            let w1 = _mm256_loadu_ps(pw.add(i + 8));
            let w2 = _mm256_loadu_ps(pw.add(i + 16));
            let w3 = _mm256_loadu_ps(pw.add(i + 24));
            for (a, p) in acc.iter_mut().zip(ps) {
                a[0] = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(i)), w0, a[0]);
                a[1] = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(i + 8)), w1, a[1]);
                a[2] = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(i + 16)), w2, a[2]);
                a[3] = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(i + 24)), w3, a[3]);
            }
            i += 32;
        }
        while i + 8 <= k {
            let wv = _mm256_loadu_ps(pw.add(i));
            for (a, p) in acc.iter_mut().zip(ps) {
                a[0] = _mm256_fmadd_ps(_mm256_loadu_ps(p.add(i)), wv, a[0]);
            }
            i += 8;
        }
        let mut out = [0.0f32; 4];
        for (o, a) in out.iter_mut().zip(acc) {
            *o = hsum256(_mm256_add_ps(
                _mm256_add_ps(a[0], a[1]),
                _mm256_add_ps(a[2], a[3]),
            ));
        }
        while i < k {
            out[0] += x0[i] * w[i];
            out[1] += x1[i] * w[i];
            out[2] += x2[i] * w[i];
            out[3] += x3[i] * w[i];
            i += 1;
        }
        out
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_q_row_avx2(xrow: &[f32], blocks: &[Block]) -> f32 {
        let full = xrow.len() / BLOCK_SIZE;
        let mut acc = _mm256_setzero_ps();
        for (b, block) in blocks.iter().enumerate().take(full) {
            let px = xrow.as_ptr().add(b * BLOCK_SIZE);
            let pq = block.q.as_ptr();
            let mut bacc = _mm256_setzero_ps();
            for j in 0..BLOCK_SIZE / 8 {
                // Widen 8 i8 weights to f32 entirely in registers.
                let qi = _mm_loadl_epi64(pq.add(8 * j) as *const __m128i);
                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                bacc = _mm256_fmadd_ps(_mm256_loadu_ps(px.add(8 * j)), qf, bacc);
            }
            // One scale multiply per block, fused into the running total.
            acc = _mm256_fmadd_ps(bacc, _mm256_set1_ps(block.scale), acc);
        }
        let mut sum = hsum256(acc);
        let rem = xrow.len() % BLOCK_SIZE;
        if rem != 0 {
            // Ragged tail block: unscaled element loop, scale applied once.
            let block = &blocks[full];
            let x = &xrow[full * BLOCK_SIZE..];
            let mut bacc = 0.0f32;
            for (xv, qv) in x.iter().zip(block.q.iter()) {
                bacc += xv * *qv as f32;
            }
            sum += bacc * block.scale;
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_squares_avx2(x: &[f32]) -> f32 {
        let n = x.len();
        let p = x.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let v0 = _mm256_loadu_ps(p.add(i));
            let v1 = _mm256_loadu_ps(p.add(i + 8));
            acc0 = _mm256_fmadd_ps(v0, v0, acc0);
            acc1 = _mm256_fmadd_ps(v1, v1, acc1);
            i += 16;
        }
        while i + 8 <= n {
            let v = _mm256_loadu_ps(p.add(i));
            acc0 = _mm256_fmadd_ps(v, v, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += x[i] * x[i];
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn rmsnorm_apply_avx2(out: &mut [f32], x: &[f32], scale: f32, w: &[f32]) {
        let n = out.len();
        let s = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr().add(i)), s);
            let r = _mm256_mul_ps(v, _mm256_loadu_ps(w.as_ptr().add(i)));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            out[i] = x[i] * scale * w[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_avx2(x: &[f32]) -> f32 {
        let n = x.len();
        let mut i = 0;
        let mut m = f32::NEG_INFINITY;
        if n >= 8 {
            let mut mv = _mm256_loadu_ps(x.as_ptr());
            i = 8;
            while i + 8 <= n {
                mv = _mm256_max_ps(mv, _mm256_loadu_ps(x.as_ptr().add(i)));
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
            for l in lanes {
                m = m.max(l);
            }
        }
        while i < n {
            m = m.max(x[i]);
            i += 1;
        }
        m
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn div_avx2(x: &mut [f32], d: f32) {
        let n = x.len();
        let dv = _mm256_set1_ps(d);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_div_ps(_mm256_loadu_ps(x.as_ptr().add(i)), dv);
            _mm256_storeu_ps(x.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            x[i] /= d;
            i += 1;
        }
    }

    /// 8-lane `exp` via the Cephes polynomial (as in llama.cpp / sse_mathfun):
    /// range-reduce by `log 2`, 5th-order polynomial on the remainder,
    /// reassemble the exponent through the float bit pattern.  Inputs are
    /// clamped to ±88.38 so the result never overflows to infinity.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp256(x: __m256) -> __m256 {
        let hi = _mm256_set1_ps(88.376_26);
        let lo = _mm256_set1_ps(-88.376_26);
        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let c1 = _mm256_set1_ps(0.693_359_4);
        let c2 = _mm256_set1_ps(-2.121_944_4e-4);
        let x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
        let fx = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5)));
        // r = x - fx * ln2 (split constant for accuracy).
        let r = _mm256_fnmadd_ps(fx, c1, x);
        let r = _mm256_fnmadd_ps(fx, c2, r);
        let r2 = _mm256_mul_ps(r, r);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.666_666_5e-1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.000_000_3e-1));
        y = _mm256_fmadd_ps(y, r2, r);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // 2^fx through the exponent bits.
        let emm = _mm256_add_epi32(_mm256_cvtps_epi32(fx), _mm256_set1_epi32(0x7f));
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32(emm, 23));
        _mm256_mul_ps(y, pow2)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn silu_mul_avx2(gate: &mut [f32], up: &[f32]) {
        let n = gate.len();
        let one = _mm256_set1_ps(1.0);
        let mut i = 0;
        while i + 8 <= n {
            let g = _mm256_loadu_ps(gate.as_ptr().add(i));
            let e = exp256(_mm256_sub_ps(_mm256_setzero_ps(), g));
            let sig = _mm256_div_ps(one, _mm256_add_ps(one, e));
            let r = _mm256_mul_ps(_mm256_mul_ps(g, sig), _mm256_loadu_ps(up.as_ptr().add(i)));
            _mm256_storeu_ps(gate.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            let g = gate[i];
            gate[i] = g * (1.0 / (1.0 + (-g).exp())) * up[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_avx2(acc: &mut [f32], w: f32, x: &[f32]) {
        let n = acc.len();
        let wv = _mm256_set1_ps(w);
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_ps(acc.as_ptr().add(i));
            let r = _mm256_fmadd_ps(wv, _mm256_loadu_ps(x.as_ptr().add(i)), a);
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), r);
            i += 8;
        }
        while i < n {
            acc[i] += w * x[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    axpy_avx2, div_avx2, dot4_avx2, dot_avx2, dot_q_row_avx2, max_avx2, rmsnorm_apply_avx2,
    silu_mul_avx2, sum_squares_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_scalar_on_ragged_lengths() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 100, 512] {
            let a = seq(n, |i| (i as f32 * 0.37).sin());
            let b = seq(n, |i| (i as f32 * 0.11).cos());
            let fast = dot(&a, &b);
            let slow = crate::ops::dot_scalar(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-4 * slow.abs().max(1.0),
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn dot4_matches_four_dots() {
        for k in [1usize, 5, 8, 17, 31, 32, 33, 64, 130, 512] {
            let w = seq(k, |i| (i as f32 * 0.3).sin());
            let xs: Vec<Vec<f32>> = (0..4)
                .map(|r| seq(k, |i| ((i + r) as f32 * 0.7).cos()))
                .collect();
            let got = dot4(&w, &xs[0], &xs[1], &xs[2], &xs[3]);
            for r in 0..4 {
                let want = crate::ops::dot_scalar(&w, &xs[r]);
                assert!(
                    (got[r] - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "k={k} r={r}: {} vs {want}",
                    got[r]
                );
                // Tile-independence: the tiled kernel's row must be BITWISE
                // equal to the per-row kernel — forest batching regroups
                // rows into different tiles and must not change any bits.
                assert_eq!(
                    got[r].to_bits(),
                    dot(&xs[r], &w).to_bits(),
                    "k={k} r={r}: dot4 must equal dot exactly"
                );
            }
        }
    }

    #[test]
    fn elementwise_passes_match_scalar() {
        let x = seq(67, |i| (i as f32 * 0.21).sin() * 3.0);
        let w = seq(67, |i| 0.5 + (i as f32 * 0.05).cos());

        let ss = sum_squares(&x);
        let ss_ref: f32 = x.iter().map(|v| v * v).sum();
        assert!((ss - ss_ref).abs() <= 1e-4 * ss_ref.max(1.0));

        let mut out = vec![0.0f32; x.len()];
        rmsnorm_apply(&mut out, &x, 0.125, &w);
        for i in 0..x.len() {
            let want = x[i] * 0.125 * w[i];
            assert!((out[i] - want).abs() <= 1e-6 * want.abs().max(1.0));
        }

        assert_eq!(
            max_val(&x),
            x.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        );

        let mut d = x.clone();
        div_inplace(&mut d, 3.5);
        for i in 0..x.len() {
            assert_eq!(d[i], x[i] / 3.5, "division must be exact per element");
        }
    }

    #[test]
    fn silu_mul_matches_scalar_within_tolerance() {
        let n = 100;
        let gate_ref = seq(n, |i| (i as f32 - 50.0) * 0.6);
        let up = seq(n, |i| 1.0 + (i as f32 * 0.13).sin());
        let mut gate = gate_ref.clone();
        silu_mul(&mut gate, &up);
        for i in 0..n {
            let g = gate_ref[i];
            let want = g * (1.0 / (1.0 + (-g).exp())) * up[i];
            assert!(
                (gate[i] - want).abs() <= 1e-4 * want.abs().max(1.0),
                "i={i}: {} vs {want}",
                gate[i]
            );
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        let x = seq(45, |i| (i as f32 * 0.4).cos());
        let mut acc = seq(45, |i| i as f32 * 0.01);
        let mut acc_ref = acc.clone();
        axpy(&mut acc, 1.75, &x);
        for (a, &b) in acc_ref.iter_mut().zip(x.iter()) {
            *a += 1.75 * b;
        }
        for i in 0..45 {
            assert!((acc[i] - acc_ref[i]).abs() <= 1e-5 * acc_ref[i].abs().max(1.0));
        }
    }

    #[test]
    fn active_isa_reports_a_path() {
        let isa = active_isa();
        assert!(isa == "avx2+fma" || isa == "portable-f32x8");
    }
}
