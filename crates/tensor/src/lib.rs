//! # pi-tensor
//!
//! Minimal dense-tensor and transformer-kernel library used by the PipeInfer
//! reproduction.
//!
//! The crate provides exactly what a decoder-only transformer needs:
//!
//! * [`Tensor`] — a row-major, owned, `f32` tensor with 1-D/2-D/3-D views.
//! * [`ops`] — matrix multiplication, softmax, RMSNorm, SiLU/SwiGLU, rotary
//!   position embeddings (RoPE) and element-wise helpers. Matrix products are
//!   parallelised with rayon over output rows.
//! * [`quant`] — block quantization formats modelled after the GGML `Q8_0`,
//!   `Q4_K`, `Q3_K` and `Q2_K` families.  They are used both functionally
//!   (quantize → dequantize → matmul round trips in tests) and analytically
//!   (bytes-per-weight accounting for the memory-footprint model in
//!   `pi-perf`).
//!
//! The library is deliberately small and dependency-free (rand is only used
//! for initialisation helpers); it is not meant to compete with full tensor
//! frameworks, only to provide a faithful, testable substrate for the
//! scheduling algorithms under study.

pub mod ops;
pub mod quant;
pub mod tensor;

pub use quant::{QuantKind, QuantizedMatrix};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The requested shape does not match the provided data length.
    ShapeMismatch {
        /// Expected number of elements implied by the shape.
        expected: usize,
        /// Actual number of elements provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested kernel.
    IncompatibleShapes(String),
    /// An index was out of bounds for the tensor shape.
    OutOfBounds(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IncompatibleShapes(msg) => write!(f, "incompatible shapes: {msg}"),
            TensorError::OutOfBounds(msg) => write!(f, "index out of bounds: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
