//! # pi-tensor
//!
//! Minimal dense-tensor and transformer-kernel library used by the PipeInfer
//! reproduction.
//!
//! The crate provides exactly what a decoder-only transformer needs:
//!
//! * [`Tensor`] — a row-major, owned, `f32` tensor with 1-D/2-D/3-D views.
//! * [`ops`] — matrix multiplication, softmax, RMSNorm, SiLU/SwiGLU, rotary
//!   position embeddings (RoPE) and element-wise helpers. Matrix products are
//!   parallelised with rayon over output rows.
//! * [`quant`] — block quantization formats modelled after the GGML `Q8_0`,
//!   `Q4_K`, `Q3_K` and `Q2_K` families.  They are used both functionally
//!   (quantize → dequantize → matmul round trips in tests) and analytically
//!   (bytes-per-weight accounting for the memory-footprint model in
//!   `pi-perf`).
//!
//! The library is deliberately small and dependency-free (rand is only used
//! for initialisation helpers); it is not meant to compete with full tensor
//! frameworks, only to provide a faithful, testable substrate for the
//! scheduling algorithms under study.
//!
//! ## Feature flags
//!
//! * **`simd`** — routes the hot kernels (dense dot/dot4, the fused
//!   quantized row dot, RMSNorm, softmax, the SiLU gate, axpy) through the
//!   explicit f32x8 kernels of the `simd` module: `core::arch` AVX2/FMA
//!   when the CPU
//!   has it (detected once at runtime), a portable array-of-8 fallback
//!   otherwise.  The scalar kernels stay compiled as the ground truth
//!   (`ops::dot_scalar`, `ops::matmul_t_blocked_scalar`,
//!   `QuantizedMatrix::matmul_t_fused_scalar`); SIMD results match them to
//!   ~1e-4 relative, and greedy generation produces byte-identical token
//!   streams with the feature on and off.
//!
//! ## Environment
//!
//! * **`PIPEINFER_THREADS`** — caps the persistent worker pool that
//!   parallel matmuls run on (re-read on every call; `1` forces fully
//!   serial in-caller execution).  Results are bitwise independent of the
//!   setting: every output element is accumulated in a fixed order no
//!   matter which thread computes it.

pub mod ops;
pub mod quant;
#[cfg(feature = "simd")]
pub mod simd;
pub mod tensor;

pub use quant::{QuantKind, QuantizedMatrix};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The requested shape does not match the provided data length.
    ShapeMismatch {
        /// Expected number of elements implied by the shape.
        expected: usize,
        /// Actual number of elements provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested kernel.
    IncompatibleShapes(String),
    /// An index was out of bounds for the tensor shape.
    OutOfBounds(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::IncompatibleShapes(msg) => write!(f, "incompatible shapes: {msg}"),
            TensorError::OutOfBounds(msg) => write!(f, "index out of bounds: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
