//! Row-major owned `f32` tensor.
//!
//! The tensor is intentionally simple: owned storage in a `Vec<f32>`, a shape
//! of up to three dimensions, and cheap row/slice views.  All transformer
//! kernels in [`crate::ops`] operate on these tensors or on raw slices
//! obtained from them.

use crate::{Result, TensorError};
use rand::Rng;

/// A dense, row-major, owned `f32` tensor with a dynamic shape.
///
/// Shapes are stored as a `Vec<usize>`; only ranks 1–3 are used by the
/// transformer code, but the type itself is rank-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the data length does not
    /// equal the product of the shape dimensions.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Self {
            data: vec![0.0; n],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor with elements drawn uniformly from `[-scale, scale]`.
    ///
    /// Used for synthetic model initialisation; the caller provides the RNG so
    /// that model construction is fully deterministic under a fixed seed.
    pub fn rand_uniform<R: Rng>(rng: &mut R, shape: &[usize], scale: f32) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows when the tensor is interpreted as a 2-D matrix.
    ///
    /// Rank-1 tensors are treated as a single row.
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            0 | 1 => 1,
            _ => self.shape[..self.shape.len() - 1].iter().product(),
        }
    }

    /// Number of columns when the tensor is interpreted as a 2-D matrix.
    pub fn cols(&self) -> usize {
        *self.shape.last().unwrap_or(&0)
    }

    /// Returns row `r` of the matrix view as a slice.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        let cols = self.cols();
        if r >= self.rows() {
            return Err(TensorError::OutOfBounds(format!(
                "row {r} out of {} rows",
                self.rows()
            )));
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Returns row `r` of the matrix view as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        let cols = self.cols();
        if r >= self.rows() {
            return Err(TensorError::OutOfBounds(format!(
                "row {r} out of {} rows",
                self.rows()
            )));
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Element access for 2-D tensors (row, col).
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols() + c]
    }

    /// Mutable element access for 2-D tensors (row, col).
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        let cols = self.cols();
        self.data[r * cols + c] = v;
    }

    /// L2 norm of the whole tensor; handy in tests.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum element (argmax) of a rank-1 tensor or of the
    /// flattened storage.  Ties resolve to the lowest index, which mirrors the
    /// greedy-sampling determinism requirement of the paper's evaluation.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    /// Returns the approximate heap size of the tensor in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).is_err());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn rows_cols_and_row_access() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(t.row(3).is_err());
    }

    #[test]
    fn rank3_rows_flatten_leading_dims() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.rows(), 6);
        assert_eq!(t.cols(), 4);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn argmax_ties_resolve_to_lowest_index() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn rand_uniform_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ta = Tensor::rand_uniform(&mut a, &[8, 8], 0.1);
        let tb = Tensor::rand_uniform(&mut b, &[8, 8], 0.1);
        assert_eq!(ta, tb);
        assert!(ta.data().iter().all(|x| x.abs() <= 0.1));
    }

    #[test]
    fn at2_set2_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set2(1, 0, 3.5);
        assert_eq!(t.at2(1, 0), 3.5);
        assert_eq!(t.at2(0, 0), 0.0);
    }
}
