//! Transformer kernels: matmul, softmax, RMSNorm, SiLU, RoPE.
//!
//! Kernels operate on [`Tensor`]s or raw `f32` slices.  The only
//! parallelised kernel is [`matmul_t`] (weights-transposed matrix product),
//! which dominates runtime for real tiny-model execution.  It runs on the
//! persistent worker pool and is **blocked**: the single-row (decode) case
//! splits the output row into column blocks, the multi-row
//! (speculative-verify) case distributes a 2-D grid of 4-row tiles ×
//! column blocks so even an `m = 4` verify batch fans out across threads.
//! Chunk sizes come from `rayon::pool::chunk_size` (≈4 chunks per
//! configured thread, with a minimum work floor), and workloads below
//! `PAR_DISPATCH_MULADDS` multiply-adds stay on the calling thread — pool
//! dispatch costs more than tiny-model matmuls.
//!
//! The dot-product inner loops exist in two flavours behind the
//! private `DotKernel` trait: the scalar 4-accumulator kernels (always
//! compiled,
//! the property-test ground truth, exposed via [`dot_scalar`] and
//! [`matmul_t_blocked_scalar`]), and — with the `simd` feature — the
//! explicit f32x8 kernels of `crate::simd`, which `matmul_t` then uses by
//! default.
//!
//! Determinism: every output element is accumulated in a fixed order
//! regardless of thread count, chunking, or tiling, so results are bitwise
//! reproducible across `PIPEINFER_THREADS` settings within one build.  The
//! `simd` build's accumulation order differs from the scalar build's (8-wide
//! lanes vs 4-wide), so *across* the two builds results agree to ~1e-4
//! relative, not bitwise — the kernel-equivalence property tests pin exactly
//! that.  All other kernels are O(tokens × hidden) and not worth
//! parallelising at the model sizes this reproduction executes for real.

use crate::{Result, Tensor, TensorError};
use rayon::pool;
use rayon::prelude::*;

/// Multiply-add count below which a matmul runs serially on the caller:
/// dispatching to the pool costs a few microseconds, which dominates the
/// tiny-model (d≈64) per-token products.
pub(crate) const PAR_DISPATCH_MULADDS: usize = 32 * 1024;

/// The dot-product kernel pair every blocked matmul path is generic over:
/// the scalar autovectorising loops, or (with the `simd` feature) the
/// explicit f32x8 kernels.  Both flavours stay compiled so the bench can
/// compare them and the property tests can pin one to the other.
pub(crate) trait DotKernel {
    fn dot(a: &[f32], b: &[f32]) -> f32;
    fn dot4(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4];
}

/// The pre-SIMD 4-accumulator kernels (ground truth).
pub(crate) struct ScalarKernel;

impl DotKernel for ScalarKernel {
    #[inline]
    fn dot(a: &[f32], b: &[f32]) -> f32 {
        dot_scalar(a, b)
    }
    #[inline]
    fn dot4(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
        dot4_scalar(w, x0, x1, x2, x3)
    }
}

/// The explicit f32x8 kernels of [`crate::simd`].
#[cfg(feature = "simd")]
pub(crate) struct SimdKernel;

#[cfg(feature = "simd")]
impl DotKernel for SimdKernel {
    #[inline]
    fn dot(a: &[f32], b: &[f32]) -> f32 {
        crate::simd::dot(a, b)
    }
    #[inline]
    fn dot4(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
        crate::simd::dot4(w, x0, x1, x2, x3)
    }
}

/// Kernel used by the public entry points in this build.
#[cfg(feature = "simd")]
pub(crate) type DefaultKernel = SimdKernel;
/// Kernel used by the public entry points in this build.
#[cfg(not(feature = "simd"))]
pub(crate) type DefaultKernel = ScalarKernel;

/// Computes `out = x · wᵀ` where `x` is `[m, k]` and `w` is `[n, k]`.
///
/// This is the natural layout for transformer weight matrices (each output
/// feature is a row of `w`), and lets the inner loop be a contiguous dot
/// product.  See the module docs for the blocking/tiling scheme.
pub fn matmul_t(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let mut out = vec![0.0f32; m * n];
    matmul_t_into(x.data(), w.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Raw-slice core of [`matmul_t`]: `x` is `[m, k]`, `w` is `[n, k]`, `out`
/// is `[m, n]`, all row-major.  Lets callers (the transformer forward pass)
/// reuse scratch output buffers instead of allocating a tensor per product.
pub fn matmul_t_into(xd: &[f32], wd: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_t_into_with::<DefaultKernel>(xd, wd, m, k, n, out);
}

/// [`matmul_t`] forced onto the scalar 4-accumulator kernels even when the
/// `simd` feature is enabled — the ground truth for the SIMD equivalence
/// property tests and the "blocked" side of the kernels bench's
/// `simd_vs_blocked` comparison.
pub fn matmul_t_blocked_scalar(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let mut out = vec![0.0f32; m * n];
    matmul_t_into_with::<ScalarKernel>(x.data(), w.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Kernel-generic core shared by [`matmul_t_into`] and
/// [`matmul_t_blocked_scalar`].
fn matmul_t_into_with<K: DotKernel>(
    xd: &[f32],
    wd: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(xd.len(), m * k, "x data does not match [m, k]");
    assert_eq!(wd.len(), n * k, "w data does not match [n, k]");
    assert_eq!(out.len(), m * n, "out does not match [m, n]");
    if m == 0 || n == 0 {
        return;
    }
    if m == 1 {
        gemv_t::<K>(xd, wd, k, n, out);
    } else {
        gemm_t_tiled::<K>(xd, wd, k, n, out);
    }
}

/// Single-row `x · wᵀ` writing into `out` (`[n]`), where `w` is `[n, k]`.
///
/// The decode-path convenience wrapper over [`matmul_t_into`] used by the
/// transformer's scratch-buffer arena.
pub fn matvec_t_into(x: &[f32], w: &Tensor, out: &mut [f32]) -> Result<()> {
    let k = w.cols();
    let n = w.rows();
    if x.len() != k || out.len() != n {
        return Err(TensorError::IncompatibleShapes(format!(
            "matvec_t: x has {} elements, out has {}, w is [{n}, {k}]",
            x.len(),
            out.len()
        )));
    }
    gemv_t::<DefaultKernel>(x, w.data(), k, n, out);
    Ok(())
}

/// Dispatch skeleton shared by the dense and quantized single-row products:
/// fills `out[j] = row_dot(j)` for every output feature `j`, serially below
/// [`PAR_DISPATCH_MULADDS`] multiply-adds (`k` per element), otherwise
/// parallel over column blocks sized by the pool's chunk policy (≈4 chunks
/// per configured thread, each carrying a minimum amount of work).
pub(crate) fn gemv_dispatch<F>(k: usize, out: &mut [f32], row_dot: F)
where
    F: Fn(usize) -> f32 + Sync,
{
    let n = out.len();
    if n * k < PAR_DISPATCH_MULADDS {
        for (j, o) in out.iter_mut().enumerate() {
            *o = row_dot(j);
        }
        return;
    }
    let block = pool::chunk_size(n, k);
    out.par_chunks_mut(block)
        .enumerate()
        .for_each(|(b, chunk)| {
            let j0 = b * block;
            for (dj, o) in chunk.iter_mut().enumerate() {
                *o = row_dot(j0 + dj);
            }
        });
}

/// Matrix-vector product (`m == 1`): each output element is an independent
/// dot of `x` against one weight row, dispatched via [`gemv_dispatch`].
fn gemv_t<K: DotKernel>(x: &[f32], wd: &[f32], k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), n);
    gemv_dispatch(k, out, |j| K::dot(x, &wd[j * k..(j + 1) * k]));
}

/// Raw output pointer shared across the pool's tile × column-block tasks.
/// Each output element belongs to exactly one task (tiles partition the
/// rows, column blocks partition the columns), so concurrent writes never
/// overlap.
struct OutPtr(*mut f32);
unsafe impl Sync for OutPtr {}
unsafe impl Send for OutPtr {}

/// Multi-row product tiled over 4 input rows: each weight row is streamed
/// from memory once per tile instead of once per input row, which is the
/// dominant traffic for the speculative-verify batches (`m` in 2..=16).
///
/// Parallel work is a 2-D grid of row tiles × column blocks.  The old
/// row-tile-only split gave an `m = 4` verify batch exactly one work item —
/// zero parallelism on the shape the speculation path cares most about; the
/// column dimension restores the fan-out (an `m=4, n=512` product now splits
/// into `ceil(512 / chunk)` tasks).  The remainder tile (`m % 4` rows) falls
/// back to per-row dots that accumulate in the identical order.
fn gemm_t_tiled<K: DotKernel>(xd: &[f32], wd: &[f32], k: usize, n: usize, out: &mut [f32]) {
    const TILE: usize = 4;
    let m = out.len() / n;
    let n_tiles = m.div_ceil(TILE);
    // The per-element computation is identical either way; only the dispatch
    // differs, so small products skip the pool (same threshold as the GEMV
    // path) while producing bitwise-identical results.
    if m * n * k < PAR_DISPATCH_MULADDS {
        for t in 0..n_tiles {
            gemm_tile_cols::<K>(xd, wd, k, n, m, t, 0, n, out.as_mut_ptr());
        }
        return;
    }
    let col_block = pool::chunk_size(n, TILE * k);
    let n_col_blocks = n.div_ceil(col_block);
    let base = OutPtr(out.as_mut_ptr());
    let base = &base;
    pool::global().run(n_tiles * n_col_blocks, &|task| {
        let t = task / n_col_blocks;
        let j0 = (task % n_col_blocks) * col_block;
        let j1 = (j0 + col_block).min(n);
        gemm_tile_cols::<K>(xd, wd, k, n, m, t, j0, j1, base.0);
    });
}

/// Computes row tile `t` (up to 4 consecutive output rows) of the tiled
/// product, restricted to output columns `j0..j1`, writing through the raw
/// output pointer (each element is owned by exactly one task of the 2-D
/// grid — see [`gemm_t_tiled`]).
#[allow(clippy::too_many_arguments)]
fn gemm_tile_cols<K: DotKernel>(
    xd: &[f32],
    wd: &[f32],
    k: usize,
    n: usize,
    m: usize,
    t: usize,
    j0: usize,
    j1: usize,
    out: *mut f32,
) {
    const TILE: usize = 4;
    let i0 = t * TILE;
    let rows = (m - i0).min(TILE);
    let xt = &xd[i0 * k..(i0 + rows) * k];
    if rows == TILE {
        let (x0, x1, x2, x3) = (
            &xt[..k],
            &xt[k..2 * k],
            &xt[2 * k..3 * k],
            &xt[3 * k..4 * k],
        );
        for j in j0..j1 {
            let wrow = &wd[j * k..(j + 1) * k];
            let d = K::dot4(wrow, x0, x1, x2, x3);
            unsafe {
                *out.add(i0 * n + j) = d[0];
                *out.add((i0 + 1) * n + j) = d[1];
                *out.add((i0 + 2) * n + j) = d[2];
                *out.add((i0 + 3) * n + j) = d[3];
            }
        }
    } else {
        for j in j0..j1 {
            let wrow = &wd[j * k..(j + 1) * k];
            for r in 0..rows {
                let v = K::dot(&xt[r * k..(r + 1) * k], wrow);
                unsafe {
                    *out.add((i0 + r) * n + j) = v;
                }
            }
        }
    }
}

/// Reference `x · wᵀ` — the pre-optimisation scalar kernel, kept as the
/// ground truth for the blocked kernel's equivalence property tests and as
/// the "before" side of `cargo bench -p pi-bench --bench kernels`.
pub fn matmul_t_naive(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let xd = x.data();
    let wd = w.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let xrow = &xd[i * k..(i + 1) * k];
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (a, b) in xrow.iter().zip(wrow.iter()) {
                acc += a * b;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two equal-length slices, using this build's default
/// kernel (scalar, or f32x8 with the `simd` feature).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    DefaultKernel::dot(a, b)
}

/// Scalar dot product of two equal-length slices — the ground-truth kernel.
///
/// Four independent accumulators break the serial floating-point dependency
/// chain so the loop autovectorises; the accumulation order is fixed
/// (lane-wise, then `(a0+a1)+(a2+a3)`, then the scalar tail) to keep results
/// bitwise deterministic.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % 4;
    let mut acc = [0.0f32; 4];
    for (av, bv) in a[..main].chunks_exact(4).zip(b[..main].chunks_exact(4)) {
        acc[0] += av[0] * bv[0];
        acc[1] += av[1] * bv[1];
        acc[2] += av[2] * bv[2];
        acc[3] += av[3] * bv[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in a[main..].iter().zip(b[main..].iter()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Four simultaneous scalar dots of `w` against `x0..x3`, streaming `w`
/// once.
///
/// Each lane accumulates in exactly the same order as [`dot_scalar`], so a
/// value computed through the scalar tiled path is bitwise identical to the
/// scalar per-row path.  (The SIMD `dot4` upholds the same contract against
/// the SIMD `dot`; the two builds still differ from each other at the last
/// few ulps.)  Iteration-level batching relies on this tile-independence:
/// fusing requests into one forest batch regroups rows into different
/// 4-row tiles, and the fused forward must stay bitwise equal to solo.
#[inline]
fn dot4_scalar(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
    let k = w.len();
    assert!(x0.len() == k && x1.len() == k && x2.len() == k && x3.len() == k);
    let main = k - k % 4;
    let mut a0 = [0.0f32; 4];
    let mut a1 = [0.0f32; 4];
    let mut a2 = [0.0f32; 4];
    let mut a3 = [0.0f32; 4];
    let mut i = 0;
    while i < main {
        let (w0, w1, w2, w3) = (w[i], w[i + 1], w[i + 2], w[i + 3]);
        a0[0] += x0[i] * w0;
        a0[1] += x0[i + 1] * w1;
        a0[2] += x0[i + 2] * w2;
        a0[3] += x0[i + 3] * w3;
        a1[0] += x1[i] * w0;
        a1[1] += x1[i + 1] * w1;
        a1[2] += x1[i + 2] * w2;
        a1[3] += x1[i + 3] * w3;
        a2[0] += x2[i] * w0;
        a2[1] += x2[i + 1] * w1;
        a2[2] += x2[i + 2] * w2;
        a2[3] += x2[i + 3] * w3;
        a3[0] += x3[i] * w0;
        a3[1] += x3[i + 1] * w1;
        a3[2] += x3[i + 2] * w2;
        a3[3] += x3[i + 3] * w3;
        i += 4;
    }
    let mut t = [0.0f32; 4];
    while i < k {
        t[0] += x0[i] * w[i];
        t[1] += x1[i] * w[i];
        t[2] += x2[i] * w[i];
        t[3] += x3[i] * w[i];
        i += 1;
    }
    [
        (a0[0] + a0[1]) + (a0[2] + a0[3]) + t[0],
        (a1[0] + a1[1]) + (a1[2] + a1[3]) + t[1],
        (a2[0] + a2[1]) + (a2[2] + a2[3]) + t[2],
        (a3[0] + a3[1]) + (a3[2] + a3[3]) + t[3],
    ]
}

/// In-place element-wise addition: `a += b`.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// In-place element-wise multiplication: `a *= b`.
pub fn mul_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y;
    }
}

/// Numerically stable in-place softmax over a slice.
///
/// With the `simd` feature, the max-scan and the final normalising division
/// run 8 lanes wide; both are bitwise identical to the scalar passes (max is
/// order-insensitive on finite logits, IEEE division is exact per element),
/// and the exp-and-sum pass stays scalar — so softmax produces the same bits
/// with the feature on and off.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    #[cfg(feature = "simd")]
    let max = crate::simd::max_val(x);
    #[cfg(not(feature = "simd"))]
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        #[cfg(feature = "simd")]
        crate::simd::div_inplace(x, sum);
        #[cfg(not(feature = "simd"))]
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Returns the softmax of a slice as a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// RMS normalisation: `out[i] = x[i] / rms(x) * weight[i]`.
///
/// `eps` guards against division by zero exactly as in Llama-family models.
pub fn rmsnorm(x: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    rmsnorm_into(x, weight, eps, &mut out);
    out
}

/// [`rmsnorm`] writing into a caller-provided buffer (the scratch arena's
/// per-layer normed-activation slot), avoiding a per-token allocation.
pub fn rmsnorm_into(x: &[f32], weight: &[f32], eps: f32, out: &mut [f32]) {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), out.len());
    #[cfg(feature = "simd")]
    {
        let ss = crate::simd::sum_squares(x) / x.len() as f32;
        let scale = 1.0 / (ss + eps).sqrt();
        crate::simd::rmsnorm_apply(out, x, scale, weight);
    }
    #[cfg(not(feature = "simd"))]
    {
        let ss: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let scale = 1.0 / (ss + eps).sqrt();
        for ((o, v), w) in out.iter_mut().zip(x.iter()).zip(weight.iter()) {
            *o = v * scale * w;
        }
    }
}

/// SiLU activation (`x * sigmoid(x)`), applied element-wise in place.
pub fn silu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = *v * (1.0 / (1.0 + (-*v).exp()));
    }
}

/// Fused SwiGLU gate: `gate[i] = silu(gate[i]) * up[i]` in a single pass —
/// the MLP hot loop ([`silu_inplace`] followed by [`mul_inplace`], without
/// walking the `d_ff`-sized buffers twice).
///
/// Without the `simd` feature this computes exactly the same expressions in
/// the same order as the two-pass sequence, so it is bitwise identical to
/// it; the SIMD path evaluates `exp` with an 8-lane polynomial and agrees to
/// ~1e-4 relative (pinned by the kernel-equivalence property tests).
pub fn silu_mul_inplace(gate: &mut [f32], up: &[f32]) {
    debug_assert_eq!(gate.len(), up.len());
    #[cfg(feature = "simd")]
    crate::simd::silu_mul(gate, up);
    #[cfg(not(feature = "simd"))]
    for (g, &u) in gate.iter_mut().zip(up.iter()) {
        *g = *g * (1.0 / (1.0 + (-*g).exp())) * u;
    }
}

/// GELU activation (tanh approximation), applied element-wise in place.
///
/// Falcon-family models use GELU in their MLP blocks; including it lets the
/// Falcon-style model preset differ structurally from the Llama-style one.
pub fn gelu_inplace(x: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for v in x.iter_mut() {
        let x3 = *v * *v * *v;
        *v = 0.5 * *v * (1.0 + (SQRT_2_OVER_PI * (*v + 0.044715 * x3)).tanh());
    }
}

/// Applies rotary position embeddings in place to a query or key vector.
///
/// The vector is interpreted as `n_heads` heads of dimension `head_dim`
/// (which must be even); each consecutive pair of elements within a head is
/// rotated by an angle that depends on the token `position` and the pair
/// index, using the standard `theta = 10000` base.
pub fn rope_inplace(x: &mut [f32], n_heads: usize, head_dim: usize, position: usize, theta: f32) {
    debug_assert_eq!(x.len(), n_heads * head_dim);
    debug_assert_eq!(head_dim % 2, 0);
    for h in 0..n_heads {
        let base = h * head_dim;
        for i in 0..head_dim / 2 {
            let freq = 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32);
            let angle = position as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Scales a slice in place by a scalar.
pub fn scale_inplace(x: &mut [f32], s: f32) {
    for v in x.iter_mut() {
        *v *= s;
    }
}

/// Weighted accumulation: `acc += w * x` (the attention value gather).
///
/// Element-wise (no cross-lane reduction), so the SIMD path differs from the
/// scalar one only where FMA contracts the multiply-add — within 1 ulp.
pub fn axpy(acc: &mut [f32], w: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    #[cfg(feature = "simd")]
    crate::simd::axpy(acc, w, x);
    #[cfg(not(feature = "simd"))]
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += w * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn matmul_t_identity() {
        // x: [2,3], w = identity-like [3,3]
        let x = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let w = t(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matmul_t_known_values() {
        let x = t(vec![1.0, 2.0], &[1, 2]);
        let w = t(vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[3, 2]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.data(), &[11.0, 17.0, 23.0]);
    }

    #[test]
    fn matmul_t_shape_mismatch_errors() {
        let x = t(vec![1.0, 2.0, 3.0], &[1, 3]);
        let w = t(vec![1.0, 2.0], &[1, 2]);
        assert!(matmul_t(&x, &w).is_err());
        assert!(matmul_t_naive(&x, &w).is_err());
    }

    #[test]
    fn blocked_matches_naive_across_tile_remainders() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // m sweeps the full-tile (4, 8), remainder (1..3, 5..7) and
        // single-row cases; k sweeps non-multiple-of-4 lengths.
        for m in 1..=9usize {
            for &k in &[1usize, 3, 4, 7, 33, 64] {
                let n = 17;
                let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
                let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
                let fast = matmul_t(&x, &w).unwrap();
                let slow = matmul_t_naive(&x, &w).unwrap();
                for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                    assert!(
                        (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                        "m={m} k={k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_t_into_matches_matmul() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::rand_uniform(&mut rng, &[1, 48], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[31, 48], 1.0);
        let mut out = vec![0.0f32; 31];
        matvec_t_into(x.data(), &w, &mut out).unwrap();
        let full = matmul_t(&x, &w).unwrap();
        assert_eq!(out.as_slice(), full.data());
        let mut bad = vec![0.0f32; 30];
        assert!(matvec_t_into(x.data(), &w, &mut bad).is_err());
    }

    #[test]
    fn rmsnorm_into_matches_allocating_variant() {
        let x = vec![3.0, -4.0, 5.5, 0.25];
        let w = vec![1.0, 0.5, 2.0, 1.5];
        let a = rmsnorm(&x, &w, 1e-6);
        let mut b = vec![0.0f32; 4];
        rmsnorm_into(&x, &w, 1e-6, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotonic() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[0] < x[1] && x[1] < x[2] && x[2] < x[3]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rmsnorm_unit_weight_normalises() {
        let x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        let y = rmsnorm(&x, &w, 1e-6);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-5);
        assert!((y[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn silu_matches_definition() {
        let mut x = vec![0.0, 1.0, -1.0];
        silu_inplace(&mut x);
        assert!((x[0] - 0.0).abs() < 1e-6);
        assert!((x[1] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
        assert!(x[2] < 0.0 && x[2] > -0.5);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut x = vec![0.0, 10.0];
        gelu_inplace(&mut x);
        assert!((x[0]).abs() < 1e-6);
        assert!((x[1] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        rope_inplace(&mut x, 1, 4, 0, 10000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope_inplace(&mut x, 2, 4, 17, 10000.0);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn axpy_and_add_mul() {
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[3.0, 4.0]);
        assert_eq!(acc, vec![7.0, 9.0]);
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
        mul_inplace(&mut a, &[2.0, 0.5]);
        assert_eq!(a, vec![22.0, 11.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let s = softmax(&v);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|p| *p >= 0.0 && *p <= 1.0));
        }

        #[test]
        fn prop_matmul_t_distributes_over_addition(
            m in 1usize..4, k in 1usize..6, n in 1usize..4,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x1 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let x2 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
            let mut xsum = x1.clone();
            add_inplace(xsum.data_mut(), x2.data());
            let lhs = matmul_t(&xsum, &w).unwrap();
            let y1 = matmul_t(&x1, &w).unwrap();
            let y2 = matmul_t(&x2, &w).unwrap();
            for i in 0..lhs.len() {
                prop_assert!((lhs.data()[i] - (y1.data()[i] + y2.data()[i])).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_rope_is_norm_preserving(
            pos in 0usize..2048,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::rand_uniform(&mut rng, &[32], 1.0);
            let mut x = t.into_vec();
            let before: f32 = x.iter().map(|v| v * v).sum();
            rope_inplace(&mut x, 4, 8, pos, 10000.0);
            let after: f32 = x.iter().map(|v| v * v).sum();
            prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
        }
    }
}
