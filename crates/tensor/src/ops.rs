//! Transformer kernels: matmul, softmax, RMSNorm, SiLU, RoPE.
//!
//! Kernels operate on [`Tensor`]s or raw `f32` slices.  The only
//! parallelised kernel is [`matmul_t`] (weights-transposed matrix product),
//! which dominates runtime for real tiny-model execution; it splits work over
//! output rows with rayon.  All other kernels are O(tokens × hidden) and not
//! worth parallelising at the model sizes this reproduction executes for
//! real.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Computes `out = x · wᵀ` where `x` is `[m, k]` and `w` is `[n, k]`.
///
/// This is the natural layout for transformer weight matrices (each output
/// feature is a row of `w`), and lets the inner loop be a contiguous dot
/// product.  Rows of the output are computed in parallel.
pub fn matmul_t(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let xd = x.data();
    let wd = w.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
        let xrow = &xd[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let wrow = &wd[j * k..(j + 1) * k];
            *o = dot(xrow, wrow);
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// In-place element-wise addition: `a += b`.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// In-place element-wise multiplication: `a *= b`.
pub fn mul_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y;
    }
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Returns the softmax of a slice as a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// RMS normalisation: `out[i] = x[i] / rms(x) * weight[i]`.
///
/// `eps` guards against division by zero exactly as in Llama-family models.
pub fn rmsnorm(x: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    debug_assert_eq!(x.len(), weight.len());
    let ss: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let scale = 1.0 / (ss + eps).sqrt();
    x.iter()
        .zip(weight.iter())
        .map(|(v, w)| v * scale * w)
        .collect()
}

/// SiLU activation (`x * sigmoid(x)`), applied element-wise in place.
pub fn silu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = *v * (1.0 / (1.0 + (-*v).exp()));
    }
}

/// GELU activation (tanh approximation), applied element-wise in place.
///
/// Falcon-family models use GELU in their MLP blocks; including it lets the
/// Falcon-style model preset differ structurally from the Llama-style one.
pub fn gelu_inplace(x: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for v in x.iter_mut() {
        let x3 = *v * *v * *v;
        *v = 0.5 * *v * (1.0 + (SQRT_2_OVER_PI * (*v + 0.044715 * x3)).tanh());
    }
}

/// Applies rotary position embeddings in place to a query or key vector.
///
/// The vector is interpreted as `n_heads` heads of dimension `head_dim`
/// (which must be even); each consecutive pair of elements within a head is
/// rotated by an angle that depends on the token `position` and the pair
/// index, using the standard `theta = 10000` base.
pub fn rope_inplace(x: &mut [f32], n_heads: usize, head_dim: usize, position: usize, theta: f32) {
    debug_assert_eq!(x.len(), n_heads * head_dim);
    debug_assert_eq!(head_dim % 2, 0);
    for h in 0..n_heads {
        let base = h * head_dim;
        for i in 0..head_dim / 2 {
            let freq = 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32);
            let angle = position as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Scales a slice in place by a scalar.
pub fn scale_inplace(x: &mut [f32], s: f32) {
    for v in x.iter_mut() {
        *v *= s;
    }
}

/// Weighted accumulation: `acc += w * x`.
pub fn axpy(acc: &mut [f32], w: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += w * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn matmul_t_identity() {
        // x: [2,3], w = identity-like [3,3]
        let x = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let w = t(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matmul_t_known_values() {
        let x = t(vec![1.0, 2.0], &[1, 2]);
        let w = t(vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[3, 2]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.data(), &[11.0, 17.0, 23.0]);
    }

    #[test]
    fn matmul_t_shape_mismatch_errors() {
        let x = t(vec![1.0, 2.0, 3.0], &[1, 3]);
        let w = t(vec![1.0, 2.0], &[1, 2]);
        assert!(matmul_t(&x, &w).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotonic() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[0] < x[1] && x[1] < x[2] && x[2] < x[3]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rmsnorm_unit_weight_normalises() {
        let x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        let y = rmsnorm(&x, &w, 1e-6);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-5);
        assert!((y[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn silu_matches_definition() {
        let mut x = vec![0.0, 1.0, -1.0];
        silu_inplace(&mut x);
        assert!((x[0] - 0.0).abs() < 1e-6);
        assert!((x[1] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
        assert!(x[2] < 0.0 && x[2] > -0.5);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut x = vec![0.0, 10.0];
        gelu_inplace(&mut x);
        assert!((x[0]).abs() < 1e-6);
        assert!((x[1] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        rope_inplace(&mut x, 1, 4, 0, 10000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope_inplace(&mut x, 2, 4, 17, 10000.0);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn axpy_and_add_mul() {
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[3.0, 4.0]);
        assert_eq!(acc, vec![7.0, 9.0]);
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
        mul_inplace(&mut a, &[2.0, 0.5]);
        assert_eq!(a, vec![22.0, 11.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let s = softmax(&v);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|p| *p >= 0.0 && *p <= 1.0));
        }

        #[test]
        fn prop_matmul_t_distributes_over_addition(
            m in 1usize..4, k in 1usize..6, n in 1usize..4,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x1 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let x2 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
            let mut xsum = x1.clone();
            add_inplace(xsum.data_mut(), x2.data());
            let lhs = matmul_t(&xsum, &w).unwrap();
            let y1 = matmul_t(&x1, &w).unwrap();
            let y2 = matmul_t(&x2, &w).unwrap();
            for i in 0..lhs.len() {
                prop_assert!((lhs.data()[i] - (y1.data()[i] + y2.data()[i])).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_rope_is_norm_preserving(
            pos in 0usize..2048,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::rand_uniform(&mut rng, &[32], 1.0);
            let mut x = t.into_vec();
            let before: f32 = x.iter().map(|v| v * v).sum();
            rope_inplace(&mut x, 4, 8, pos, 10000.0);
            let after: f32 = x.iter().map(|v| v * v).sum();
            prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
        }
    }
}
