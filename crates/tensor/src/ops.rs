//! Transformer kernels: matmul, softmax, RMSNorm, SiLU, RoPE.
//!
//! Kernels operate on [`Tensor`]s or raw `f32` slices.  The only
//! parallelised kernel is [`matmul_t`] (weights-transposed matrix product),
//! which dominates runtime for real tiny-model execution.  It runs on the
//! persistent worker pool behind `rayon::prelude::par_chunks_mut` and is
//! **blocked**: the single-row (decode) case splits the output row into
//! column blocks, the multi-row (speculative-verify) case processes 4-row
//! tiles that stream each weight row once for all four inputs.  The inner
//! [`dot`] uses four independent accumulators so the compiler can
//! autovectorise it.  Workloads below `PAR_DISPATCH_MULADDS` multiply-adds
//! stay on the calling thread — pool dispatch costs more than tiny-model
//! matmuls.
//!
//! Determinism: every output element is accumulated in the same fixed order
//! (4-wide lanes, then a scalar tail) regardless of thread count or tiling,
//! so results are bitwise reproducible across `PIPEINFER_THREADS` settings.
//! All other kernels are O(tokens × hidden) and not worth parallelising at
//! the model sizes this reproduction executes for real.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Multiply-add count below which a matmul runs serially on the caller:
/// dispatching to the pool costs a few microseconds, which dominates the
/// tiny-model (d≈64) per-token products.
pub(crate) const PAR_DISPATCH_MULADDS: usize = 32 * 1024;

/// Computes `out = x · wᵀ` where `x` is `[m, k]` and `w` is `[n, k]`.
///
/// This is the natural layout for transformer weight matrices (each output
/// feature is a row of `w`), and lets the inner loop be a contiguous dot
/// product.  See the module docs for the blocking/tiling scheme.
pub fn matmul_t(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let mut out = vec![0.0f32; m * n];
    matmul_t_into(x.data(), w.data(), m, k, n, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Raw-slice core of [`matmul_t`]: `x` is `[m, k]`, `w` is `[n, k]`, `out`
/// is `[m, n]`, all row-major.  Lets callers (the transformer forward pass)
/// reuse scratch output buffers instead of allocating a tensor per product.
pub fn matmul_t_into(xd: &[f32], wd: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(xd.len(), m * k, "x data does not match [m, k]");
    assert_eq!(wd.len(), n * k, "w data does not match [n, k]");
    assert_eq!(out.len(), m * n, "out does not match [m, n]");
    if m == 0 || n == 0 {
        return;
    }
    if m == 1 {
        gemv_t(xd, wd, k, n, out);
    } else {
        gemm_t_tiled(xd, wd, k, n, out);
    }
}

/// Single-row `x · wᵀ` writing into `out` (`[n]`), where `w` is `[n, k]`.
///
/// The decode-path convenience wrapper over [`matmul_t_into`] used by the
/// transformer's scratch-buffer arena.
pub fn matvec_t_into(x: &[f32], w: &Tensor, out: &mut [f32]) -> Result<()> {
    let k = w.cols();
    let n = w.rows();
    if x.len() != k || out.len() != n {
        return Err(TensorError::IncompatibleShapes(format!(
            "matvec_t: x has {} elements, out has {}, w is [{n}, {k}]",
            x.len(),
            out.len()
        )));
    }
    gemv_t(x, w.data(), k, n, out);
    Ok(())
}

/// Dispatch skeleton shared by the dense and quantized single-row products:
/// fills `out[j] = row_dot(j)` for every output feature `j`, serially below
/// [`PAR_DISPATCH_MULADDS`] multiply-adds (`k` per element), otherwise
/// parallel over column blocks sized to carry at least that much work each.
pub(crate) fn gemv_dispatch<F>(k: usize, out: &mut [f32], row_dot: F)
where
    F: Fn(usize) -> f32 + Sync,
{
    let n = out.len();
    if n * k < PAR_DISPATCH_MULADDS {
        for (j, o) in out.iter_mut().enumerate() {
            *o = row_dot(j);
        }
        return;
    }
    let block = (PAR_DISPATCH_MULADDS / k.max(1)).clamp(1, n);
    out.par_chunks_mut(block)
        .enumerate()
        .for_each(|(b, chunk)| {
            let j0 = b * block;
            for (dj, o) in chunk.iter_mut().enumerate() {
                *o = row_dot(j0 + dj);
            }
        });
}

/// Matrix-vector product (`m == 1`): each output element is an independent
/// dot of `x` against one weight row, dispatched via [`gemv_dispatch`].
fn gemv_t(x: &[f32], wd: &[f32], k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), n);
    gemv_dispatch(k, out, |j| dot(x, &wd[j * k..(j + 1) * k]));
}

/// Multi-row product tiled over 4 input rows: each weight row is streamed
/// from memory once per tile instead of once per input row, which is the
/// dominant traffic for the speculative-verify batches (`m` in 2..=16).
/// Tiles are distributed over the pool; the remainder tile (`m % 4` rows)
/// falls back to per-row dots that accumulate in the identical order.
fn gemm_t_tiled(xd: &[f32], wd: &[f32], k: usize, n: usize, out: &mut [f32]) {
    const TILE: usize = 4;
    let m = out.len() / n;
    // The per-tile computation is identical either way; only the dispatch
    // differs, so small products skip the pool (same threshold as the GEMV
    // path) while producing bitwise-identical results.
    if m * n * k < PAR_DISPATCH_MULADDS {
        for (t, chunk) in out.chunks_mut(TILE * n).enumerate() {
            gemm_tile(xd, wd, k, n, t, chunk);
        }
    } else {
        out.par_chunks_mut(TILE * n)
            .enumerate()
            .for_each(|(t, chunk)| gemm_tile(xd, wd, k, n, t, chunk));
    }
}

/// Computes tile `t` (up to 4 consecutive output rows) of the tiled product.
fn gemm_tile(xd: &[f32], wd: &[f32], k: usize, n: usize, t: usize, chunk: &mut [f32]) {
    const TILE: usize = 4;
    let i0 = t * TILE;
    let rows = chunk.len() / n;
    let xt = &xd[i0 * k..(i0 + rows) * k];
    if rows == TILE {
        let (x0, x1, x2, x3) = (
            &xt[..k],
            &xt[k..2 * k],
            &xt[2 * k..3 * k],
            &xt[3 * k..4 * k],
        );
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            let d = dot4(wrow, x0, x1, x2, x3);
            chunk[j] = d[0];
            chunk[n + j] = d[1];
            chunk[2 * n + j] = d[2];
            chunk[3 * n + j] = d[3];
        }
    } else {
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            for r in 0..rows {
                chunk[r * n + j] = dot(&xt[r * k..(r + 1) * k], wrow);
            }
        }
    }
}

/// Reference `x · wᵀ` — the pre-optimisation scalar kernel, kept as the
/// ground truth for the blocked kernel's equivalence property tests and as
/// the "before" side of `cargo bench -p pi-bench --bench kernels`.
pub fn matmul_t_naive(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let m = x.rows();
    let k = x.cols();
    let n = w.rows();
    if w.cols() != k {
        return Err(TensorError::IncompatibleShapes(format!(
            "matmul_t: x is [{m}, {k}], w is [{}, {}]",
            n,
            w.cols()
        )));
    }
    let xd = x.data();
    let wd = w.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let xrow = &xd[i * k..(i + 1) * k];
        for j in 0..n {
            let wrow = &wd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (a, b) in xrow.iter().zip(wrow.iter()) {
                acc += a * b;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two equal-length slices.
///
/// Four independent accumulators break the serial floating-point dependency
/// chain so the loop autovectorises; the accumulation order is fixed
/// (lane-wise, then `(a0+a1)+(a2+a3)`, then the scalar tail) to keep results
/// bitwise deterministic.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % 4;
    let mut acc = [0.0f32; 4];
    for (av, bv) in a[..main].chunks_exact(4).zip(b[..main].chunks_exact(4)) {
        acc[0] += av[0] * bv[0];
        acc[1] += av[1] * bv[1];
        acc[2] += av[2] * bv[2];
        acc[3] += av[3] * bv[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in a[main..].iter().zip(b[main..].iter()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Four simultaneous dots of `w` against `x0..x3`, streaming `w` once.
///
/// Each lane accumulates in exactly the same order as [`dot`], so a value
/// computed through the tiled path is bitwise identical to the per-row path.
#[inline]
fn dot4(w: &[f32], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) -> [f32; 4] {
    let k = w.len();
    assert!(x0.len() == k && x1.len() == k && x2.len() == k && x3.len() == k);
    let main = k - k % 4;
    let mut a0 = [0.0f32; 4];
    let mut a1 = [0.0f32; 4];
    let mut a2 = [0.0f32; 4];
    let mut a3 = [0.0f32; 4];
    let mut i = 0;
    while i < main {
        let (w0, w1, w2, w3) = (w[i], w[i + 1], w[i + 2], w[i + 3]);
        a0[0] += x0[i] * w0;
        a0[1] += x0[i + 1] * w1;
        a0[2] += x0[i + 2] * w2;
        a0[3] += x0[i + 3] * w3;
        a1[0] += x1[i] * w0;
        a1[1] += x1[i + 1] * w1;
        a1[2] += x1[i + 2] * w2;
        a1[3] += x1[i + 3] * w3;
        a2[0] += x2[i] * w0;
        a2[1] += x2[i + 1] * w1;
        a2[2] += x2[i + 2] * w2;
        a2[3] += x2[i + 3] * w3;
        a3[0] += x3[i] * w0;
        a3[1] += x3[i + 1] * w1;
        a3[2] += x3[i + 2] * w2;
        a3[3] += x3[i + 3] * w3;
        i += 4;
    }
    let mut t = [0.0f32; 4];
    while i < k {
        t[0] += x0[i] * w[i];
        t[1] += x1[i] * w[i];
        t[2] += x2[i] * w[i];
        t[3] += x3[i] * w[i];
        i += 1;
    }
    [
        (a0[0] + a0[1]) + (a0[2] + a0[3]) + t[0],
        (a1[0] + a1[1]) + (a1[2] + a1[3]) + t[1],
        (a2[0] + a2[1]) + (a2[2] + a2[3]) + t[2],
        (a3[0] + a3[1]) + (a3[2] + a3[3]) + t[3],
    ]
}

/// In-place element-wise addition: `a += b`.
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// In-place element-wise multiplication: `a *= b`.
pub fn mul_inplace(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y;
    }
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Returns the softmax of a slice as a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// RMS normalisation: `out[i] = x[i] / rms(x) * weight[i]`.
///
/// `eps` guards against division by zero exactly as in Llama-family models.
pub fn rmsnorm(x: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    rmsnorm_into(x, weight, eps, &mut out);
    out
}

/// [`rmsnorm`] writing into a caller-provided buffer (the scratch arena's
/// per-layer normed-activation slot), avoiding a per-token allocation.
pub fn rmsnorm_into(x: &[f32], weight: &[f32], eps: f32, out: &mut [f32]) {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), out.len());
    let ss: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let scale = 1.0 / (ss + eps).sqrt();
    for ((o, v), w) in out.iter_mut().zip(x.iter()).zip(weight.iter()) {
        *o = v * scale * w;
    }
}

/// SiLU activation (`x * sigmoid(x)`), applied element-wise in place.
pub fn silu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = *v * (1.0 / (1.0 + (-*v).exp()));
    }
}

/// GELU activation (tanh approximation), applied element-wise in place.
///
/// Falcon-family models use GELU in their MLP blocks; including it lets the
/// Falcon-style model preset differ structurally from the Llama-style one.
pub fn gelu_inplace(x: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for v in x.iter_mut() {
        let x3 = *v * *v * *v;
        *v = 0.5 * *v * (1.0 + (SQRT_2_OVER_PI * (*v + 0.044715 * x3)).tanh());
    }
}

/// Applies rotary position embeddings in place to a query or key vector.
///
/// The vector is interpreted as `n_heads` heads of dimension `head_dim`
/// (which must be even); each consecutive pair of elements within a head is
/// rotated by an angle that depends on the token `position` and the pair
/// index, using the standard `theta = 10000` base.
pub fn rope_inplace(x: &mut [f32], n_heads: usize, head_dim: usize, position: usize, theta: f32) {
    debug_assert_eq!(x.len(), n_heads * head_dim);
    debug_assert_eq!(head_dim % 2, 0);
    for h in 0..n_heads {
        let base = h * head_dim;
        for i in 0..head_dim / 2 {
            let freq = 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32);
            let angle = position as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Scales a slice in place by a scalar.
pub fn scale_inplace(x: &mut [f32], s: f32) {
    for v in x.iter_mut() {
        *v *= s;
    }
}

/// Weighted accumulation: `acc += w * x`.
pub fn axpy(acc: &mut [f32], w: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += w * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn matmul_t_identity() {
        // x: [2,3], w = identity-like [3,3]
        let x = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let w = t(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matmul_t_known_values() {
        let x = t(vec![1.0, 2.0], &[1, 2]);
        let w = t(vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[3, 2]);
        let y = matmul_t(&x, &w).unwrap();
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.data(), &[11.0, 17.0, 23.0]);
    }

    #[test]
    fn matmul_t_shape_mismatch_errors() {
        let x = t(vec![1.0, 2.0, 3.0], &[1, 3]);
        let w = t(vec![1.0, 2.0], &[1, 2]);
        assert!(matmul_t(&x, &w).is_err());
        assert!(matmul_t_naive(&x, &w).is_err());
    }

    #[test]
    fn blocked_matches_naive_across_tile_remainders() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // m sweeps the full-tile (4, 8), remainder (1..3, 5..7) and
        // single-row cases; k sweeps non-multiple-of-4 lengths.
        for m in 1..=9usize {
            for &k in &[1usize, 3, 4, 7, 33, 64] {
                let n = 17;
                let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
                let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
                let fast = matmul_t(&x, &w).unwrap();
                let slow = matmul_t_naive(&x, &w).unwrap();
                for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                    assert!(
                        (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                        "m={m} k={k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_t_into_matches_matmul() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::rand_uniform(&mut rng, &[1, 48], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[31, 48], 1.0);
        let mut out = vec![0.0f32; 31];
        matvec_t_into(x.data(), &w, &mut out).unwrap();
        let full = matmul_t(&x, &w).unwrap();
        assert_eq!(out.as_slice(), full.data());
        let mut bad = vec![0.0f32; 30];
        assert!(matvec_t_into(x.data(), &w, &mut bad).is_err());
    }

    #[test]
    fn rmsnorm_into_matches_allocating_variant() {
        let x = vec![3.0, -4.0, 5.5, 0.25];
        let w = vec![1.0, 0.5, 2.0, 1.5];
        let a = rmsnorm(&x, &w, 1e-6);
        let mut b = vec![0.0f32; 4];
        rmsnorm_into(&x, &w, 1e-6, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotonic() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[0] < x[1] && x[1] < x[2] && x[2] < x[3]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rmsnorm_unit_weight_normalises() {
        let x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        let y = rmsnorm(&x, &w, 1e-6);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-5);
        assert!((y[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn silu_matches_definition() {
        let mut x = vec![0.0, 1.0, -1.0];
        silu_inplace(&mut x);
        assert!((x[0] - 0.0).abs() < 1e-6);
        assert!((x[1] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
        assert!(x[2] < 0.0 && x[2] > -0.5);
    }

    #[test]
    fn gelu_fixed_points() {
        let mut x = vec![0.0, 10.0];
        gelu_inplace(&mut x);
        assert!((x[0]).abs() < 1e-6);
        assert!((x[1] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let orig = x.clone();
        rope_inplace(&mut x, 1, 4, 0, 10000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope_inplace(&mut x, 2, 4, 17, 10000.0);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn axpy_and_add_mul() {
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[3.0, 4.0]);
        assert_eq!(acc, vec![7.0, 9.0]);
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
        mul_inplace(&mut a, &[2.0, 0.5]);
        assert_eq!(a, vec![22.0, 11.0]);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let s = softmax(&v);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|p| *p >= 0.0 && *p <= 1.0));
        }

        #[test]
        fn prop_matmul_t_distributes_over_addition(
            m in 1usize..4, k in 1usize..6, n in 1usize..4,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x1 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let x2 = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
            let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
            let mut xsum = x1.clone();
            add_inplace(xsum.data_mut(), x2.data());
            let lhs = matmul_t(&xsum, &w).unwrap();
            let y1 = matmul_t(&x1, &w).unwrap();
            let y2 = matmul_t(&x2, &w).unwrap();
            for i in 0..lhs.len() {
                prop_assert!((lhs.data()[i] - (y1.data()[i] + y2.data()[i])).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_rope_is_norm_preserving(
            pos in 0usize..2048,
            seed in 0u64..1000
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Tensor::rand_uniform(&mut rng, &[32], 1.0);
            let mut x = t.into_vec();
            let before: f32 = x.iter().map(|v| v * v).sum();
            rope_inplace(&mut x, 4, 8, pos, 10000.0);
            let after: f32 = x.iter().map(|v| v * v).sum();
            prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
        }
    }
}
