//! Property tests pinning the optimised kernels to their naive references.
//!
//! The blocked/tiled dense `matmul_t` and the parallel fused quantized
//! matmul must match the pre-optimisation scalar kernels within 1e-4
//! relative error on random shapes — including single-row (decode), multi-row
//! (speculative verify, exercising the 4-row tile and its remainder), inner
//! dimensions that are not multiples of the 4-wide accumulator width, and
//! column counts that are not multiples of the quantization block size.

use pi_tensor::{ops, QuantKind, QuantizedMatrix, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_close(fast: &Tensor, reference: &Tensor, what: &str) {
    assert_eq!(fast.shape(), reference.shape(), "{what}: shape mismatch");
    for (i, (a, b)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-4 * a.abs().max(1.0),
            "{what}: element {i} diverged: {a} vs {b}"
        );
    }
}

proptest! {
    #[test]
    fn prop_blocked_matmul_matches_naive(
        m in 1usize..10,
        k in 1usize..130,
        n in 1usize..70,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let fast = ops::matmul_t(&x, &w).unwrap();
        let naive = ops::matmul_t_naive(&x, &w).unwrap();
        assert_close(&fast, &naive, "dense blocked vs naive");
    }

    #[test]
    fn prop_fused_quant_matmul_matches_reference(
        m in 1usize..7,
        // Deliberately straddles multiples of BLOCK_SIZE (32): 31, 32, 33,
        // 50, 64, 96... all occur.
        cols in 1usize..130,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let x = Tensor::rand_uniform(&mut rng, &[m, cols], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, cols], 1.0);
        for kind in [QuantKind::Q8_0, QuantKind::Q4K] {
            let q = QuantizedMatrix::quantize(&w, kind).unwrap();
            let fused = q.matmul_t(&x).unwrap();
            let reference = q.matmul_t_reference(&x).unwrap();
            assert_close(&fused, &reference, "quant fused vs reference");
        }
    }

    #[test]
    fn prop_blocked_matmul_deterministic_across_thread_counts(
        m in 1usize..6,
        k in 1usize..100,
        n in 1usize..50,
        seed in 0u64..200,
    ) {
        // Same inputs, two runs — the claim-based pool must not introduce
        // any run-to-run variation (every element is accumulated in a fixed
        // order regardless of which worker computes it).
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2000));
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let a = ops::matmul_t(&x, &w).unwrap();
        let b = ops::matmul_t(&x, &w).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }
}
