//! Property tests pinning the optimised kernels to their naive references.
//!
//! The blocked/tiled dense `matmul_t` and the parallel fused quantized
//! matmul must match the pre-optimisation scalar kernels within 1e-4
//! relative error on random shapes — including single-row (decode), multi-row
//! (speculative verify, exercising the 4-row tile and its remainder), inner
//! dimensions that are not multiples of the 4-wide accumulator width, and
//! column counts that are not multiples of the quantization block size.
//!
//! A second family pins the `simd` build to the scalar ground truth: the
//! dispatch entry points (`matmul_t`, `QuantizedMatrix::matmul_t`, the
//! elementwise ops) against their `*_scalar` counterparts.  On a scalar
//! build the two sides are the same code and the properties hold trivially;
//! with `--features simd` they pin the f32x8 kernels — including lengths
//! that are not multiples of the 8-lane width — to 1e-4.

use pi_tensor::{ops, QuantKind, QuantizedMatrix, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_close(fast: &Tensor, reference: &Tensor, what: &str) {
    assert_eq!(fast.shape(), reference.shape(), "{what}: shape mismatch");
    for (i, (a, b)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-4 * a.abs().max(1.0),
            "{what}: element {i} diverged: {a} vs {b}"
        );
    }
}

proptest! {
    #[test]
    fn prop_blocked_matmul_matches_naive(
        m in 1usize..10,
        k in 1usize..130,
        n in 1usize..70,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let fast = ops::matmul_t(&x, &w).unwrap();
        let naive = ops::matmul_t_naive(&x, &w).unwrap();
        assert_close(&fast, &naive, "dense blocked vs naive");
    }

    #[test]
    fn prop_fused_quant_matmul_matches_reference(
        m in 1usize..7,
        // Deliberately straddles multiples of BLOCK_SIZE (32): 31, 32, 33,
        // 50, 64, 96... all occur.
        cols in 1usize..130,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let x = Tensor::rand_uniform(&mut rng, &[m, cols], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, cols], 1.0);
        for kind in [QuantKind::Q8_0, QuantKind::Q4K] {
            let q = QuantizedMatrix::quantize(&w, kind).unwrap();
            let fused = q.matmul_t(&x).unwrap();
            let reference = q.matmul_t_reference(&x).unwrap();
            assert_close(&fused, &reference, "quant fused vs reference");
        }
    }

    #[test]
    fn prop_simd_matmul_matches_blocked_scalar(
        m in 1usize..10,
        // Straddles multiples of the 8-lane SIMD width: 7, 8, 9, 15, 16,
        // 17... all occur, as do the 32-wide unrolled main loop's edges.
        k in 1usize..130,
        n in 1usize..70,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3000));
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let dispatch = ops::matmul_t(&x, &w).unwrap();
        let scalar = ops::matmul_t_blocked_scalar(&x, &w).unwrap();
        assert_close(&dispatch, &scalar, "dense dispatch vs blocked scalar");
    }

    #[test]
    fn prop_simd_fused_quant_matches_scalar(
        m in 1usize..7,
        cols in 1usize..130,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(4000));
        let x = Tensor::rand_uniform(&mut rng, &[m, cols], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, cols], 1.0);
        for kind in [QuantKind::Q8_0, QuantKind::Q4K] {
            let q = QuantizedMatrix::quantize(&w, kind).unwrap();
            let dispatch = q.matmul_t(&x).unwrap();
            let scalar = q.matmul_t_fused_scalar(&x).unwrap();
            assert_close(&dispatch, &scalar, "quant dispatch vs fused scalar");
        }
    }

    #[test]
    fn prop_elementwise_ops_match_scalar_references(
        len in 1usize..200,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5000));
        let x = Tensor::rand_uniform(&mut rng, &[1, len], 2.0);
        let x = x.data();
        let w = Tensor::rand_uniform(&mut rng, &[1, len], 1.0);
        let w = w.data();

        // rmsnorm: dispatch vs the textbook scalar formula.
        let mut out = vec![0.0f32; len];
        ops::rmsnorm_into(x, w, 1e-5, &mut out);
        let ss: f32 = x.iter().map(|v| v * v).sum::<f32>() / len as f32;
        let scale = 1.0 / (ss + 1e-5).sqrt();
        for (i, o) in out.iter().enumerate() {
            let r = x[i] * scale * w[i];
            prop_assert!((o - r).abs() <= 1e-4 * r.abs().max(1.0), "rmsnorm[{i}]: {o} vs {r}");
        }

        // softmax: probabilities must match scalar reference and sum to 1.
        let mut sm = x.to_vec();
        ops::softmax_inplace(&mut sm);
        let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = x.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (i, o) in sm.iter().enumerate() {
            let r = exps[i] / sum;
            prop_assert!((o - r).abs() <= 1e-4, "softmax[{i}]: {o} vs {r}");
        }

        // fused SwiGLU gate: silu(gate) * up vs the scalar formula.
        let mut gate = x.to_vec();
        ops::silu_mul_inplace(&mut gate, w);
        for (i, o) in gate.iter().enumerate() {
            let r = x[i] * (1.0 / (1.0 + (-x[i]).exp())) * w[i];
            prop_assert!((o - r).abs() <= 1e-4 * r.abs().max(1.0), "silu_mul[{i}]: {o} vs {r}");
        }
    }

    #[test]
    fn prop_blocked_matmul_deterministic_across_thread_counts(
        m in 1usize..6,
        k in 1usize..100,
        n in 1usize..50,
        seed in 0u64..200,
    ) {
        // Same inputs, two runs — the claim-based pool must not introduce
        // any run-to-run variation (every element is accumulated in a fixed
        // order regardless of which worker computes it).
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2000));
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let a = ops::matmul_t(&x, &w).unwrap();
        let b = ops::matmul_t(&x, &w).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }
}
