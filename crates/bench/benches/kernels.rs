//! Criterion microbenchmarks of the compute substrate: dense and quantized
//! matrix products, KV-cache metadata operations and full tiny-model decode
//! steps.  These are not paper figures; they document the cost of the
//! building blocks the real-execution path uses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pi_model::{Batch, KvCache, Model, ModelConfig};
use pi_tensor::{ops, QuantKind, QuantizedMatrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::rand_uniform(&mut rng, &[4, 512], 1.0);
    let w = Tensor::rand_uniform(&mut rng, &[512, 512], 1.0);
    c.bench_function("matmul_t 4x512x512 f32", |b| {
        b.iter(|| ops::matmul_t(&x, &w).unwrap())
    });
    let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
    c.bench_function("matmul_t 4x512x512 q4", |b| {
        b.iter(|| q.matmul_t(&x).unwrap())
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let w = Tensor::rand_uniform(&mut rng, &[256, 512], 1.0);
    c.bench_function("quantize q4 256x512", |b| {
        b.iter(|| QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap())
    });
}

fn bench_kv_cache_ops(c: &mut Criterion) {
    c.bench_function("kv seq_cp+seq_rm 4096 cells", |b| {
        b.iter_batched(
            || {
                let mut cache = KvCache::new(1, 64, 4096);
                for p in 0..4000 {
                    cache.alloc(p, &[0]).unwrap();
                }
                cache
            },
            |mut cache| {
                cache.seq_cp(0, 1, 0, i32::MAX);
                cache.seq_rm(1, 0, i32::MAX);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tiny_model_decode(c: &mut Criterion) {
    let model = Model::random(ModelConfig::tiny_llama(64, 4), 3);
    c.bench_function("tiny model single-token decode", |b| {
        b.iter_batched(
            || model.new_cache_for_layers(&(0..4), 64),
            |mut cache| {
                model
                    .forward_full(&Batch::single(5, 0, 0), &mut cache)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_quantization,
    bench_kv_cache_ops,
    bench_tiny_model_decode
);
criterion_main!(benches);
