//! Microbenchmarks of the compute substrate: dense and quantized matrix
//! products (optimised kernels side-by-side with the pre-optimisation naive
//! references), KV-cache metadata operations and full tiny-model decode
//! steps.  These are not paper figures; they document the cost of the
//! building blocks the real-execution path uses.
//!
//! Three kernel flavours appear per shape where they exist:
//!
//! * `*_naive` / `*_reference` — the pre-optimisation baselines,
//! * `*_blocked` / `*_fused` — the blocked/fused **scalar** kernels,
//! * `*_simd` — the runtime-dispatched f32x8 kernels (only with
//!   `--features simd`; on that build the plain dispatch entry points
//!   `ops::matmul_t` / `QuantizedMatrix::matmul_t` route here).
//!
//! After the fixed-thread section, a **threads sweep** re-times the
//! parallel-dispatch shapes with `PIPEINFER_THREADS` forced to 1, 2, 4 and 8
//! so multi-core scaling of the worker pool is measurable from one run.
//!
//! Besides the human-readable table, the run writes machine-readable results
//! to `BENCH_kernels.json` at the workspace root (`op`, `shape`,
//! `ns_per_iter`, `threads`) so the kernel-performance trajectory is
//! trackable across PRs; sweep rows repeat an op/shape with different
//! `threads` values.
//!
//! With `PIPEINFER_BENCH_ASSERT=1` (set by the CI smoke step) the run fails
//! if the blocked single-row kernel is not measurably faster than the naive
//! reference — and, on a `--features simd` build, if the SIMD kernels are
//! not at least as fast as their scalar counterparts — so kernel
//! regressions break the build instead of landing silently.
//!
//! Benchmark names are `<op> <shape>` with shapes written `m x k x n`.

use criterion::{BatchSize, BenchReport, Criterion};
use pi_model::{Batch, KvCache, Model, ModelConfig};
use pi_tensor::{ops, QuantKind, QuantizedMatrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::pool;

/// Where the machine-readable results go: the workspace root, next to the
/// figures the other benches produce.
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");

/// Thread counts the sweep section forces via `PIPEINFER_THREADS`.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // m=1 is the decode path (the paper's per-token latency driver); m=4/8
    // are speculative-verify micro-batches; m=16/32 are cross-request forest
    // batches (8 fused requests × chain/tree micro-batch rows — the
    // iteration-level batching row counts); 512 is the default bench width,
    // 2048 a larger-model sanity point for the single-row case.
    for (m, k, n) in [
        (1usize, 512usize, 512usize),
        (4, 512, 512),
        (8, 512, 512),
        (16, 512, 512),
        (32, 512, 512),
        (1, 2048, 2048),
    ] {
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        c.bench_function(&format!("matmul_t_f32_naive {m}x{k}x{n}"), |b| {
            b.iter(|| ops::matmul_t_naive(&x, &w).unwrap())
        });
        c.bench_function(&format!("matmul_t_f32_blocked {m}x{k}x{n}"), |b| {
            b.iter(|| ops::matmul_t_blocked_scalar(&x, &w).unwrap())
        });
        #[cfg(feature = "simd")]
        c.bench_function(&format!("matmul_t_f32_simd {m}x{k}x{n}"), |b| {
            b.iter(|| ops::matmul_t(&x, &w).unwrap())
        });
    }
}

fn bench_quant_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // Same m ladder as the dense section: decode row, verify micro-batches,
    // and the m=8/16/32 cross-request forest batches of the step loop.
    for (m, k, n) in [
        (1usize, 512usize, 512usize),
        (4, 512, 512),
        (8, 512, 512),
        (16, 512, 512),
        (32, 512, 512),
    ] {
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
        c.bench_function(&format!("matmul_t_q4_reference {m}x{k}x{n}"), |b| {
            b.iter(|| q.matmul_t_reference(&x).unwrap())
        });
        c.bench_function(&format!("matmul_t_q4_fused {m}x{k}x{n}"), |b| {
            b.iter(|| q.matmul_t_fused_scalar(&x).unwrap())
        });
        #[cfg(feature = "simd")]
        c.bench_function(&format!("matmul_t_q4_simd {m}x{k}x{n}"), |b| {
            b.iter(|| q.matmul_t(&x).unwrap())
        });
    }
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = Tensor::rand_uniform(&mut rng, &[256, 512], 1.0);
    c.bench_function("quantize_q4 256x512", |b| {
        b.iter(|| QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap())
    });
}

fn bench_kv_cache_ops(c: &mut Criterion) {
    c.bench_function("kv_seq_cp_rm 4096cells", |b| {
        b.iter_batched(
            || {
                let mut cache = KvCache::new(1, 64, 4096);
                for p in 0..4000 {
                    cache.alloc(p, &[0]).unwrap();
                }
                cache
            },
            |mut cache| {
                cache.seq_cp(0, 1, 0, i32::MAX);
                cache.seq_rm(1, 0, i32::MAX);
            },
            BatchSize::SmallInput,
        )
    });
    // The tree-speculation accept path: a long canonical context in seq 0,
    // a speculation tree fanned out over 8 branch sequences, then one
    // `branch_commit` folding the accepted path back into seq 0 and
    // dropping every branch.  This is the cache op the engines issue once
    // per verified tree, next to the legacy seq_cp/seq_rm row above.
    c.bench_function("kv_branch_commit_rollback 4096cells", |b| {
        const N_BRANCHES: u32 = 8;
        const DEPTH: i32 = 4;
        b.iter_batched(
            || {
                let mut cache = KvCache::new(1, 64, 4096);
                for p in 0..4000 {
                    cache.alloc(p, &[0]).unwrap();
                }
                // Shared tree root spanning every branch sequence, then one
                // cell per branch per level below it.
                let branches: Vec<u32> = (1..=N_BRANCHES).collect();
                cache.alloc(4000, &branches).unwrap();
                for d in 1..DEPTH {
                    for &s in &branches {
                        cache.alloc(4000 + d, &[s]).unwrap();
                    }
                }
                cache
            },
            |mut cache| {
                cache.branch_commit(0, 2, 1, N_BRANCHES as usize, 4000, i32::MAX);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tiny_model_decode(c: &mut Criterion) {
    let model = Model::random(ModelConfig::tiny_llama(64, 4), 3);
    c.bench_function("tiny_model_decode 64d4l", |b| {
        b.iter_batched(
            || model.new_cache_for_layers(&(0..4), 64),
            |mut cache| {
                model
                    .forward_full(&Batch::single(5, 0, 0), &mut cache)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

/// The shapes re-timed at each sweep thread count: the ones big enough to
/// cross the serial-dispatch threshold and actually fan out on the pool.
/// These use the dispatch entry points (`ops::matmul_t` and
/// `QuantizedMatrix::matmul_t`), i.e. the kernels the real execution path
/// runs — SIMD on a `--features simd` build, blocked scalar otherwise.
fn bench_threads_sweep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    for (m, k, n) in [(1usize, 2048usize, 2048usize), (8, 512, 512)] {
        let x = Tensor::rand_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[n, k], 1.0);
        c.bench_function(&format!("matmul_t_f32 {m}x{k}x{n}"), |b| {
            b.iter(|| ops::matmul_t(&x, &w).unwrap())
        });
    }
    let x = Tensor::rand_uniform(&mut rng, &[4, 512], 1.0);
    let w = Tensor::rand_uniform(&mut rng, &[512, 512], 1.0);
    let q = QuantizedMatrix::quantize(&w, QuantKind::Q4K).unwrap();
    c.bench_function("matmul_t_q4 4x512x512", |b| {
        b.iter(|| q.matmul_t(&x).unwrap())
    });
}

/// Serialises the collected `(report, threads)` rows as
/// `BENCH_kernels.json`.  Sweep rows repeat an op/shape with different
/// `threads` values; the fixed section is tagged with the thread count it
/// ran under.
fn write_json(rows: &[(BenchReport, usize)]) {
    let mut out = String::from("[\n");
    for (i, (r, threads)) in rows.iter().enumerate() {
        let (op, shape) = r.name.split_once(' ').unwrap_or((r.name.as_str(), ""));
        out.push_str(&format!(
            "  {{\"op\": \"{op}\", \"shape\": \"{shape}\", \"ns_per_iter\": {:.1}, \
             \"min_ns\": {:.1}, \"iters\": {}, \"threads\": {threads}}}{}\n",
            r.mean_ns,
            r.min_ns,
            r.iters,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    match std::fs::write(JSON_PATH, out) {
        Ok(()) => println!("\nwrote {}", JSON_PATH),
        Err(e) => eprintln!("\nfailed to write {}: {e}", JSON_PATH),
    }
}

/// Regression gate for CI.  Comparisons use the per-benchmark *minimum*
/// iteration time — the most noise-robust observation on shared runners —
/// and only the comparison with a wide real cushion (blocked-vs-naive is
/// ~3x) demands a margin; the fused-quant gap (~1.25x) and the
/// SIMD-vs-scalar comparisons are gated at parity.
fn assert_no_regression(reports: &[BenchReport]) {
    let min_ns = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
            .expect("benchmark entry missing")
    };
    let naive = min_ns("matmul_t_f32_naive 1x512x512");
    let blocked = min_ns("matmul_t_f32_blocked 1x512x512");
    assert!(
        blocked * 1.5 < naive,
        "kernel regression: blocked single-row matmul (min {blocked:.0} ns) has \
         lost its margin over the naive reference (min {naive:.0} ns)"
    );
    // Both scalar q4 kernels are bound by per-element i8→f32 conversion
    // throughput, so their relative standing is machine-dependent and can
    // sit at parity; the gate only rejects the fused kernel falling clearly
    // *behind* the pre-optimisation reference.
    let q_ref = min_ns("matmul_t_q4_reference 1x512x512");
    let q_fused = min_ns("matmul_t_q4_fused 1x512x512");
    assert!(
        q_fused < q_ref * 1.1,
        "kernel regression: fused quantized matmul (min {q_fused:.0} ns) is \
         clearly slower than the reference (min {q_ref:.0} ns)"
    );
    println!(
        "kernel gate ok: blocked {:.2}x vs naive, fused {:.2}x vs reference (min times)",
        naive / blocked,
        q_ref / q_fused
    );
    #[cfg(feature = "simd")]
    {
        let simd = min_ns("matmul_t_f32_simd 1x512x512");
        assert!(
            simd < blocked,
            "simd_vs_blocked regression: f32x8 single-row matmul (min {simd:.0} ns) \
             is not faster than the blocked scalar kernel (min {blocked:.0} ns)"
        );
        let q_simd = min_ns("matmul_t_q4_simd 1x512x512");
        assert!(
            q_simd < q_fused,
            "simd_vs_blocked regression: f32x8 fused quantized matmul (min \
             {q_simd:.0} ns) is not faster than the scalar fused kernel (min \
             {q_fused:.0} ns)"
        );
        println!(
            "simd_vs_blocked gate ok: f32 {:.2}x, q4 {:.2}x (min times, {})",
            blocked / simd,
            q_fused / q_simd,
            pi_tensor::simd::active_isa()
        );
    }
}

fn main() {
    // Fixed section at whatever thread count the environment configured.
    let mut c = Criterion::default();
    bench_dense_matmul(&mut c);
    bench_quant_matmul(&mut c);
    bench_quantization(&mut c);
    bench_kv_cache_ops(&mut c);
    bench_tiny_model_decode(&mut c);
    let fixed: Vec<BenchReport> = c.reports().to_vec();
    let fixed_threads = pool::configured_threads();
    let mut rows: Vec<(BenchReport, usize)> =
        fixed.iter().cloned().map(|r| (r, fixed_threads)).collect();

    // Threads sweep: re-time the parallel-dispatch shapes under forced
    // pool sizes.  The worker pool re-reads PIPEINFER_THREADS on every
    // dispatch, so flipping the variable between phases is enough.
    let prev = std::env::var_os(pool::THREADS_ENV);
    for t in SWEEP_THREADS {
        println!("\n-- threads sweep: {}={t} --", pool::THREADS_ENV);
        std::env::set_var(pool::THREADS_ENV, t.to_string());
        let mut c = Criterion::default();
        bench_threads_sweep(&mut c);
        rows.extend(c.reports().iter().cloned().map(|r| (r, t)));
    }
    match prev {
        Some(v) => std::env::set_var(pool::THREADS_ENV, v),
        None => std::env::remove_var(pool::THREADS_ENV),
    }

    write_json(&rows);
    if std::env::var_os("PIPEINFER_BENCH_ASSERT").is_some() {
        assert_no_regression(&fixed);
    }
}
