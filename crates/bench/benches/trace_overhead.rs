//! Tracing-overhead microbenchmark: the cost of one *disabled* event site.
//!
//! Every instrumented site in the runtime goes through
//! [`pi_cluster::trace_if`], which checks `NodeCtx::trace_enabled` before
//! constructing the event.  The whole design rests on that check being
//! effectively free — behaviors are instrumented unconditionally, so a rank
//! without a recorder pays the guard at full message rate.  This bench
//! measures the guard through the same `&mut dyn NodeCtx` shape the drivers
//! use and, with `PIPEINFER_BENCH_ASSERT=1` (the CI smoke step), fails the
//! run if a disabled site costs 5 ns or more.  The enabled-site row is
//! informative only: it prices the event construction + buffer push that
//! traced runs opt into.
//!
//! Run with `cargo bench -p pi-bench --bench trace_overhead`.

use criterion::Criterion;
use pi_cluster::{trace_if, EventKind, NodeCtx, Rank, SimTime, Tag, TraceBuffer, WireMessage};
use std::hint::black_box;

/// Event sites exercised per measured iteration.
const SITES_PER_ITER: usize = 1024;
/// CI gate: a disabled event site must stay under this (ns).
const DISABLED_SITE_BUDGET_NS: f64 = 5.0;

#[derive(Clone)]
struct Msg;

impl WireMessage for Msg {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

/// A context with no recorder attached — `trace_enabled` / `trace` are the
/// trait defaults, exactly what a hand-rolled test context or an untraced
/// driver rank sees.
struct DisabledCtx {
    now: SimTime,
}

impl NodeCtx<Msg> for DisabledCtx {
    fn rank(&self) -> Rank {
        0
    }
    fn world_size(&self) -> usize {
        1
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, _dst: Rank, _tag: Tag, _msg: Msg) {}
    fn elapse(&mut self, seconds: SimTime) {
        self.now += seconds;
    }
}

/// A context with a live recorder, for the informative enabled-site row.
struct EnabledCtx {
    now: SimTime,
    buf: TraceBuffer,
}

impl NodeCtx<Msg> for EnabledCtx {
    fn rank(&self) -> Rank {
        0
    }
    fn world_size(&self) -> usize {
        1
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, _dst: Rank, _tag: Tag, _msg: Msg) {}
    fn elapse(&mut self, seconds: SimTime) {
        self.now += seconds;
    }
    fn trace_enabled(&self) -> bool {
        true
    }
    fn trace(&mut self, kind: EventKind) {
        let now = self.now;
        self.buf.push(now, kind);
    }
}

/// Drives `SITES_PER_ITER` representative event sites through the dyn seam.
/// The closure bodies read `black_box`ed locals so the event construction
/// cannot be hoisted or folded away — when the guard is off, none of it may
/// execute at all.
fn drive(ctx: &mut dyn NodeCtx<Msg>) {
    let run = black_box(7u64);
    let bytes = black_box(4096u64);
    for i in 0..SITES_PER_ITER / 4 {
        let i = i as u32;
        trace_if(ctx, || EventKind::StageForward {
            run,
            layer_lo: i,
            layer_hi: i + 20,
            batch: 4,
            cohort: 1,
            dur: 0.001,
        });
        trace_if(ctx, || EventKind::WireSend {
            dst: 1,
            tag: 3,
            bytes,
            draft: false,
        });
        trace_if(ctx, || EventKind::RunSpawned {
            run: run + i as u64,
            speculative: true,
            n_nodes: 4,
            width: 2,
            depth: 2,
        });
        trace_if(ctx, || EventKind::RunVerified {
            run: run + i as u64,
            accepted: 3,
        });
    }
}

fn main() {
    let mut c = Criterion::default();

    c.bench_function("disabled event site", |b| {
        let mut ctx = DisabledCtx { now: 0.0 };
        b.iter(|| {
            let dyn_ctx: &mut dyn NodeCtx<Msg> = black_box(&mut ctx);
            drive(dyn_ctx);
        });
    });

    c.bench_function("enabled event site", |b| {
        let mut ctx = EnabledCtx {
            now: 0.0,
            buf: TraceBuffer::new(0, SITES_PER_ITER * 2),
        };
        b.iter(|| {
            let dyn_ctx: &mut dyn NodeCtx<Msg> = black_box(&mut ctx);
            drive(dyn_ctx);
            black_box(ctx.buf.len());
        });
    });

    let mut disabled_ns = f64::NAN;
    println!("\nper-site costs over {SITES_PER_ITER} sites/iter:");
    for report in c.reports() {
        let per_site = report.mean_ns / SITES_PER_ITER as f64;
        if report.name.starts_with("disabled") {
            disabled_ns = per_site;
        }
        println!("  {:<22} {per_site:8.3} ns/site", report.name);
    }

    if std::env::var_os("PIPEINFER_BENCH_ASSERT").is_some() {
        assert!(
            disabled_ns < DISABLED_SITE_BUDGET_NS,
            "a disabled event site costs {disabled_ns:.3} ns — over the \
             {DISABLED_SITE_BUDGET_NS} ns budget"
        );
        println!(
            "PIPEINFER_BENCH_ASSERT: disabled site {disabled_ns:.3} ns < \
             {DISABLED_SITE_BUDGET_NS} ns — OK"
        );
    }
}
