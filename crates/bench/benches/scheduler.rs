//! Criterion microbenchmarks of the scheduler itself: how long the
//! discrete-event simulator takes to simulate one full generation under each
//! inference strategy.  This measures the *harness*, not the modelled
//! system — useful for keeping the figure benches fast.

use criterion::{criterion_group, criterion_main, Criterion};
use pi_bench::{make_prompt, run_strategy, BenchScale};
use pi_perf::{ClusterSpec, InferenceStrategy, ModelPair};
use pi_spec::GenConfig;

fn bench_simulated_strategies(c: &mut Criterion) {
    let scale = BenchScale {
        prompt_len: 16,
        n_generate: 32,
    };
    let config = GenConfig {
        prompt: make_prompt(scale, 9),
        n_generate: scale.n_generate,
        max_draft: 4,
        confidence_cutoff: 0.4,
        kv_capacity: 4096,
    };
    let pair = ModelPair::dolphin_tinyllama();
    for strategy in InferenceStrategy::all() {
        c.bench_function(
            &format!("simulate {} 8 nodes / 32 tokens", strategy.name()),
            |b| b.iter(|| run_strategy(strategy, &pair, ClusterSpec::cluster_c(8), &config)),
        );
    }
}

criterion_group!(benches, bench_simulated_strategies);
criterion_main!(benches);
